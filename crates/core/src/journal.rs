//! JSONL campaign journal — the checkpoint/resume format.
//!
//! A journal is one header line (the full campaign configuration plus the
//! seed corpus, so the file is self-contained) followed by one line per
//! executed round. The writer flushes after every line, so a killed
//! campaign loses at most the round that was mid-write; the reader drops a
//! truncated trailing line and [`crate::campaign::resume_campaign`] simply
//! re-executes that round.
//!
//! The workspace deliberately has no serde dependency, so the format is a
//! small hand-rolled JSON subset: objects, arrays, strings, bools, nulls,
//! and numbers kept as raw text (`u64` and `f64` round-trip exactly —
//! floats are printed with `{:?}`, Rust's shortest-exact representation).
//!
//! Since version 2, a record's coverage is **delta-encoded** against the
//! previous journaled round: rounds with no coverage write `null`, the
//! first covered round writes the full block lists, and every later one
//! writes only `{add, del}` per area. Writer and reader track the same
//! previous-coverage state, so resume stays bit-identical while journals
//! of long campaigns shrink dramatically (coverage is highly repetitive
//! round-over-round). Failed attempts also carry a flight-recorder dump
//! (the last events before the fault) and each round carries the wasted
//! step/execution totals its faulted attempts burned.

use crate::campaign::CampaignConfig;
use crate::corpus::Seed;
use crate::mutators::MutatorKind;
use crate::supervisor::{BudgetKind, RoundError, RoundFailure, SupervisorConfig};
use crate::variant::Variant;
use jcorpus::Vfs;
use jtelemetry::{FlightEvent, FlightKind};
use jvmsim::{Area, Component, CoverageMap, FaultPlan, JvmSpec, VmFault};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Bumped when the line format changes incompatibly. Version 2 added
/// delta-encoded coverage, flight-recorder dumps on failures, and
/// wasted-work accounting. Version 3 added the corpus header (store dir,
/// promotion threshold, per-entry stats baseline, pre-existing quarantine)
/// and per-round mutant-promotion records.
pub const JOURNAL_VERSION: u64 = 3;

const AREAS: [(&str, Area); 4] = [
    ("c1", Area::C1),
    ("c2", Area::C2),
    ("runtime", Area::Runtime),
    ("gc", Area::Gc),
];

/// One bug observation inside a round, before campaign-level dedup.
#[derive(Debug, Clone, PartialEq)]
pub struct BugSighting {
    /// Ground-truth bug id.
    pub id: String,
    /// Affected component.
    pub component: Component,
    /// Crash vs. miscompilation.
    pub is_crash: bool,
    /// JVM it was observed on.
    pub jvm: String,
    /// Mutation chain up to the sighting.
    pub mutators: Vec<MutatorKind>,
    /// The triggering mutant.
    pub mutant: mjava::Program,
}

/// Why a round's final mutant was promoted into the corpus.
#[derive(Debug, Clone, PartialEq)]
pub enum PromotionReason {
    /// The final OBV delta cleared the promotion threshold.
    Delta(f64),
    /// The round triggered an oracle verdict for this bug id.
    Bug(String),
}

/// A mutant promoted into the corpus by one round: the jreduce-minimized
/// program plus provenance and the simulated work the minimization cost.
/// Journaled with the round so replay re-admits the entry without
/// re-running the reduction.
#[derive(Debug, Clone, PartialEq)]
pub struct PromotionRecord {
    /// Corpus entry name (`p` + the fingerprint hex, collision-free).
    pub name: String,
    /// Behaviour fingerprint of the minimized program.
    pub fingerprint: u64,
    /// The minimized program admitted as a seed.
    pub source: mjava::Program,
    /// The seed whose fuzz run produced the mutant.
    pub from_seed: String,
    /// What earned the promotion.
    pub reason: PromotionReason,
    /// JVM executions spent minimizing + fingerprinting.
    pub execs: u64,
    /// Interpreter steps spent minimizing + fingerprinting.
    pub steps: u64,
}

/// The stats baseline of one corpus entry at campaign start, embedded in
/// the journal header so resume rebuilds the scheduler without trusting
/// the (possibly since-mutated) store.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineEntry {
    /// Entry name.
    pub name: String,
    /// Behaviour fingerprint.
    pub fingerprint: u64,
    /// Stats at campaign start.
    pub stats: jcorpus::EntryStats,
    /// Consecutive campaigns the entry's energy ended clamped at the
    /// floor, as of campaign start. Carried so a resumed campaign updates
    /// the store's GC streak exactly like the original run would have
    /// (streaks are computed from this baseline, not read-modify-write).
    /// Absent in older journals and defaults to 0.
    pub floor_streak: u64,
}

/// Corpus-mode context in the journal header: everything a resume needs to
/// reconstruct the power scheduler and quarantine exactly as the live
/// campaign started with them.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusHeader {
    /// The store directory the campaign ran over.
    pub dir: String,
    /// OBV-delta threshold for mutant promotion.
    pub promote_threshold: f64,
    /// Per-entry stats at campaign start, in store order.
    pub baseline: Vec<BaselineEntry>,
    /// Quarantine pairs inherited from earlier campaigns over the store.
    pub preq: Vec<(String, Option<MutatorKind>)>,
}

/// How a supervised round ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// The round executed and its totals count.
    Ok,
    /// Every attempt faulted; the round contributed nothing.
    Errored,
    /// The round's seed was quarantined, so it never ran.
    Skipped,
}

/// Everything one round produced — the unit of journaling and of result
/// accounting (see [`crate::supervisor::apply_record`]).
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRecord {
    /// Round index.
    pub round: usize,
    /// Seed name.
    pub seed: String,
    /// How the round ended.
    pub disposition: Disposition,
    /// Executions spent fuzzing.
    pub fuzz_execs: u64,
    /// Steps spent fuzzing.
    pub fuzz_steps: u64,
    /// `(executions, steps)` of the differential stage, when it ran.
    pub diff: Option<(u64, u64)>,
    /// Final-mutant Δ (meaningful for `Ok` rounds).
    pub final_delta: f64,
    /// Whether the differential verdict was inconclusive.
    pub inconclusive: bool,
    /// Faulted attempts preceding the outcome.
    pub errors: Vec<RoundFailure>,
    /// Crash found during guidance runs, if any.
    pub crash: Option<BugSighting>,
    /// Bugs found by the differential stage.
    pub diff_bugs: Vec<BugSighting>,
    /// Coverage of the whole round (fuzzing + differential).
    pub coverage: CoverageMap,
    /// Set on `Errored` rounds: the `(seed, mutator)` pair charged with
    /// the failure (`None` mutator = the seed as a whole).
    pub fault_pair: Option<(String, Option<MutatorKind>)>,
    /// Interpreter steps burned by this round's faulted attempts.
    pub wasted_steps: u64,
    /// JVM executions burned by this round's faulted attempts.
    pub wasted_execs: u64,
    /// Corpus promotion produced by this round, if any (corpus mode only).
    pub promotion: Option<PromotionRecord>,
}

/// Appends journal lines, fsyncing each one. Tracks the previous round's
/// coverage so each record can be delta-encoded against it.
///
/// All I/O goes through a [`jcorpus::Vfs`], so chaos tests can crash the
/// journal at any write, and the real implementation makes every line
/// durable (append + file fsync) before the campaign moves on — a killed
/// campaign loses at most the line that was mid-write.
pub struct JournalWriter {
    path: PathBuf,
    fs: Arc<dyn Vfs>,
    prev_coverage: Option<CoverageMap>,
}

impl JournalWriter {
    /// Creates (or truncates) a journal at `path` and writes the header.
    /// Corpus-mode campaigns pass their [`CorpusHeader`]; plain campaigns
    /// pass `None`.
    pub fn create(
        path: &Path,
        config: &CampaignConfig,
        seeds: &[Seed],
        corpus: Option<&CorpusHeader>,
    ) -> Result<JournalWriter, String> {
        JournalWriter::create_with(path, config, seeds, corpus, jcorpus::vfs::real())
    }

    /// [`JournalWriter::create`] with all journal I/O routed through `fs`
    /// (chaos injection in tests, real fsyncs in production).
    pub fn create_with(
        path: &Path,
        config: &CampaignConfig,
        seeds: &[Seed],
        corpus: Option<&CorpusHeader>,
        fs: Arc<dyn Vfs>,
    ) -> Result<JournalWriter, String> {
        // Create-or-truncate, then persist the (possibly new) directory
        // entry before the first line is written.
        fs.write(path, b"")
            .and_then(|()| fs.fsync_file(path))
            .and_then(|()| fs.fsync_dir(jcorpus::vfs::parent_dir(path)))
            .map_err(|e| format!("journal create {}: {e}", path.display()))?;
        let mut writer = JournalWriter {
            path: path.to_path_buf(),
            fs,
            prev_coverage: None,
        };
        writer.line(&encode_header(config, seeds, corpus))?;
        Ok(writer)
    }

    /// Appends one round record as a single durable line.
    pub fn write_round(&mut self, record: &RoundRecord) -> Result<(), String> {
        let line = encode_record(record, self.prev_coverage.as_ref());
        self.line(&line)?;
        if !coverage_is_empty(&record.coverage) {
            self.prev_coverage = Some(record.coverage.clone());
        }
        Ok(())
    }

    fn line(&mut self, json: &str) -> Result<(), String> {
        let mut data = Vec::with_capacity(json.len() + 1);
        data.extend_from_slice(json.as_bytes());
        data.push(b'\n');
        self.fs
            .append(&self.path, &data)
            .and_then(|()| self.fs.fsync_file(&self.path))
            .map_err(|e| format!("journal write: {e}"))
    }
}

/// A parsed journal.
pub struct JournalContents {
    /// The campaign configuration from the header.
    pub config: CampaignConfig,
    /// The seed corpus from the header.
    pub seeds: Vec<Seed>,
    /// Corpus-mode context, when the campaign ran over a store.
    pub corpus: Option<CorpusHeader>,
    /// Intact round records, in round order.
    pub records: Vec<RoundRecord>,
    /// True when a truncated trailing line was dropped.
    pub truncated_tail: bool,
}

/// Reads a journal back. A mangled *final* line is tolerated (the writer
/// was killed mid-line); corruption anywhere else is an error.
pub fn read_journal(path: &Path) -> Result<JournalContents, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("journal read {}: {e}", path.display()))?;
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    let Some((&first, rest)) = lines.split_first() else {
        return Err("journal is empty".to_string());
    };
    let (config, seeds, corpus) = decode_header(first)?;
    let mut records: Vec<RoundRecord> = Vec::new();
    let mut truncated_tail = false;
    let mut prev_coverage: Option<CoverageMap> = None;
    for (i, line) in rest.iter().enumerate() {
        match parse_json(line).and_then(|v| decode_record(&v, prev_coverage.as_ref())) {
            Ok(record) => {
                if record.round != records.len() {
                    return Err(format!(
                        "journal out of order: line {} has round {}, expected {}",
                        i + 2,
                        record.round,
                        records.len()
                    ));
                }
                if !coverage_is_empty(&record.coverage) {
                    prev_coverage = Some(record.coverage.clone());
                }
                records.push(record);
            }
            Err(e) if i + 1 == rest.len() => {
                // Killed mid-write: drop the tail, the round re-executes.
                truncated_tail = true;
                let _ = e;
            }
            Err(e) => return Err(format!("journal line {}: {e}", i + 2)),
        }
    }
    Ok(JournalContents {
        config,
        seeds,
        corpus,
        records,
        truncated_tail,
    })
}

// ---- encoding ----

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

fn json_str(s: &str) -> String {
    format!("\"{}\"", esc(s))
}

fn opt_u64(v: Option<u64>) -> String {
    v.map_or("null".to_string(), |n| n.to_string())
}

fn join<T>(items: &[T], f: impl Fn(&T) -> String) -> String {
    items.iter().map(f).collect::<Vec<_>>().join(",")
}

fn encode_corpus_header(corpus: &CorpusHeader) -> String {
    let baseline = join(&corpus.baseline, |b| {
        format!(
            "{{\"name\":{},\"fingerprint\":{},\"schedules\":{},\"yield_sum\":{:?},\
             \"faults\":{},\"bugs\":{},\"floor_streak\":{}}}",
            json_str(&b.name),
            json_str(&jcorpus::fingerprint_hex(b.fingerprint)),
            b.stats.schedules,
            b.stats.yield_sum,
            b.stats.faults,
            b.stats.bugs,
            b.floor_streak,
        )
    });
    let preq = join(&corpus.preq, |(seed, mutator)| {
        format!(
            "{{\"seed\":{},\"mutator\":{}}}",
            json_str(seed),
            mutator.map_or("null".to_string(), |m| json_str(&format!("{m:?}"))),
        )
    });
    format!(
        "{{\"dir\":{},\"promote_threshold\":{:?},\"baseline\":[{baseline}],\"preq\":[{preq}]}}",
        json_str(&corpus.dir),
        corpus.promote_threshold,
    )
}

fn encode_header(config: &CampaignConfig, seeds: &[Seed], corpus: Option<&CorpusHeader>) -> String {
    // `round_wall_timeout_ms` is omitted (not `null`) when unset, so
    // headers written by timeout-less campaigns are byte-identical to
    // pre-timeout journals — the golden corpus stays valid.
    let supervisor = format!(
        "{{\"max_retries\":{},\"quarantine_threshold\":{},\"max_steps\":{},\
         \"max_executions\":{},\"round_step_deadline\":{}{}}}",
        config.supervisor.max_retries,
        config.supervisor.quarantine_threshold,
        opt_u64(config.supervisor.max_steps),
        opt_u64(config.supervisor.max_executions),
        opt_u64(config.supervisor.round_step_deadline),
        config
            .supervisor
            .round_wall_timeout_ms
            .map_or(String::new(), |ms| format!(
                ",\"round_wall_timeout_ms\":{ms}"
            )),
    );
    let fault = match &config.fault {
        None => "null".to_string(),
        Some(plan) => format!(
            "{{\"seed\":{},\"rate_ppm\":{},\"only\":{}}}",
            plan.seed,
            plan.rate_ppm,
            plan.only
                .map_or("null".to_string(), |k| json_str(&format!("{k:?}"))),
        ),
    };
    let seeds_json = join(seeds, |s| {
        format!(
            "{{\"name\":{},\"source\":{}}}",
            json_str(&s.name),
            json_str(&mjava::print(&s.program))
        )
    });
    format!(
        "{{\"type\":\"header\",\"version\":{JOURNAL_VERSION},\"rounds\":{},\
         \"iterations_per_seed\":{},\"variant\":{},\"rng_seed\":{},\"pool\":[{}],\
         \"supervisor\":{},\"fault\":{},\"corpus\":{},\"seeds\":[{}]}}",
        config.rounds,
        config.iterations_per_seed,
        json_str(&format!("{:?}", config.variant)),
        config.rng_seed,
        join(&config.pool, |s| json_str(&s.name())),
        supervisor,
        fault,
        corpus.map_or("null".to_string(), encode_corpus_header),
        seeds_json,
    )
}

fn encode_sighting(s: &BugSighting) -> String {
    format!(
        "{{\"id\":{},\"component\":{},\"is_crash\":{},\"jvm\":{},\
         \"mutators\":[{}],\"mutant\":{}}}",
        json_str(&s.id),
        json_str(&format!("{:?}", s.component)),
        s.is_crash,
        json_str(&s.jvm),
        join(&s.mutators, |m| json_str(&format!("{m:?}"))),
        json_str(&mjava::print(&s.mutant)),
    )
}

fn encode_flight(events: &[FlightEvent]) -> String {
    join(events, |e| {
        format!(
            "{{\"at\":{},\"kind\":{},\"label\":{},\"detail\":{}}}",
            e.at_steps,
            json_str(e.kind.key()),
            json_str(&e.label),
            json_str(&e.detail),
        )
    })
}

fn encode_failure(f: &RoundFailure) -> String {
    let flight = format!(",\"flight\":[{}]", encode_flight(&f.flight));
    match &f.error {
        RoundError::MutatorPanic { mutator, message } => format!(
            "{{\"kind\":\"mutator_panic\",\"attempt\":{},\"mutator\":{},\"message\":{}{}}}",
            f.attempt,
            mutator.map_or("null".to_string(), |m| json_str(&format!("{m:?}"))),
            json_str(message),
            flight,
        ),
        RoundError::VmPanic { message } => format!(
            "{{\"kind\":\"vm_panic\",\"attempt\":{},\"message\":{}{}}}",
            f.attempt,
            json_str(message),
            flight,
        ),
        RoundError::BuildFailure { message } => format!(
            "{{\"kind\":\"build_failure\",\"attempt\":{},\"message\":{}{}}}",
            f.attempt,
            json_str(message),
            flight,
        ),
        RoundError::BudgetExhausted {
            budget,
            limit,
            used,
        } => format!(
            "{{\"kind\":\"budget\",\"attempt\":{},\"budget\":{},\"limit\":{},\"used\":{}{}}}",
            f.attempt,
            json_str(budget_name(*budget)),
            limit,
            used,
            flight,
        ),
        RoundError::Timeout { limit_ms } => format!(
            "{{\"kind\":\"timeout\",\"attempt\":{},\"limit_ms\":{}{}}}",
            f.attempt, limit_ms, flight,
        ),
    }
}

fn budget_name(kind: BudgetKind) -> &'static str {
    match kind {
        BudgetKind::RoundSteps => "round_steps",
        BudgetKind::CampaignSteps => "campaign_steps",
        BudgetKind::CampaignExecutions => "campaign_executions",
    }
}

fn budget_from_name(name: &str) -> Result<BudgetKind, String> {
    match name {
        "round_steps" => Ok(BudgetKind::RoundSteps),
        "campaign_steps" => Ok(BudgetKind::CampaignSteps),
        "campaign_executions" => Ok(BudgetKind::CampaignExecutions),
        other => Err(format!("unknown budget kind {other:?}")),
    }
}

fn coverage_is_empty(map: &CoverageMap) -> bool {
    AREAS.iter().all(|&(_, area)| map.blocks(area).is_empty())
}

fn encode_coverage_full(map: &CoverageMap) -> String {
    let area = |a: Area| join(&map.blocks(a), u32::to_string);
    format!(
        "{{\"c1\":[{}],\"c2\":[{}],\"runtime\":[{}],\"gc\":[{}]}}",
        area(Area::C1),
        area(Area::C2),
        area(Area::Runtime),
        area(Area::Gc),
    )
}

/// Delta-encodes `current` against the previous journaled coverage:
/// `null` for uncovered rounds, `{"full":...}` when there is no previous
/// state, `{"delta":{area:{"add":[..],"del":[..]},...}}` otherwise.
fn encode_coverage(current: &CoverageMap, prev: Option<&CoverageMap>) -> String {
    if coverage_is_empty(current) {
        return "null".to_string();
    }
    let Some(prev) = prev else {
        return format!("{{\"full\":{}}}", encode_coverage_full(current));
    };
    let deltas = AREAS
        .iter()
        .map(|&(key, area)| {
            let old = prev.blocks(area);
            let new = current.blocks(area);
            let add: Vec<u32> = new.iter().filter(|b| !old.contains(b)).copied().collect();
            let del: Vec<u32> = old.iter().filter(|b| !new.contains(b)).copied().collect();
            format!(
                "\"{key}\":{{\"add\":[{}],\"del\":[{}]}}",
                join(&add, u32::to_string),
                join(&del, u32::to_string),
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    format!("{{\"delta\":{{{deltas}}}}}")
}

fn encode_promotion(p: &PromotionRecord) -> String {
    let reason = match &p.reason {
        PromotionReason::Delta(v) => format!("{{\"kind\":\"delta\",\"value\":{v:?}}}"),
        PromotionReason::Bug(id) => format!("{{\"kind\":\"bug\",\"id\":{}}}", json_str(id)),
    };
    format!(
        "{{\"name\":{},\"fingerprint\":{},\"from_seed\":{},\"reason\":{reason},\
         \"execs\":{},\"steps\":{},\"source\":{}}}",
        json_str(&p.name),
        json_str(&jcorpus::fingerprint_hex(p.fingerprint)),
        json_str(&p.from_seed),
        p.execs,
        p.steps,
        json_str(&mjava::print(&p.source)),
    )
}

fn encode_record(r: &RoundRecord, prev_coverage: Option<&CoverageMap>) -> String {
    let disposition = match r.disposition {
        Disposition::Ok => "ok",
        Disposition::Errored => "errored",
        Disposition::Skipped => "skipped",
    };
    let diff = r.diff.map_or("null".to_string(), |(execs, steps)| {
        format!("{{\"execs\":{execs},\"steps\":{steps}}}")
    });
    let fault_pair = r.fault_pair.as_ref().map_or("null".to_string(), |(s, m)| {
        format!(
            "{{\"seed\":{},\"mutator\":{}}}",
            json_str(s),
            m.map_or("null".to_string(), |m| json_str(&format!("{m:?}"))),
        )
    });
    format!(
        "{{\"type\":\"round\",\"round\":{},\"seed\":{},\"disposition\":{},\
         \"fuzz_execs\":{},\"fuzz_steps\":{},\"wasted_steps\":{},\"wasted_execs\":{},\
         \"diff\":{},\"final_delta\":{:?},\
         \"inconclusive\":{},\"errors\":[{}],\"crash\":{},\"diff_bugs\":[{}],\
         \"coverage\":{},\"fault_pair\":{},\"promotion\":{}}}",
        r.round,
        json_str(&r.seed),
        json_str(disposition),
        r.fuzz_execs,
        r.fuzz_steps,
        r.wasted_steps,
        r.wasted_execs,
        diff,
        r.final_delta,
        r.inconclusive,
        join(&r.errors, encode_failure),
        r.crash.as_ref().map_or("null".to_string(), encode_sighting),
        join(&r.diff_bugs, encode_sighting),
        encode_coverage(&r.coverage, prev_coverage),
        fault_pair,
        r.promotion
            .as_ref()
            .map_or("null".to_string(), encode_promotion),
    )
}

// ---- a minimal JSON value + recursive-descent parser ----

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    /// Numbers stay raw text so u64 and f64 both round-trip exactly.
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn str_(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn bool_(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    fn u64_(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    fn u32_(&self) -> Option<u32> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    fn usize_(&self) -> Option<usize> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    fn f64_(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

fn req<'j>(obj: &'j Json, key: &str) -> Result<&'j Json, String> {
    obj.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn req_str(obj: &Json, key: &str) -> Result<String, String> {
    req(obj, key)?
        .str_()
        .map(str::to_string)
        .ok_or_else(|| format!("field {key:?} is not a string"))
}

fn req_u64(obj: &Json, key: &str) -> Result<u64, String> {
    req(obj, key)?
        .u64_()
        .ok_or_else(|| format!("field {key:?} is not a u64"))
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_json(text: &str) -> Result<Json, String> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err("trailing bytes after JSON value".to_string());
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek().ok_or("unexpected end of input")? {
            b'n' => self.literal("null", Json::Null),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'"' => Ok(Json::Str(self.string()?)),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("bad array at byte {}", self.pos)),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    fields.push((key, self.value()?));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(format!("bad object at byte {}", self.pos)),
                    }
                }
            }
            _ => self.number(),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9' | b'N' | b'a' | b'n' | b'i' | b'f')
        ) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected a value at byte {start}"));
        }
        let raw =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "non-utf8 number")?;
        // Validate now so corruption surfaces at parse time: every number
        // must at least read back as f64 (NaN/inf spellings included,
        // since `{:?}` emits them for degenerate deltas).
        raw.parse::<f64>()
            .map_err(|_| format!("bad number {raw:?}"))?;
        Ok(Json::Num(raw.to_string()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or("unterminated string")?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let end = self.pos + 4;
                            let hex = self
                                .bytes
                                .get(self.pos..end)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            self.pos = end;
                            // We only ever emit \u for control characters,
                            // so surrogate pairs never occur.
                            out.push(
                                char::from_u32(code)
                                    .ok_or(format!("invalid codepoint {code:#x}"))?,
                            );
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                b => {
                    // Multi-byte UTF-8: width from the leading byte.
                    let width = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err("invalid utf-8 in string".to_string()),
                    };
                    let start = self.pos - 1;
                    let chunk = self
                        .bytes
                        .get(start..start + width)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or("invalid utf-8 in string")?;
                    out.push_str(chunk);
                    self.pos = start + width;
                }
            }
        }
    }
}

// ---- decoding ----

fn variant_from_name(name: &str) -> Result<Variant, String> {
    Variant::ALL
        .into_iter()
        .find(|v| format!("{v:?}") == name)
        .ok_or_else(|| format!("unknown variant {name:?}"))
}

fn mutator_from_json(v: &Json) -> Result<Option<MutatorKind>, String> {
    if v.is_null() {
        return Ok(None);
    }
    let name = v.str_().ok_or("mutator is not a string")?;
    MutatorKind::from_debug_name(name)
        .map(Some)
        .ok_or_else(|| format!("unknown mutator {name:?}"))
}

fn vm_fault_from_name(name: &str) -> Result<VmFault, String> {
    [
        VmFault::Panic,
        VmFault::BuildFailure,
        VmFault::FuelExhaustion,
        VmFault::LogCorruption,
        VmFault::Hang,
    ]
    .into_iter()
    .find(|k| format!("{k:?}") == name)
    .ok_or_else(|| format!("unknown fault kind {name:?}"))
}

fn req_f64(obj: &Json, key: &str) -> Result<f64, String> {
    req(obj, key)?
        .f64_()
        .ok_or_else(|| format!("field {key:?} is not a number"))
}

fn decode_corpus_header(v: &Json) -> Result<CorpusHeader, String> {
    let baseline = req(v, "baseline")?
        .arr()
        .ok_or("corpus baseline is not an array")?
        .iter()
        .map(|b| {
            Ok(BaselineEntry {
                name: req_str(b, "name")?,
                fingerprint: jcorpus::parse_fingerprint(&req_str(b, "fingerprint")?)?,
                stats: jcorpus::EntryStats {
                    schedules: req_u64(b, "schedules")?,
                    yield_sum: req_f64(b, "yield_sum")?,
                    faults: req_u64(b, "faults")?,
                    bugs: req_u64(b, "bugs")?,
                },
                floor_streak: match b.get("floor_streak") {
                    Some(f) => f.u64_().ok_or("floor_streak is not a u64")?,
                    None => 0, // journals from before store GC existed
                },
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let preq = req(v, "preq")?
        .arr()
        .ok_or("corpus preq is not an array")?
        .iter()
        .map(|p| Ok((req_str(p, "seed")?, mutator_from_json(req(p, "mutator")?)?)))
        .collect::<Result<Vec<_>, String>>()?;
    Ok(CorpusHeader {
        dir: req_str(v, "dir")?,
        promote_threshold: req_f64(v, "promote_threshold")?,
        baseline,
        preq,
    })
}

type Header = (CampaignConfig, Vec<Seed>, Option<CorpusHeader>);

fn decode_header(line: &str) -> Result<Header, String> {
    let v = parse_json(line)?;
    if req_str(&v, "type")? != "header" {
        return Err("first journal line is not a header".to_string());
    }
    let version = req_u64(&v, "version")?;
    if version != JOURNAL_VERSION {
        return Err(format!(
            "journal version {version} unsupported (expected {JOURNAL_VERSION})"
        ));
    }
    let sup = req(&v, "supervisor")?;
    let opt = |key: &str| -> Result<Option<u64>, String> {
        let field = req(sup, key)?;
        if field.is_null() {
            Ok(None)
        } else {
            field
                .u64_()
                .map(Some)
                .ok_or_else(|| format!("field {key:?} is not a u64"))
        }
    };
    let supervisor = SupervisorConfig {
        max_retries: req_u64(sup, "max_retries")? as u32,
        quarantine_threshold: req_u64(sup, "quarantine_threshold")? as u32,
        max_steps: opt("max_steps")?,
        max_executions: opt("max_executions")?,
        round_step_deadline: opt("round_step_deadline")?,
        // Written only when set (see `encode_header`), so absence — as in
        // every pre-timeout journal — reads back as None.
        round_wall_timeout_ms: match sup.get("round_wall_timeout_ms") {
            None => None,
            Some(f) if f.is_null() => None,
            Some(f) => Some(
                f.u64_()
                    .ok_or("field \"round_wall_timeout_ms\" is not a u64")?,
            ),
        },
    };
    let fault_field = req(&v, "fault")?;
    let fault = if fault_field.is_null() {
        None
    } else {
        let only_field = req(fault_field, "only")?;
        let only = if only_field.is_null() {
            None
        } else {
            Some(vm_fault_from_name(
                only_field.str_().ok_or("fault.only is not a string")?,
            )?)
        };
        Some(FaultPlan {
            seed: req_u64(fault_field, "seed")?,
            rate_ppm: req_u64(fault_field, "rate_ppm")? as u32,
            only,
        })
    };
    let pool = req(&v, "pool")?
        .arr()
        .ok_or("pool is not an array")?
        .iter()
        .map(|j| {
            let name = j.str_().ok_or("pool entry is not a string")?;
            JvmSpec::from_name(name)
        })
        .collect::<Result<Vec<_>, _>>()?;
    let seeds = req(&v, "seeds")?
        .arr()
        .ok_or("seeds is not an array")?
        .iter()
        .map(|j| {
            let name = req_str(j, "name")?;
            let source = req_str(j, "source")?;
            let program =
                mjava::parse(&source).map_err(|e| format!("seed {name:?} does not parse: {e}"))?;
            Ok(Seed { name, program })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let corpus_field = req(&v, "corpus")?;
    let corpus = if corpus_field.is_null() {
        None
    } else {
        Some(decode_corpus_header(corpus_field)?)
    };
    let config = CampaignConfig {
        iterations_per_seed: req(&v, "iterations_per_seed")?
            .usize_()
            .ok_or("iterations_per_seed is not a number")?,
        variant: variant_from_name(&req_str(&v, "variant")?)?,
        rounds: req(&v, "rounds")?
            .usize_()
            .ok_or("rounds is not a number")?,
        pool,
        rng_seed: req_u64(&v, "rng_seed")?,
        supervisor,
        fault,
        // Worker counts are execution details, not campaign identity: a
        // journal written at any --jobs/--oracle-jobs replays and resumes
        // at any other combination.
        jobs: 1,
        oracle_jobs: 1,
    };
    Ok((config, seeds, corpus))
}

fn decode_sighting(v: &Json) -> Result<BugSighting, String> {
    let component_name = req_str(v, "component")?;
    let component = Component::from_debug_name(&component_name)
        .ok_or_else(|| format!("unknown component {component_name:?}"))?;
    let mutators = req(v, "mutators")?
        .arr()
        .ok_or("mutators is not an array")?
        .iter()
        .map(|m| mutator_from_json(m)?.ok_or_else(|| "null in mutator chain".to_string()))
        .collect::<Result<Vec<_>, String>>()?;
    let source = req_str(v, "mutant")?;
    let mutant = mjava::parse(&source).map_err(|e| format!("mutant does not parse: {e}"))?;
    Ok(BugSighting {
        id: req_str(v, "id")?,
        component,
        is_crash: req(v, "is_crash")?
            .bool_()
            .ok_or("is_crash is not a bool")?,
        jvm: req_str(v, "jvm")?,
        mutators,
        mutant,
    })
}

fn decode_flight(v: &Json) -> Result<Vec<FlightEvent>, String> {
    v.arr()
        .ok_or("flight is not an array")?
        .iter()
        .map(|e| {
            let kind_name = req_str(e, "kind")?;
            let kind = FlightKind::from_key(&kind_name)
                .ok_or_else(|| format!("unknown flight kind {kind_name:?}"))?;
            Ok(FlightEvent {
                at_steps: req_u64(e, "at")?,
                kind,
                label: req_str(e, "label")?,
                detail: req_str(e, "detail")?,
            })
        })
        .collect()
}

fn decode_failure(v: &Json, round: usize) -> Result<RoundFailure, String> {
    let attempt = req_u64(v, "attempt")? as u32;
    let flight = decode_flight(req(v, "flight")?)?;
    let error = match req_str(v, "kind")?.as_str() {
        "mutator_panic" => RoundError::MutatorPanic {
            mutator: mutator_from_json(req(v, "mutator")?)?,
            message: req_str(v, "message")?,
        },
        "vm_panic" => RoundError::VmPanic {
            message: req_str(v, "message")?,
        },
        "build_failure" => RoundError::BuildFailure {
            message: req_str(v, "message")?,
        },
        "budget" => RoundError::BudgetExhausted {
            budget: budget_from_name(&req_str(v, "budget")?)?,
            limit: req_u64(v, "limit")?,
            used: req_u64(v, "used")?,
        },
        "timeout" => RoundError::Timeout {
            limit_ms: req_u64(v, "limit_ms")?,
        },
        other => return Err(format!("unknown error kind {other:?}")),
    };
    Ok(RoundFailure {
        round,
        attempt,
        error,
        flight,
    })
}

fn blocks_list(v: &Json, key: &str) -> Result<Vec<u32>, String> {
    req(v, key)?
        .arr()
        .ok_or_else(|| format!("coverage {key:?} is not an array"))?
        .iter()
        .map(|b| b.u32_().ok_or_else(|| format!("bad block in {key:?}")))
        .collect()
}

fn decode_coverage_full(v: &Json) -> Result<CoverageMap, String> {
    let mut map = CoverageMap::new();
    for (key, area) in AREAS {
        map.mark_all(area, blocks_list(v, key)?);
    }
    Ok(map)
}

/// Inverse of [`encode_coverage`]: `null` → empty, `full` → as written,
/// `delta` → previous coverage patched with per-area add/del lists.
fn decode_coverage(v: &Json, prev: Option<&CoverageMap>) -> Result<CoverageMap, String> {
    if v.is_null() {
        return Ok(CoverageMap::new());
    }
    if let Some(full) = v.get("full") {
        return decode_coverage_full(full);
    }
    let delta = v
        .get("delta")
        .ok_or("coverage has neither full nor delta")?;
    let prev = prev.ok_or("delta coverage with no previous round to patch")?;
    let mut map = CoverageMap::new();
    for (key, area) in AREAS {
        let d = req(delta, key)?;
        let add = blocks_list(d, "add")?;
        let del = blocks_list(d, "del")?;
        let mut blocks: Vec<u32> = prev
            .blocks(area)
            .into_iter()
            .filter(|b| !del.contains(b))
            .collect();
        blocks.extend(add);
        map.mark_all(area, blocks);
    }
    Ok(map)
}

fn decode_promotion(v: &Json) -> Result<PromotionRecord, String> {
    let reason_field = req(v, "reason")?;
    let reason = match req_str(reason_field, "kind")?.as_str() {
        "delta" => PromotionReason::Delta(req_f64(reason_field, "value")?),
        "bug" => PromotionReason::Bug(req_str(reason_field, "id")?),
        other => return Err(format!("unknown promotion reason {other:?}")),
    };
    let source_text = req_str(v, "source")?;
    let source =
        mjava::parse(&source_text).map_err(|e| format!("promoted program does not parse: {e}"))?;
    Ok(PromotionRecord {
        name: req_str(v, "name")?,
        fingerprint: jcorpus::parse_fingerprint(&req_str(v, "fingerprint")?)?,
        source,
        from_seed: req_str(v, "from_seed")?,
        reason,
        execs: req_u64(v, "execs")?,
        steps: req_u64(v, "steps")?,
    })
}

fn decode_record(v: &Json, prev_coverage: Option<&CoverageMap>) -> Result<RoundRecord, String> {
    if req_str(v, "type")? != "round" {
        return Err("not a round record".to_string());
    }
    let round = req(v, "round")?.usize_().ok_or("round is not a number")?;
    let disposition = match req_str(v, "disposition")?.as_str() {
        "ok" => Disposition::Ok,
        "errored" => Disposition::Errored,
        "skipped" => Disposition::Skipped,
        other => return Err(format!("unknown disposition {other:?}")),
    };
    let diff_field = req(v, "diff")?;
    let diff = if diff_field.is_null() {
        None
    } else {
        Some((req_u64(diff_field, "execs")?, req_u64(diff_field, "steps")?))
    };
    let errors = req(v, "errors")?
        .arr()
        .ok_or("errors is not an array")?
        .iter()
        .map(|e| decode_failure(e, round))
        .collect::<Result<Vec<_>, _>>()?;
    let crash_field = req(v, "crash")?;
    let crash = if crash_field.is_null() {
        None
    } else {
        Some(decode_sighting(crash_field)?)
    };
    let diff_bugs = req(v, "diff_bugs")?
        .arr()
        .ok_or("diff_bugs is not an array")?
        .iter()
        .map(decode_sighting)
        .collect::<Result<Vec<_>, _>>()?;
    let pair_field = req(v, "fault_pair")?;
    let fault_pair = if pair_field.is_null() {
        None
    } else {
        Some((
            req_str(pair_field, "seed")?,
            mutator_from_json(req(pair_field, "mutator")?)?,
        ))
    };
    let promo_field = req(v, "promotion")?;
    let promotion = if promo_field.is_null() {
        None
    } else {
        Some(decode_promotion(promo_field)?)
    };
    Ok(RoundRecord {
        round,
        seed: req_str(v, "seed")?,
        disposition,
        fuzz_execs: req_u64(v, "fuzz_execs")?,
        fuzz_steps: req_u64(v, "fuzz_steps")?,
        diff,
        final_delta: req(v, "final_delta")?
            .f64_()
            .ok_or("final_delta is not a number")?,
        inconclusive: req(v, "inconclusive")?
            .bool_()
            .ok_or("inconclusive is not a bool")?,
        errors,
        crash,
        diff_bugs,
        coverage: decode_coverage(req(v, "coverage")?, prev_coverage)?,
        fault_pair,
        wasted_steps: req_u64(v, "wasted_steps")?,
        wasted_execs: req_u64(v, "wasted_execs")?,
        promotion,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus;

    fn sample_record(round: usize) -> RoundRecord {
        let mutant = mjava::samples::listing2().program;
        let mut coverage = CoverageMap::new();
        coverage.mark_all(Area::C2, [3, 1, 4, 1, 5]);
        coverage.mark(Area::Gc, 9);
        RoundRecord {
            round,
            seed: "listing2".to_string(),
            disposition: Disposition::Ok,
            fuzz_execs: 42,
            fuzz_steps: 123_456,
            diff: Some((8, 98_765)),
            final_delta: 13.625,
            inconclusive: true,
            errors: vec![
                RoundFailure {
                    round,
                    attempt: 0,
                    error: RoundError::MutatorPanic {
                        mutator: Some(MutatorKind::Inlining),
                        message: "mop-fault:mutator:Inlining: \"quoted\"\nline".to_string(),
                    },
                    flight: vec![
                        FlightEvent {
                            at_steps: 0,
                            kind: FlightKind::Round,
                            label: "attempt".to_string(),
                            detail: "round 3 attempt 0".to_string(),
                        },
                        FlightEvent {
                            at_steps: 512,
                            kind: FlightKind::Mutator,
                            label: "Inlining".to_string(),
                            detail: "iteration 2".to_string(),
                        },
                    ],
                },
                RoundFailure {
                    round,
                    attempt: 1,
                    error: RoundError::BudgetExhausted {
                        budget: BudgetKind::RoundSteps,
                        limit: 10,
                        used: u64::MAX,
                    },
                    flight: Vec::new(),
                },
                RoundFailure {
                    round,
                    attempt: 2,
                    error: RoundError::Timeout { limit_ms: 750 },
                    flight: Vec::new(),
                },
            ],
            crash: Some(BugSighting {
                id: "H205".to_string(),
                component: Component::IdealLoopOptimizationC2,
                is_crash: true,
                jvm: "HotSpur-17".to_string(),
                mutators: vec![MutatorKind::LoopPeeling, MutatorKind::Inlining],
                mutant: mutant.clone(),
            }),
            diff_bugs: vec![BugSighting {
                id: "J101".to_string(),
                component: Component::OtherJit,
                is_crash: false,
                jvm: "J9-8".to_string(),
                mutators: vec![],
                mutant,
            }],
            coverage,
            fault_pair: Some(("listing2".to_string(), None)),
            wasted_steps: 4_321,
            wasted_execs: 7,
            promotion: Some(PromotionRecord {
                name: "p00000000deadbeef".to_string(),
                fingerprint: 0xdead_beef,
                source: mjava::samples::listing2().program,
                from_seed: "listing2".to_string(),
                reason: PromotionReason::Delta(21.5),
                execs: 17,
                steps: 9_876,
            }),
        }
    }

    fn sample_config() -> CampaignConfig {
        let mut config = CampaignConfig::new(7);
        config.rng_seed = u64::MAX - 3; // exercise exact u64 round-trip
        config.supervisor.max_steps = Some(123);
        config.supervisor.round_wall_timeout_ms = Some(250);
        config.fault = Some(FaultPlan::new(5, 0.05).with_only(VmFault::LogCorruption));
        config
    }

    #[test]
    fn record_roundtrips_exactly() {
        let record = sample_record(3);
        let line = encode_record(&record, None);
        let decoded = decode_record(&parse_json(&line).unwrap(), None).unwrap();
        assert_eq!(decoded, record);
        // RoundFailure equality ignores flight dumps, so check them by hand.
        for (d, r) in decoded.errors.iter().zip(&record.errors) {
            assert_eq!(d.flight, r.flight);
        }
    }

    #[test]
    fn coverage_delta_encoding_roundtrips_and_shrinks() {
        let first = sample_record(0);
        let mut second = sample_record(1);
        // Second round: one block leaves, one arrives, the rest repeat.
        second.coverage = first.coverage.clone();
        second.coverage.mark(Area::C1, 77);
        let mut third = sample_record(2);
        third.coverage = second.coverage.clone();

        let line0 = encode_record(&first, None);
        let line1 = encode_record(&second, Some(&first.coverage));
        let line2 = encode_record(&third, Some(&second.coverage));
        assert!(line0.contains("\"full\""), "first covered round is full");
        assert!(line1.contains("\"delta\""), "second round is a delta");
        assert!(
            line2.contains("\"delta\":{\"c1\":{\"add\":[],\"del\":[]}"),
            "unchanged coverage is an empty delta: {line2}"
        );

        let d0 = decode_record(&parse_json(&line0).unwrap(), None).unwrap();
        let d1 = decode_record(&parse_json(&line1).unwrap(), Some(&d0.coverage)).unwrap();
        let d2 = decode_record(&parse_json(&line2).unwrap(), Some(&d1.coverage)).unwrap();
        assert_eq!(d1, second);
        assert_eq!(d2, third);

        // A delta with no previous round is corruption, not a guess.
        assert!(decode_record(&parse_json(&line1).unwrap(), None).is_err());
    }

    #[test]
    fn empty_coverage_rounds_do_not_disturb_the_delta_chain() {
        let covered = sample_record(0);
        let mut errored = sample_record(1);
        errored.disposition = Disposition::Errored;
        errored.coverage = CoverageMap::new();
        let mut after = sample_record(2);
        after.coverage = covered.coverage.clone();

        let dir = std::env::temp_dir().join("mopfuzzer-journal-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("delta-chain.jsonl");
        let config = sample_config();
        let seeds: Vec<Seed> = corpus::builtin().into_iter().take(1).collect();
        let mut writer = JournalWriter::create(&path, &config, &seeds, None).unwrap();
        for r in [&covered, &errored, &after] {
            writer.write_round(r).unwrap();
        }
        drop(writer);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[2].contains("\"coverage\":null"), "errored round");
        assert!(lines[3].contains("\"delta\""), "deltas skip the null round");
        let contents = read_journal(&path).unwrap();
        assert_eq!(contents.records, vec![covered, errored, after]);
        std::fs::remove_file(&path).ok();
    }

    fn sample_corpus_header() -> CorpusHeader {
        CorpusHeader {
            dir: "/tmp/some store \"dir\"".to_string(),
            promote_threshold: 17.25,
            baseline: vec![
                BaselineEntry {
                    name: "listing2".to_string(),
                    fingerprint: u64::MAX - 9,
                    stats: jcorpus::EntryStats {
                        schedules: 4,
                        yield_sum: 51.375,
                        faults: 1,
                        bugs: 2,
                    },
                    floor_streak: 3,
                },
                BaselineEntry {
                    name: "p0000000000000001".to_string(),
                    fingerprint: 1,
                    stats: jcorpus::EntryStats::default(),
                    floor_streak: 0,
                },
            ],
            preq: vec![
                ("gen_000".to_string(), None),
                ("listing2".to_string(), Some(MutatorKind::Inlining)),
            ],
        }
    }

    #[test]
    fn corpus_header_roundtrips_exactly() {
        let config = sample_config();
        let seeds: Vec<Seed> = corpus::builtin().into_iter().take(2).collect();
        let header = sample_corpus_header();
        let line = encode_header(&config, &seeds, Some(&header));
        let (_, _, dcorpus) = decode_header(&line).unwrap();
        assert_eq!(dcorpus, Some(header));
        // Plain campaigns journal a null corpus and read back None.
        let plain = encode_header(&config, &seeds, None);
        let (_, _, dcorpus) = decode_header(&plain).unwrap();
        assert_eq!(dcorpus, None);
    }

    #[test]
    fn header_roundtrips_exactly() {
        let config = sample_config();
        let seeds: Vec<Seed> = corpus::builtin().into_iter().take(3).collect();
        let line = encode_header(&config, &seeds, None);
        let (dconfig, dseeds, _) = decode_header(&line).unwrap();
        assert_eq!(dconfig.iterations_per_seed, config.iterations_per_seed);
        assert_eq!(dconfig.variant, config.variant);
        assert_eq!(dconfig.rounds, config.rounds);
        assert_eq!(dconfig.rng_seed, config.rng_seed);
        assert_eq!(dconfig.supervisor, config.supervisor);
        assert_eq!(dconfig.fault, config.fault);
        assert_eq!(
            dconfig.pool.iter().map(JvmSpec::name).collect::<Vec<_>>(),
            config.pool.iter().map(JvmSpec::name).collect::<Vec<_>>()
        );
        assert_eq!(dseeds.len(), seeds.len());
        for (d, s) in dseeds.iter().zip(&seeds) {
            assert_eq!(d.name, s.name);
            assert_eq!(d.program, s.program);
        }
    }

    #[test]
    fn string_escapes_roundtrip() {
        for nasty in [
            "plain",
            "with \"quotes\" and \\backslashes\\",
            "newline\nand\ttab and \r return",
            "control \u{1} char and unicode \u{fffd} é 日本",
            "",
        ] {
            let parsed = parse_json(&json_str(nasty)).unwrap();
            assert_eq!(parsed.str_(), Some(nasty), "{nasty:?}");
        }
    }

    #[test]
    fn journal_file_roundtrip_and_truncation_tolerance() {
        let dir = std::env::temp_dir().join("mopfuzzer-journal-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.jsonl");
        let config = sample_config();
        let seeds: Vec<Seed> = corpus::builtin().into_iter().take(2).collect();
        let records = [sample_record(0), sample_record(1)];
        let mut writer = JournalWriter::create(&path, &config, &seeds, None).unwrap();
        for r in &records {
            writer.write_round(r).unwrap();
        }
        drop(writer);
        let contents = read_journal(&path).unwrap();
        assert!(!contents.truncated_tail);
        assert_eq!(contents.records, records);
        assert_eq!(contents.seeds.len(), 2);

        // Chop the last line in half: reader drops it, keeps the rest.
        let text = std::fs::read_to_string(&path).unwrap();
        let cut = text.trim_end().len() - 40;
        std::fs::write(&path, &text[..cut]).unwrap();
        let contents = read_journal(&path).unwrap();
        assert!(contents.truncated_tail);
        assert_eq!(contents.records, records[..1]);

        // Corruption in the middle is an error, not silently dropped.
        let lines: Vec<&str> = text.lines().collect();
        let mangled = format!("{}\n{}\n{}\n", lines[0], "{broken", lines[2]);
        std::fs::write(&path, mangled).unwrap();
        assert!(read_journal(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn out_of_order_rounds_are_rejected() {
        let dir = std::env::temp_dir().join("mopfuzzer-journal-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("order.jsonl");
        let config = sample_config();
        let seeds: Vec<Seed> = corpus::builtin().into_iter().take(1).collect();
        let mut writer = JournalWriter::create(&path, &config, &seeds, None).unwrap();
        writer.write_round(&sample_record(0)).unwrap();
        writer.write_round(&sample_record(5)).unwrap();
        writer.write_round(&sample_record(1)).unwrap();
        drop(writer);
        // Bad round index in the middle → hard error (only a bad *tail*
        // may be dropped).
        assert!(read_journal(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
