//! Test oracles (paper §3.5): crash detection and differential testing
//! across the JVM pool.

use jvmsim::{CoverageMap, CrashReport, JvmRun, JvmSpec, RunOptions, Verdict as JvmVerdict};
use mjava::Program;

/// The oracle's verdict on one test case.
#[derive(Debug, Clone)]
pub enum OracleVerdict {
    /// All JVMs completed and agreed.
    Pass,
    /// A JVM's compiler crashed.
    Crash {
        /// Which JVM crashed.
        jvm: String,
        /// Its crash report.
        report: CrashReport,
    },
    /// Completed JVMs disagreed on observable output.
    Miscompile {
        /// Per-JVM observable output.
        outputs: Vec<(String, Vec<String>)>,
        /// Ground-truth ids of the miscompile bugs whose corruption was
        /// applied (bookkeeping only — a real campaign would not know).
        culprits: Vec<String>,
    },
    /// Fewer than two JVMs produced comparable output (timeouts,
    /// build failures).
    Inconclusive(String),
}

impl OracleVerdict {
    /// True for crash or miscompilation.
    pub fn is_bug(&self) -> bool {
        matches!(
            self,
            OracleVerdict::Crash { .. } | OracleVerdict::Miscompile { .. }
        )
    }
}

/// Everything one differential round produced.
#[derive(Debug, Clone)]
pub struct DifferentialResult {
    /// The verdict.
    pub verdict: OracleVerdict,
    /// Coverage accumulated across all pool executions.
    pub coverage: CoverageMap,
    /// JVM executions performed.
    pub executions: u64,
    /// Interpreter steps consumed.
    pub steps: u64,
}

/// Runs `program` on every JVM in `pool` and compares observable
/// behaviour (§3.5: the LTS versions and mainline of both families).
pub fn differential(
    program: &Program,
    pool: &[JvmSpec],
    options: &RunOptions,
) -> DifferentialResult {
    let mut coverage = CoverageMap::new();
    let mut executions = 0u64;
    let mut steps = 0u64;
    let mut runs: Vec<JvmRun> = Vec::new();
    for spec in pool {
        let run = jvmsim::run_jvm(program, spec, options);
        executions += 1;
        steps += run.steps;
        coverage.merge(&run.coverage);
        if let JvmVerdict::CompilerCrash(report) = &run.verdict {
            if jtelemetry::enabled() {
                jtelemetry::count(jtelemetry::Counter::OracleCrash, 1);
                jtelemetry::flight(
                    jtelemetry::FlightKind::Oracle,
                    "crash",
                    format!("{} ({})", run.jvm, report.bug_id),
                );
            }
            return DifferentialResult {
                verdict: OracleVerdict::Crash {
                    jvm: run.jvm.clone(),
                    report: report.clone(),
                },
                coverage,
                executions,
                steps,
            };
        }
        runs.push(run);
    }
    let mut outputs: Vec<(String, Vec<String>)> = Vec::new();
    let mut culprits: Vec<String> = Vec::new();
    for run in &runs {
        if let Some(obs) = run.observable() {
            outputs.push((run.jvm.clone(), obs));
            culprits.extend(run.miscompiled_by.iter().cloned());
        }
    }
    culprits.sort();
    culprits.dedup();
    let verdict = if outputs.len() < 2 {
        OracleVerdict::Inconclusive(format!(
            "only {} of {} JVMs produced comparable output",
            outputs.len(),
            pool.len()
        ))
    } else if outputs.iter().all(|(_, o)| o == &outputs[0].1) {
        OracleVerdict::Pass
    } else {
        OracleVerdict::Miscompile { outputs, culprits }
    };
    if jtelemetry::enabled() {
        let (counter, label) = match &verdict {
            OracleVerdict::Pass => (jtelemetry::Counter::OraclePass, "pass"),
            OracleVerdict::Miscompile { .. } => {
                (jtelemetry::Counter::OracleMiscompile, "miscompile")
            }
            OracleVerdict::Inconclusive(_) => {
                (jtelemetry::Counter::OracleInconclusive, "inconclusive")
            }
            OracleVerdict::Crash { .. } => unreachable!("crash returns early"),
        };
        jtelemetry::count(counter, 1);
        jtelemetry::flight(jtelemetry::FlightKind::Oracle, label, String::new());
    }
    DifferentialResult {
        verdict,
        coverage,
        executions,
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jvmsim::Version;

    fn pool() -> Vec<JvmSpec> {
        JvmSpec::differential_pool()
    }

    #[test]
    fn seeds_pass_differential_testing() {
        for seed in mjava::samples::all_seeds() {
            let result = differential(&seed.program, &pool(), &RunOptions::fuzzing());
            assert!(
                matches!(result.verdict, OracleVerdict::Pass),
                "seed {} verdict {:?}",
                seed.name,
                result.verdict
            );
            assert_eq!(result.executions, 8);
        }
    }

    #[test]
    fn detects_planted_output_divergence() {
        // Plant a divergence by hand: a program whose behaviour trips a
        // miscompile bug on J9 only — J101 requires StoreEliminate>=2 and
        // GvnHit>=1. We synthesize redundant stores plus a CSE pair.
        let program = mjava::parse(
            r#"
            class T {
                static int s;
                static void main() {
                    int a = 3 * 3 + 1;
                    s = 5;
                    s = 6;
                    s = 7;
                    int p = a + 2;
                    int q = a + 2;
                    System.out.println(s + p + q);
                }
            }
            "#,
        )
        .unwrap();
        let result = differential(&program, &pool(), &RunOptions::fuzzing());
        match &result.verdict {
            OracleVerdict::Miscompile { outputs, culprits } => {
                assert!(!culprits.is_empty());
                assert!(outputs.len() >= 2);
            }
            OracleVerdict::Crash { .. } => {} // also a detection
            other => panic!("divergence not detected: {other:?}"),
        }
    }

    #[test]
    fn inconclusive_when_everything_times_out() {
        let program =
            mjava::parse("class T { static void main() { while (true) { int x = 1; } } }").unwrap();
        let mut options = RunOptions::fuzzing();
        options.exec.fuel = 5_000;
        let result = differential(
            &program,
            &[JvmSpec::hotspur(Version::V17), JvmSpec::j9(Version::V17)],
            &options,
        );
        assert!(matches!(result.verdict, OracleVerdict::Inconclusive(_)));
    }

    #[test]
    fn verdict_bug_classification() {
        assert!(!OracleVerdict::Pass.is_bug());
        assert!(!OracleVerdict::Inconclusive("x".into()).is_bug());
        assert!(OracleVerdict::Miscompile {
            outputs: vec![],
            culprits: vec![]
        }
        .is_bug());
    }
}
