//! Test oracles (paper §3.5): crash detection and differential testing
//! across the JVM pool.
//!
//! # Oracle parallelism
//!
//! [`differential_jobs`] farms the pool executions onto the process-wide
//! work pool ([`crate::pool`]) and then **merges in canonical pool
//! order**, replaying every observable side effect on the calling thread
//! exactly as the serial loop would have produced it:
//!
//! * each task's flight-recorder stream (the `vm_execution` span open
//!   plus any optimizer-phase spans) is re-emitted at the same
//!   simulated-work timestamp (each task runs under
//!   [`jtelemetry::work::isolated`], and the merge credits each run's
//!   work in pool order, so the meter reads the same value the serial
//!   loop would have seen — the work meter only advances at execution
//!   completion, so every in-run event shares one timestamp);
//! * each task's counters and span histograms are captured in a private
//!   session and absorbed in merge order;
//! * the crash early-exit becomes "first crash in pool order wins":
//!   speculative results past that index are dropped *before* their
//!   telemetry is absorbed, so counters match a serial loop that never
//!   ran them. Two guards keep that speculation from costing CPU a
//!   crash-heavy fuzzing workload cannot spare: pool index 0 runs as an
//!   inline **pilot probe** on the caller before anything is scattered
//!   (a first-JVM crash — the dominant early-exit — therefore stays at
//!   exactly serial cost), and once any task observes a crash, tasks
//!   claimed at higher pool indices **skip execution outright** (the
//!   merge provably never reads those slots);
//! * a panic (fault injection) at pool index `i` is resumed on the
//!   calling thread at merge index `i` — after absorbing the partial
//!   span the unwinding task recorded, and only if no earlier JVM
//!   crashed — so the supervisor's containment and classification see
//!   the identical unwind the serial loop raises.
//!
//! The result: verdicts, culprit sets, `Inconclusive` messages, merged
//! coverage, journals, and telemetry totals are bit-identical at any
//! `--oracle-jobs`.

use crate::pool;
use jvmsim::{CoverageMap, CrashReport, JvmRun, JvmSpec, RunOptions, Verdict as JvmVerdict};
use mjava::Program;
use std::any::Any;
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// The oracle's verdict on one test case.
#[derive(Debug, Clone, PartialEq)]
pub enum OracleVerdict {
    /// All JVMs completed and agreed.
    Pass,
    /// A JVM's compiler crashed.
    Crash {
        /// Which JVM crashed.
        jvm: String,
        /// Its crash report.
        report: CrashReport,
    },
    /// Completed JVMs disagreed on observable output.
    Miscompile {
        /// Per-JVM observable output.
        outputs: Vec<(String, Vec<String>)>,
        /// Ground-truth ids of the miscompile bugs whose corruption was
        /// applied (bookkeeping only — a real campaign would not know).
        culprits: Vec<String>,
    },
    /// Fewer than two JVMs produced comparable output (timeouts,
    /// build failures).
    Inconclusive(String),
}

impl OracleVerdict {
    /// True for crash or miscompilation.
    pub fn is_bug(&self) -> bool {
        matches!(
            self,
            OracleVerdict::Crash { .. } | OracleVerdict::Miscompile { .. }
        )
    }
}

/// Everything one differential round produced.
#[derive(Debug, Clone, PartialEq)]
pub struct DifferentialResult {
    /// The verdict.
    pub verdict: OracleVerdict,
    /// Coverage accumulated across all pool executions.
    pub coverage: CoverageMap,
    /// JVM executions performed.
    pub executions: u64,
    /// Interpreter steps consumed.
    pub steps: u64,
}

/// Accumulates pool runs in canonical order — shared by the serial loop
/// and the parallel merge so they cannot drift apart.
struct Accumulator {
    coverage: CoverageMap,
    executions: u64,
    steps: u64,
    runs: Vec<JvmRun>,
    /// Code-cache keys seen so far this differential call (merge order).
    code_seen: HashSet<u64>,
    /// Pipeline-memo keys seen so far this differential call.
    pipeline_seen: HashSet<u64>,
}

impl Accumulator {
    fn new() -> Accumulator {
        Accumulator {
            coverage: CoverageMap::new(),
            executions: 0,
            steps: 0,
            runs: Vec::new(),
            code_seen: HashSet::new(),
            pipeline_seen: HashSet::new(),
        }
    }

    /// Counts this run's cache lookups against the keys already seen this
    /// differential call, in canonical merge order. The process-wide
    /// caches are warmed in scheduling order (speculative pool executions
    /// included), so their live hit rates depend on worker count — but
    /// each run's *lookup keys* are a pure function of the execution, so
    /// replaying them against merge-order seen-sets yields counters that
    /// are bit-identical at any `--jobs`×`--oracle-jobs`.
    fn count_cache_lookups(&mut self, run: &JvmRun) {
        let mut tally = [0u64; 4]; // code hit/miss, pipeline hit/miss
        for &key in &run.cache_log.code {
            let hit = !self.code_seen.insert(key);
            tally[usize::from(!hit)] += 1;
        }
        for &key in &run.cache_log.pipeline {
            let hit = !self.pipeline_seen.insert(key);
            tally[2 + usize::from(!hit)] += 1;
        }
        let counters = [
            jtelemetry::Counter::CodeCacheHits,
            jtelemetry::Counter::CodeCacheMisses,
            jtelemetry::Counter::PipelineCacheHits,
            jtelemetry::Counter::PipelineCacheMisses,
        ];
        for (counter, n) in counters.into_iter().zip(tally) {
            if n > 0 {
                jtelemetry::count(counter, n);
            }
        }
        if run.cache_log.inlined > 0 {
            jtelemetry::count(jtelemetry::Counter::LeafCallsInlined, run.cache_log.inlined);
        }
    }

    /// Folds in the next run (in pool order). Returns the early-exit
    /// result when this run crashed the compiler.
    fn push(&mut self, run: JvmRun) -> Option<DifferentialResult> {
        self.executions += 1;
        self.steps += run.steps;
        self.coverage.merge(&run.coverage);
        // Before the crash early-exit: the crashing run's lookups happened.
        if jtelemetry::enabled() {
            self.count_cache_lookups(&run);
        }
        if let JvmVerdict::CompilerCrash(report) = &run.verdict {
            if jtelemetry::enabled() {
                jtelemetry::count(jtelemetry::Counter::OracleCrash, 1);
                jtelemetry::flight(
                    jtelemetry::FlightKind::Oracle,
                    "crash",
                    format!("{} ({})", run.jvm, report.bug_id),
                );
                jtelemetry::trace_instant("verdict", || {
                    vec![
                        ("kind", "crash".to_string()),
                        ("jvm", run.jvm.clone()),
                        ("bug", report.bug_id.clone()),
                    ]
                });
            }
            return Some(DifferentialResult {
                verdict: OracleVerdict::Crash {
                    jvm: run.jvm.clone(),
                    report: report.clone(),
                },
                coverage: std::mem::take(&mut self.coverage),
                executions: self.executions,
                steps: self.steps,
            });
        }
        self.runs.push(run);
        None
    }

    /// All JVMs completed: compare observable behaviour.
    fn finish(self, pool_len: usize) -> DifferentialResult {
        let mut outputs: Vec<(String, Vec<String>)> = Vec::new();
        let mut culprits: Vec<String> = Vec::new();
        for run in &self.runs {
            if let Some(obs) = run.observable() {
                outputs.push((run.jvm.clone(), obs));
                culprits.extend(run.miscompiled_by.iter().cloned());
            }
        }
        culprits.sort();
        culprits.dedup();
        let verdict = if outputs.len() < 2 {
            OracleVerdict::Inconclusive(format!(
                "only {} of {} JVMs produced comparable output",
                outputs.len(),
                pool_len
            ))
        } else if outputs.iter().all(|(_, o)| o == &outputs[0].1) {
            OracleVerdict::Pass
        } else {
            OracleVerdict::Miscompile { outputs, culprits }
        };
        if jtelemetry::enabled() {
            let (counter, label) = match &verdict {
                OracleVerdict::Pass => (jtelemetry::Counter::OraclePass, "pass"),
                OracleVerdict::Miscompile { .. } => {
                    (jtelemetry::Counter::OracleMiscompile, "miscompile")
                }
                OracleVerdict::Inconclusive(_) => {
                    (jtelemetry::Counter::OracleInconclusive, "inconclusive")
                }
                OracleVerdict::Crash { .. } => unreachable!("crash returns early"),
            };
            jtelemetry::count(counter, 1);
            jtelemetry::flight(jtelemetry::FlightKind::Oracle, label, String::new());
            jtelemetry::trace_instant("verdict", || vec![("kind", label.to_string())]);
        }
        DifferentialResult {
            verdict,
            coverage: self.coverage,
            executions: self.executions,
            steps: self.steps,
        }
    }
}

/// Runs `program` on every JVM in `pool` and compares observable
/// behaviour (§3.5: the LTS versions and mainline of both families).
pub fn differential(
    program: &Program,
    pool: &[JvmSpec],
    options: &RunOptions,
) -> DifferentialResult {
    differential_jobs(program, pool, options, 1)
}

/// [`differential`] with up to `jobs` pool executions in flight at once
/// (`--oracle-jobs`). `jobs <= 1` is exactly the serial loop; any other
/// value produces bit-identical results via the canonical-order merge
/// described in the module docs.
pub fn differential_jobs(
    program: &Program,
    pool: &[JvmSpec],
    options: &RunOptions,
    jobs: usize,
) -> DifferentialResult {
    let mut accum = Accumulator::new();
    // One class-loading pass for the whole pool: every JVM executes the
    // same program, so the image (and its load-time method lowering) is
    // built once, here on the caller thread — `MethodsLowered` counts it
    // once regardless of worker count. Each run still gets its own
    // mutable clone to install JIT code into.
    let image = Arc::new(jexec::Image::build(program));
    if jobs <= 1 || pool.len() <= 1 {
        for spec in pool {
            let run = jvmsim::run_jvm_with_image(program, Some((*image).clone()), spec, options);
            if let Some(result) = accum.push(run) {
                return result;
            }
        }
        return accum.finish(pool.len());
    }

    // Pilot probe: run pool index 0 inline, exactly as the serial loop
    // would — directly on this thread, telemetry landing natively. On a
    // fuzzing workload the dominant early-exit is a compiler crash on
    // the *first* JVM, and probing it before fanning out keeps that case
    // at serial cost instead of paying for seven speculative executions
    // the merge would immediately discard.
    let run = jvmsim::run_jvm_with_image(program, Some((*image).clone()), &pool[0], options);
    if let Some(result) = accum.push(run) {
        return result;
    }

    for slot in execute_pool(program, &image, &pool[1..], options, jobs) {
        // A cancelled slot can only sit *behind* the first crash in pool
        // order, and `accum.push` returns before this loop reaches it.
        let (caught, snap, flight, trace) =
            slot.expect("merge consumed a task cancelled by an earlier crash");
        // Replay the side effects `run_jvm` would have had on this
        // thread, in this order: the flight events first (their serial
        // timestamp is the work meter *before* this run), then the
        // task's counters and span histograms, then its trace spans
        // (re-parented under this thread's open span at the pre-run work
        // meter — exactly where the serial loop would have opened them),
        // then the work credit.
        for event in flight {
            jtelemetry::flight(event.kind, event.label, event.detail);
        }
        if let Some(snap) = &snap {
            jtelemetry::absorb(snap);
        }
        jtelemetry::absorb_trace(&trace);
        let run = match caught {
            Ok(run) => run,
            // An injected VM panic: re-raise it at its canonical pool
            // position so the supervisor's containment sees the serial
            // unwind. No work is credited — the execution never completed.
            Err(payload) => std::panic::resume_unwind(payload),
        };
        jtelemetry::work::add(run.steps, 1);
        if let Some(result) = accum.push(run) {
            // First crash in pool order wins; the remaining speculative
            // results drop here, their telemetry never absorbed.
            return result;
        }
    }
    debug_assert_eq!(accum.runs.len(), pool.len());
    accum.finish(pool.len())
}

/// One task's outcome: the run (or its panic payload) plus the telemetry
/// it accrued in its private session — counters/spans as a snapshot, the
/// flight events for in-order replay, and the trace spans for in-order
/// absorption.
type TaskOutput = (
    Result<JvmRun, Box<dyn Any + Send>>,
    Option<jtelemetry::MetricsSnapshot>,
    Vec<jtelemetry::FlightEvent>,
    Vec<jtelemetry::TraceEvent>,
);

/// Scatters the pool executions across the shared worker pool. Each task
/// is hermetic: its work-meter credits roll back, its telemetry lands in
/// a fresh private session (returned as a snapshot), and its panics are
/// caught and returned as payloads — whichever thread runs it, including
/// the calling thread itself, observes no effects.
///
/// Crash cancellation: the merge drops everything past the first crash
/// in pool order, so once some task has observed a compiler crash at
/// index `c`, a task claimed at index `> c` returns `None` without
/// executing — the serial loop would never have run it either. The
/// cancelled slots are exactly a suffix of what the merge discards, so
/// results stay bit-identical while a crash-heavy workload keeps close
/// to serial cost instead of paying for the whole speculative pool.
fn execute_pool(
    program: &Program,
    image: &Arc<Result<jexec::Image, jexec::BuildError>>,
    pool: &[JvmSpec],
    options: &RunOptions,
    jobs: usize,
) -> Vec<Option<TaskOutput>> {
    // Workers inherit the calling session's shape (clock mode, tracing,
    // profiling) so their private sessions record the same event classes
    // the serial loop would have.
    let spec = jtelemetry::session_spec();
    let program = program.clone();
    let image = Arc::clone(image);
    let options = options.clone();
    let crash_floor = AtomicUsize::new(usize::MAX);
    // The round's cancellation token is installed on the *calling* thread;
    // capture it here and re-install it inside each task so the watchdog
    // reaches executions running on pool threads too.
    let cancel = jtelemetry::cancel::current();
    pool::scatter(pool.to_vec(), jobs, move |index, spec_jvm: JvmSpec| {
        if index > crash_floor.load(Ordering::Relaxed) {
            return None;
        }
        let _cancel_guard = cancel.as_ref().map(jtelemetry::cancel::install);
        Some(jtelemetry::work::isolated(|| {
            let saved = jtelemetry::take();
            if let Some(spec) = spec {
                jtelemetry::install(jtelemetry::Session::from_spec(spec));
            }
            let caught = pool::quiet_catch_unwind(|| {
                jvmsim::run_jvm_with_image(&program, Some((*image).clone()), &spec_jvm, &options)
            });
            if let Ok(run) = &caught {
                if matches!(run.verdict, JvmVerdict::CompilerCrash(_)) {
                    crash_floor.fetch_min(index, Ordering::Relaxed);
                }
            }
            let flight = jtelemetry::flight_snapshot();
            let (snap, trace) = match jtelemetry::take() {
                Some(mut session) => {
                    let trace = session.take_trace();
                    (Some(session.snapshot()), trace)
                }
                None => (None, Vec::new()),
            };
            if let Some(session) = saved {
                jtelemetry::install(session);
            }
            (caught, snap, flight, trace)
        }))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use jvmsim::Version;

    fn pool() -> Vec<JvmSpec> {
        JvmSpec::differential_pool()
    }

    #[test]
    fn seeds_pass_differential_testing() {
        for seed in mjava::samples::all_seeds() {
            let result = differential(&seed.program, &pool(), &RunOptions::fuzzing());
            assert!(
                matches!(result.verdict, OracleVerdict::Pass),
                "seed {} verdict {:?}",
                seed.name,
                result.verdict
            );
            assert_eq!(result.executions, 8);
        }
    }

    #[test]
    fn detects_planted_output_divergence() {
        // Plant a divergence by hand: a program whose behaviour trips a
        // miscompile bug on J9 only — J101 requires StoreEliminate>=2 and
        // GvnHit>=1. We synthesize redundant stores plus a CSE pair.
        let program = mjava::parse(
            r#"
            class T {
                static int s;
                static void main() {
                    int a = 3 * 3 + 1;
                    s = 5;
                    s = 6;
                    s = 7;
                    int p = a + 2;
                    int q = a + 2;
                    System.out.println(s + p + q);
                }
            }
            "#,
        )
        .unwrap();
        let result = differential(&program, &pool(), &RunOptions::fuzzing());
        match &result.verdict {
            OracleVerdict::Miscompile { outputs, culprits } => {
                assert!(!culprits.is_empty());
                assert!(outputs.len() >= 2);
            }
            OracleVerdict::Crash { .. } => {} // also a detection
            other => panic!("divergence not detected: {other:?}"),
        }
    }

    #[test]
    fn inconclusive_when_everything_times_out() {
        let program =
            mjava::parse("class T { static void main() { while (true) { int x = 1; } } }").unwrap();
        let mut options = RunOptions::fuzzing();
        options.exec.fuel = 5_000;
        let result = differential(
            &program,
            &[JvmSpec::hotspur(Version::V17), JvmSpec::j9(Version::V17)],
            &options,
        );
        assert!(matches!(result.verdict, OracleVerdict::Inconclusive(_)));
    }

    #[test]
    fn verdict_bug_classification() {
        assert!(!OracleVerdict::Pass.is_bug());
        assert!(!OracleVerdict::Inconclusive("x".into()).is_bug());
        assert!(OracleVerdict::Miscompile {
            outputs: vec![],
            culprits: vec![]
        }
        .is_bug());
    }

    #[test]
    fn parallel_oracle_matches_serial_on_all_seeds() {
        for seed in mjava::samples::all_seeds() {
            let serial = differential(&seed.program, &pool(), &RunOptions::fuzzing());
            for jobs in [2, 4, 8] {
                let parallel =
                    differential_jobs(&seed.program, &pool(), &RunOptions::fuzzing(), jobs);
                assert_eq!(serial, parallel, "seed {} at oracle-jobs {jobs}", seed.name);
            }
        }
    }

    /// Crash cancellation must be invisible: fuzz until a mutant crashes
    /// some JVM in the pool, then check the parallel oracle (which skips
    /// the speculative suffix behind the crash) still returns exactly
    /// the serial result.
    #[test]
    fn parallel_oracle_matches_serial_on_a_crashing_mutant() {
        use crate::fuzzer::{fuzz, FuzzConfig};
        let pool = pool();
        let mut checked = 0;
        for (i, seed) in mjava::samples::all_seeds().iter().enumerate() {
            let config = FuzzConfig {
                max_iterations: 20,
                rng_seed: 0xc4a5 + i as u64,
                ..FuzzConfig::new(pool[i % pool.len()].clone())
            };
            let mutant = fuzz(&seed.program, &config).final_mutant;
            let serial = differential(&mutant, &pool, &RunOptions::fuzzing());
            if !matches!(serial.verdict, OracleVerdict::Crash { .. }) {
                continue;
            }
            checked += 1;
            for jobs in [2, 8] {
                let parallel = differential_jobs(&mutant, &pool, &RunOptions::fuzzing(), jobs);
                assert_eq!(serial, parallel, "seed {} at oracle-jobs {jobs}", seed.name);
            }
        }
        assert!(
            checked > 0,
            "no fuzzed mutant crashed; strengthen the config"
        );
    }

    #[test]
    fn parallel_oracle_replays_work_in_pool_order() {
        let seed = &mjava::samples::all_seeds()[0];
        let before = jtelemetry::work::totals();
        let serial = differential(&seed.program, &pool(), &RunOptions::fuzzing());
        let after_serial = jtelemetry::work::totals();
        let parallel = differential_jobs(&seed.program, &pool(), &RunOptions::fuzzing(), 4);
        let after_parallel = jtelemetry::work::totals();
        assert_eq!(serial, parallel);
        // The merge credits exactly the serial loop's work on this thread.
        assert_eq!(
            (after_serial.0 - before.0, after_serial.1 - before.1),
            (
                after_parallel.0 - after_serial.0,
                after_parallel.1 - after_serial.1
            )
        );
    }
}
