//! Integration test of the `mopfuzzer` CLI binary (the `MopFuzzer.jar`
//! analogue of the paper's Appendix A.5).

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mopfuzzer"))
}

#[test]
fn help_prints_usage() {
    let out = bin().arg("--help").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("--project_path"));
    assert!(text.contains("--enable_profile_guide"));
}

#[test]
fn unknown_option_fails_with_usage() {
    let out = bin().args(["--bogus", "1"]).output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown option"));
}

#[test]
fn fuzzes_a_project_directory_and_writes_mutants() {
    let dir = std::env::temp_dir().join(format!("mop_cli_{}", std::process::id()));
    let proj = dir.join("proj");
    let out_dir = dir.join("mutants");
    std::fs::create_dir_all(&proj).unwrap();
    std::fs::write(
        proj.join("Test0001.java"),
        r#"
        class T {
            static int s;
            static void main() {
                for (int i = 0; i < 1_000; i++) { s = s + i % 5; }
                System.out.println(s);
            }
        }
        "#,
    )
    .unwrap();

    let out = bin()
        .args([
            "--project_path",
            proj.to_str().unwrap(),
            "--target_case",
            "Test0001",
            "--jdk",
            "HotSpur-17,J9-17",
            "--enable_profile_guide",
            "true",
            "--iterations",
            "6",
            "--out",
            out_dir.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stdout: {stdout}\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("Test0001"));

    // The final mutant was written and is a valid MiniJava program.
    let mutant =
        std::fs::read_to_string(out_dir.join("Test0001_final.java")).expect("mutant file written");
    mjava::parse(&mutant).expect("mutant parses");
    // The per-case log records the applied mutators and the verdict.
    let log = std::fs::read_to_string(out_dir.join("Test0001.log")).expect("log written");
    assert!(log.contains("verdict:"));
    assert!(log.contains("iter"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn campaign_mode_journals_and_resume_replays_identically() {
    let dir = std::env::temp_dir().join(format!("mop_cli_camp_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("campaign.jsonl");
    let campaign_args = [
        "--rounds",
        "3",
        "--iterations",
        "8",
        "--rng",
        "2024",
        "--jdk",
        "HotSpur-17,J9-17",
        "--journal",
        journal.to_str().unwrap(),
    ];

    let out = bin().args(campaign_args).output().expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stdout: {stdout}\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("supervised rounds"));
    let done_line = stdout
        .lines()
        .find(|l| l.starts_with("done:"))
        .expect("summary printed")
        .to_string();

    // The journal holds a header plus one line per round.
    let text = std::fs::read_to_string(&journal).expect("journal written");
    assert_eq!(text.lines().count(), 4, "{text}");

    // Truncate the journal to 2 of 3 rounds; resume re-runs the rest and
    // reports the identical totals.
    let kept: Vec<&str> = text.lines().take(3).collect();
    std::fs::write(&journal, kept.join("\n")).unwrap();
    let out = bin()
        .args(["--resume", journal.to_str().unwrap()])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stdout: {stdout}\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains(&done_line),
        "{stdout}\nexpected: {done_line}"
    );
    // The resumed journal is whole again.
    let text = std::fs::read_to_string(&journal).unwrap();
    assert_eq!(text.lines().count(), 4);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_with_larger_rounds_extends_a_finished_campaign() {
    let dir = std::env::temp_dir().join(format!("mop_cli_extend_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("campaign.jsonl");
    let out = bin()
        .args([
            "--rounds",
            "2",
            "--iterations",
            "6",
            "--jdk",
            "HotSpur-17,J9-17",
            "--journal",
            journal.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    assert_eq!(
        std::fs::read_to_string(&journal).unwrap().lines().count(),
        3,
        "header + 2 rounds"
    );

    // The campaign is finished; --resume alone would replay and stop.
    // With a larger --rounds it extends to the new total.
    let out = bin()
        .args(["--resume", journal.to_str().unwrap(), "--rounds", "5"])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stdout: {stdout}\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("extending to 5 total round(s)"), "{stdout}");
    assert!(stdout.contains("5 round(s) completed"), "{stdout}");
    let text = std::fs::read_to_string(&journal).unwrap();
    assert_eq!(text.lines().count(), 6, "header + 5 rounds");
    // The rewritten header carries the extended total, so a further plain
    // resume does not shrink the campaign back.
    assert!(
        text.lines().next().unwrap().contains("\"rounds\":5"),
        "{text}"
    );

    // Shrinking below the journaled rounds is refused.
    let out = bin()
        .args(["--resume", journal.to_str().unwrap(), "--rounds", "1"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot shrink"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_out_writes_valid_snapshots_and_prometheus() {
    let dir = std::env::temp_dir().join(format!("mop_cli_metrics_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let metrics = dir.join("metrics.jsonl");
    let out = bin()
        .args([
            "--rounds",
            "3",
            "--iterations",
            "6",
            "--jdk",
            "HotSpur-17,J9-17",
            "--metrics-out",
            metrics.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stdout: {stdout}\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // End-of-campaign human report on stdout.
    assert!(stdout.contains("== telemetry report =="), "{stdout}");
    assert!(stdout.contains("top phases by time:"), "{stdout}");

    // One snapshot per round plus the final flush, every line valid.
    let text = std::fs::read_to_string(&metrics).expect("metrics written");
    assert_eq!(text.lines().count(), 4, "{text}");
    for line in text.lines() {
        jtelemetry::schema::validate_snapshot_line(line).expect("snapshot line valid");
    }
    let prom = std::fs::read_to_string(dir.join("metrics.jsonl.prom")).expect("prom written");
    jtelemetry::schema::validate_prometheus(&prom).expect("prometheus page valid");
    assert!(prom.contains("mop_rounds_ok 3"), "{prom}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_out_writes_a_perfetto_loadable_trace() {
    let dir = std::env::temp_dir().join(format!("mop_cli_trace_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("trace.json");
    let out = bin()
        .args([
            "--rounds",
            "3",
            "--iterations",
            "6",
            "--jdk",
            "HotSpur-17,J9-17",
            "--jobs",
            "2",
            "--oracle-jobs",
            "2",
            "--profile",
            "--trace-out",
            trace.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stdout: {stdout}\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("trace: "), "{stdout}");

    let json = std::fs::read_to_string(&trace).expect("trace written");
    jtelemetry::schema::validate_trace(&json).expect("trace valid");
    // The campaign left round, optimizer, and interpreter spans in the
    // export, and the otherData records the worker count.
    assert!(json.contains("\"round\""), "{json}");
    assert!(json.contains("\"optimize\""), "{json}");
    assert!(json.contains("\"interp_run\""), "{json}");
    assert!(json.contains("\"jobs\":\"2\""), "{json}");

    std::fs::remove_dir_all(&dir).ok();
}

/// `--metrics-out -` and `--trace-out -` stream machine-readable output
/// to stdout; every stdout line must stay parseable (human banner,
/// report, and summary all move to stderr).
#[test]
fn streaming_to_stdout_keeps_the_stream_clean() {
    let out = bin()
        .args([
            "--rounds",
            "3",
            "--iterations",
            "6",
            "--jdk",
            "HotSpur-17,J9-17",
            "--profile",
            "--metrics-out",
            "-",
            "--trace-out",
            "-",
        ])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stdout: {stdout}\nstderr: {stderr}");

    let mut snapshots = 0;
    let mut traces = 0;
    for line in stdout.lines() {
        if line.starts_with("{\"traceEvents\"") {
            jtelemetry::schema::validate_trace(line).expect("trace line valid");
            traces += 1;
        } else {
            jtelemetry::schema::validate_snapshot_line(line)
                .unwrap_or_else(|e| panic!("non-machine stdout line {line:?}: {e}"));
            snapshots += 1;
        }
    }
    // One snapshot per round plus the final flush, then the trace.
    assert_eq!(snapshots, 4, "{stdout}");
    assert_eq!(traces, 1, "{stdout}");

    // The human-facing lines went to stderr instead.
    assert!(stderr.contains("campaign:"), "{stderr}");
    assert!(stderr.contains("== telemetry report =="), "{stderr}");
    assert!(stderr.contains("done:"), "{stderr}");
}

#[test]
fn campaign_budget_flag_stops_early() {
    let out = bin()
        .args(["--rounds", "50", "--iterations", "5", "--max-execs", "1"])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("stopped early"), "{stdout}");
}

#[test]
fn round_timeout_flag_reaches_the_journal_header() {
    let dir = std::env::temp_dir().join(format!("mop_cli_timeout_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("campaign.jsonl");
    let out = bin()
        .args([
            "--rounds",
            "2",
            "--iterations",
            "6",
            "--jdk",
            "HotSpur-17,J9-17",
            "--round-timeout",
            "30000",
            "--journal",
            journal.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&journal).unwrap();
    assert!(
        text.lines()
            .next()
            .unwrap()
            .contains("\"round_wall_timeout_ms\":30000"),
        "{text}"
    );
    // A resume inherits the limit from the header and replays cleanly.
    let out = bin()
        .args(["--resume", journal.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(out.status.success());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corpus_fsck_reports_and_repairs_crash_damage() {
    let dir = std::env::temp_dir().join(format!("mop_cli_fsck_{}", std::process::id()));
    let store = dir.join("store");
    std::fs::create_dir_all(&dir).unwrap();
    let out = bin()
        .args(["corpus", "init", store.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // A clean store fscks clean.
    let out = bin()
        .args(["corpus", "fsck", store.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("clean"));

    // Simulate a crash mid-atomic-write: a stale tmp file in the store.
    std::fs::write(store.join("manifest.tmp"), "half-written").unwrap();
    let out = bin()
        .args(["corpus", "fsck", store.to_str().unwrap(), "--json"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "damage without --repair must fail");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"type\":\"jcorpus-fsck\""), "{stdout}");
    assert!(stdout.contains("\"clean\":false"), "{stdout}");

    // --repair fixes it and exits 0; the store is clean again.
    let out = bin()
        .args(["corpus", "fsck", store.to_str().unwrap(), "--repair"])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stdout: {stdout}\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("repaired"), "{stdout}");
    assert!(!store.join("manifest.tmp").exists());
    let out = bin()
        .args(["corpus", "fsck", store.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(out.status.success());

    std::fs::remove_dir_all(&dir).ok();
}

/// Regression: `--resume` on a journal whose corpus header names a store
/// directory that no longer exists must fail with a clear, typed CLI
/// error and a non-zero exit — not an opaque I/O error.
#[test]
fn resume_with_missing_corpus_store_fails_clearly() {
    let dir = std::env::temp_dir().join(format!("mop_cli_gone_store_{}", std::process::id()));
    let store = dir.join("store");
    let journal = dir.join("campaign.jsonl");
    std::fs::create_dir_all(&dir).unwrap();
    let out = bin()
        .args(["corpus", "init", store.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = bin()
        .args([
            "--rounds",
            "1",
            "--iterations",
            "4",
            "--corpus",
            store.to_str().unwrap(),
            "--journal",
            journal.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The store vanishes between the run and the resume.
    std::fs::remove_dir_all(&store).unwrap();
    let out = bin()
        .args(["--resume", journal.to_str().unwrap()])
        .output()
        .expect("binary runs");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success(), "resume must fail\nstderr: {stderr}");
    assert!(stderr.contains("error: cannot resume"), "{stderr}");
    assert!(
        stderr.contains(store.to_str().unwrap()),
        "the message must name the missing store: {stderr}"
    );
    assert!(stderr.contains("--corpus"), "{stderr}");

    std::fs::remove_dir_all(&dir).ok();
}

/// SIGINT mid-campaign: the binary finishes the round in flight, flushes
/// the journal, exits 0 with a resume hint — and `--resume` then converges
/// to the byte-identical journal of an uninterrupted run.
#[cfg(unix)]
#[test]
fn sigint_is_graceful_and_resume_converges_bit_identically() {
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    const SIGINT: i32 = 2;

    let dir = std::env::temp_dir().join(format!("mop_cli_sigint_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("campaign.jsonl");
    let baseline = dir.join("baseline.jsonl");
    let args = |journal: &std::path::Path| {
        vec![
            "--rounds".to_string(),
            "40".to_string(),
            "--iterations".to_string(),
            "6".to_string(),
            "--rng".to_string(),
            "7".to_string(),
            "--jdk".to_string(),
            "HotSpur-17,J9-17".to_string(),
            "--jobs".to_string(),
            "1".to_string(),
            "--oracle-jobs".to_string(),
            "1".to_string(),
            "--journal".to_string(),
            journal.to_str().unwrap().to_string(),
        ]
    };

    // The uninterrupted reference run.
    let out = bin().args(args(&baseline)).output().expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let expected = std::fs::read(&baseline).unwrap();
    let done_line = String::from_utf8_lossy(&out.stdout)
        .lines()
        .find(|l| l.starts_with("done:"))
        .expect("summary printed")
        .to_string();

    // Interrupt a second run once its journal proves a round completed.
    let child = bin()
        .args(args(&journal))
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("binary spawns");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    loop {
        let lines = std::fs::read_to_string(&journal)
            .map(|t| t.lines().count())
            .unwrap_or(0);
        if lines >= 2 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "campaign never journaled a round"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    unsafe {
        assert_eq!(kill(child.id() as i32, SIGINT), 0);
    }
    let out = child.wait_with_output().expect("child exits");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "graceful interrupt must exit 0\nstdout: {stdout}\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains("interrupted: stopped at a round boundary"),
        "{stdout}"
    );
    assert!(stdout.contains("--resume"), "{stdout}");

    // The interrupted journal is a clean prefix: header + whole lines only.
    let text = std::fs::read_to_string(&journal).unwrap();
    let kept = text.lines().count();
    assert!((2..=41).contains(&kept), "{kept} lines");
    assert!(text.ends_with('\n'), "no torn trailing line");

    // Resume converges to the uninterrupted bytes and totals.
    let out = bin()
        .args(["--resume", journal.to_str().unwrap()])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stdout: {stdout}\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains(&done_line),
        "{stdout}\nexpected: {done_line}"
    );
    assert_eq!(std::fs::read(&journal).unwrap(), expected);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rejects_bad_jvm_spec() {
    let out = bin()
        .args(["--jdk", "Frobnicator-17"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown family"));
}

#[test]
fn j9_mainline_is_rejected() {
    let out = bin()
        .args(["--jdk", "J9-mainline"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("J9 ships versions"));
}
