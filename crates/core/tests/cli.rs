//! Integration test of the `mopfuzzer` CLI binary (the `MopFuzzer.jar`
//! analogue of the paper's Appendix A.5).

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mopfuzzer"))
}

#[test]
fn help_prints_usage() {
    let out = bin().arg("--help").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("--project_path"));
    assert!(text.contains("--enable_profile_guide"));
}

#[test]
fn unknown_option_fails_with_usage() {
    let out = bin().args(["--bogus", "1"]).output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown option"));
}

#[test]
fn fuzzes_a_project_directory_and_writes_mutants() {
    let dir = std::env::temp_dir().join(format!("mop_cli_{}", std::process::id()));
    let proj = dir.join("proj");
    let out_dir = dir.join("mutants");
    std::fs::create_dir_all(&proj).unwrap();
    std::fs::write(
        proj.join("Test0001.java"),
        r#"
        class T {
            static int s;
            static void main() {
                for (int i = 0; i < 1_000; i++) { s = s + i % 5; }
                System.out.println(s);
            }
        }
        "#,
    )
    .unwrap();

    let out = bin()
        .args([
            "--project_path",
            proj.to_str().unwrap(),
            "--target_case",
            "Test0001",
            "--jdk",
            "HotSpur-17,J9-17",
            "--enable_profile_guide",
            "true",
            "--iterations",
            "6",
            "--out",
            out_dir.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stdout: {stdout}\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("Test0001"));

    // The final mutant was written and is a valid MiniJava program.
    let mutant =
        std::fs::read_to_string(out_dir.join("Test0001_final.java")).expect("mutant file written");
    mjava::parse(&mutant).expect("mutant parses");
    // The per-case log records the applied mutators and the verdict.
    let log = std::fs::read_to_string(out_dir.join("Test0001.log")).expect("log written");
    assert!(log.contains("verdict:"));
    assert!(log.contains("iter"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn campaign_mode_journals_and_resume_replays_identically() {
    let dir = std::env::temp_dir().join(format!("mop_cli_camp_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("campaign.jsonl");
    let campaign_args = [
        "--rounds",
        "3",
        "--iterations",
        "8",
        "--rng",
        "2024",
        "--jdk",
        "HotSpur-17,J9-17",
        "--journal",
        journal.to_str().unwrap(),
    ];

    let out = bin().args(campaign_args).output().expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stdout: {stdout}\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("supervised rounds"));
    let done_line = stdout
        .lines()
        .find(|l| l.starts_with("done:"))
        .expect("summary printed")
        .to_string();

    // The journal holds a header plus one line per round.
    let text = std::fs::read_to_string(&journal).expect("journal written");
    assert_eq!(text.lines().count(), 4, "{text}");

    // Truncate the journal to 2 of 3 rounds; resume re-runs the rest and
    // reports the identical totals.
    let kept: Vec<&str> = text.lines().take(3).collect();
    std::fs::write(&journal, kept.join("\n")).unwrap();
    let out = bin()
        .args(["--resume", journal.to_str().unwrap()])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stdout: {stdout}\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains(&done_line),
        "{stdout}\nexpected: {done_line}"
    );
    // The resumed journal is whole again.
    let text = std::fs::read_to_string(&journal).unwrap();
    assert_eq!(text.lines().count(), 4);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_with_larger_rounds_extends_a_finished_campaign() {
    let dir = std::env::temp_dir().join(format!("mop_cli_extend_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("campaign.jsonl");
    let out = bin()
        .args([
            "--rounds",
            "2",
            "--iterations",
            "6",
            "--jdk",
            "HotSpur-17,J9-17",
            "--journal",
            journal.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    assert_eq!(
        std::fs::read_to_string(&journal).unwrap().lines().count(),
        3,
        "header + 2 rounds"
    );

    // The campaign is finished; --resume alone would replay and stop.
    // With a larger --rounds it extends to the new total.
    let out = bin()
        .args(["--resume", journal.to_str().unwrap(), "--rounds", "5"])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stdout: {stdout}\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("extending to 5 total round(s)"), "{stdout}");
    assert!(stdout.contains("5 round(s) completed"), "{stdout}");
    let text = std::fs::read_to_string(&journal).unwrap();
    assert_eq!(text.lines().count(), 6, "header + 5 rounds");
    // The rewritten header carries the extended total, so a further plain
    // resume does not shrink the campaign back.
    assert!(
        text.lines().next().unwrap().contains("\"rounds\":5"),
        "{text}"
    );

    // Shrinking below the journaled rounds is refused.
    let out = bin()
        .args(["--resume", journal.to_str().unwrap(), "--rounds", "1"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot shrink"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_out_writes_valid_snapshots_and_prometheus() {
    let dir = std::env::temp_dir().join(format!("mop_cli_metrics_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let metrics = dir.join("metrics.jsonl");
    let out = bin()
        .args([
            "--rounds",
            "3",
            "--iterations",
            "6",
            "--jdk",
            "HotSpur-17,J9-17",
            "--metrics-out",
            metrics.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stdout: {stdout}\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // End-of-campaign human report on stdout.
    assert!(stdout.contains("== telemetry report =="), "{stdout}");
    assert!(stdout.contains("top phases by time:"), "{stdout}");

    // One snapshot per round plus the final flush, every line valid.
    let text = std::fs::read_to_string(&metrics).expect("metrics written");
    assert_eq!(text.lines().count(), 4, "{text}");
    for line in text.lines() {
        jtelemetry::schema::validate_snapshot_line(line).expect("snapshot line valid");
    }
    let prom = std::fs::read_to_string(dir.join("metrics.jsonl.prom")).expect("prom written");
    jtelemetry::schema::validate_prometheus(&prom).expect("prometheus page valid");
    assert!(prom.contains("mop_rounds_ok 3"), "{prom}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn campaign_budget_flag_stops_early() {
    let out = bin()
        .args(["--rounds", "50", "--iterations", "5", "--max-execs", "1"])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("stopped early"), "{stdout}");
}

#[test]
fn rejects_bad_jvm_spec() {
    let out = bin()
        .args(["--jdk", "Frobnicator-17"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown family"));
}

#[test]
fn j9_mainline_is_rejected() {
    let out = bin()
        .args(["--jdk", "J9-mainline"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("J9 ships versions"));
}
