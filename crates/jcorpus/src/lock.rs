//! Advisory store locking for concurrent campaigns.
//!
//! Two layers guard a store directory:
//!
//! * an **advisory lockfile** (`DIR/.lock`, created `O_EXCL`, holding the
//!   owner's pid) serializes writers across processes. A lockfile whose
//!   pid is no longer alive — or whose contents are torn/unparseable,
//!   e.g. a writer died mid-write — is *stale* and is stolen by the next
//!   acquirer, so a crashed campaign never wedges the fleet;
//! * an **in-process registry** of held directories serializes writers
//!   across threads of one process, where the pid check alone would
//!   deadlock (the pid is alive — it is us).
//!
//! Locks are held only across short critical sections ([`crate::Store`]
//! holds one for the duration of a `save()`), never across a campaign,
//! so contention is bounded by flush time, not fuzzing time. Pid reuse
//! between a crash and the next acquisition is theoretically possible
//! and accepted: the lock is advisory, the store's atomic tmp+rename
//! writes keep the manifest consistent regardless.

use crate::vfs::{self, Vfs};
use std::collections::HashSet;
#[cfg(test)]
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Name of the lockfile inside a store directory.
pub const LOCKFILE: &str = ".lock";

/// Default time to wait for a contended lock before giving up.
pub const DEFAULT_LOCK_TIMEOUT: Duration = Duration::from_secs(10);

fn held_dirs() -> &'static Mutex<HashSet<PathBuf>> {
    static HELD: OnceLock<Mutex<HashSet<PathBuf>>> = OnceLock::new();
    HELD.get_or_init(|| Mutex::new(HashSet::new()))
}

#[cfg(target_os = "linux")]
fn pid_alive(pid: u32) -> bool {
    Path::new(&format!("/proc/{pid}")).exists()
}

#[cfg(not(target_os = "linux"))]
fn pid_alive(_pid: u32) -> bool {
    // No portable liveness probe: never steal from a parseable lockfile.
    true
}

/// True when the lockfile can be stolen: its owner is dead, or its
/// contents are torn/unparseable (a writer died between create and the
/// pid write), or it vanished while we looked. A file holding *our own*
/// pid is also stale: the in-process registry serializes our threads, so
/// no live holder in this process can exist while we probe.
fn lockfile_is_stale(fs: &dyn Vfs, path: &Path) -> bool {
    match fs.read_to_string(path) {
        Ok(text) => match text.trim().parse::<u32>() {
            Ok(pid) => pid == std::process::id() || !pid_alive(pid),
            Err(_) => true,
        },
        Err(_) => true,
    }
}

/// An acquired store lock; released (lockfile removed, registry entry
/// dropped) on drop.
#[derive(Debug)]
pub struct StoreLock {
    key: PathBuf,
    path: PathBuf,
    fs: Arc<dyn Vfs>,
}

impl StoreLock {
    /// Acquires the lock for `dir`, waiting up to
    /// [`DEFAULT_LOCK_TIMEOUT`] for a live holder to release it.
    pub fn acquire(dir: &Path) -> Result<StoreLock, String> {
        StoreLock::acquire_with_timeout(dir, DEFAULT_LOCK_TIMEOUT)
    }

    /// Acquires the lock for `dir`, waiting up to `timeout`.
    pub fn acquire_with_timeout(dir: &Path, timeout: Duration) -> Result<StoreLock, String> {
        StoreLock::acquire_with_vfs(dir, timeout, vfs::real())
    }

    /// Acquires the lock for `dir` with all lockfile I/O routed through
    /// `fs` (chaos injection in tests, real fsyncs in production).
    ///
    /// Every transition of the lockfile is made durable: the stolen
    /// unlink is dir-fsynced before the recreate (so a crash cannot
    /// resurrect the stale file over our fresh one), and the created
    /// lockfile is file- and dir-fsynced before the lock is reported
    /// held.
    pub fn acquire_with_vfs(
        dir: &Path,
        timeout: Duration,
        fs: Arc<dyn Vfs>,
    ) -> Result<StoreLock, String> {
        let deadline = Instant::now() + timeout;
        let key = dir.canonicalize().unwrap_or_else(|_| dir.to_path_buf());
        loop {
            let mut held = held_dirs().lock().unwrap_or_else(|e| e.into_inner());
            if held.insert(key.clone()) {
                break;
            }
            drop(held);
            if Instant::now() >= deadline {
                return Err(format!(
                    "store {} is locked by another thread of this process",
                    dir.display()
                ));
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let path = dir.join(LOCKFILE);
        loop {
            match fs.create_new(&path, std::process::id().to_string().as_bytes()) {
                Ok(()) => {
                    let durable = fs
                        .fsync_file(&path)
                        .and_then(|()| fs.fsync_dir(dir))
                        .map_err(|e| format!("fsync lock {}: {e}", path.display()));
                    if let Err(e) = durable {
                        let _ = fs.remove_file(&path);
                        release_registry(&key);
                        return Err(e);
                    }
                    return Ok(StoreLock { key, path, fs });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    if lockfile_is_stale(fs.as_ref(), &path) {
                        let steal = fs
                            .remove_file(&path)
                            .and_then(|()| fs.fsync_dir(dir))
                            .map_err(|e| format!("steal lock {}: {e}", path.display()));
                        if let Err(e) = steal {
                            release_registry(&key);
                            return Err(e);
                        }
                        // Structured, scrapeable record of the recovery:
                        // a fleet daemon sees stolen locks on /metrics
                        // instead of an unstructured stderr line.
                        if jtelemetry::enabled() {
                            jtelemetry::count(jtelemetry::Counter::LockSteals, 1);
                        }
                        continue;
                    }
                    if Instant::now() >= deadline {
                        let holder = fs.read_to_string(&path).unwrap_or_default();
                        release_registry(&key);
                        return Err(format!(
                            "store {} is locked by pid {} (remove {} if that process is gone)",
                            dir.display(),
                            holder.trim(),
                            path.display()
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => {
                    release_registry(&key);
                    return Err(format!("create {}: {e}", path.display()));
                }
            }
        }
    }
}

fn release_registry(key: &Path) {
    held_dirs()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .remove(key);
}

impl Drop for StoreLock {
    fn drop(&mut self) {
        // Best-effort: after a (simulated or real) I/O failure the
        // lockfile may survive, exactly as a crashed process would leave
        // it — the next acquirer's staleness probe steals it.
        if self.fs.remove_file(&self.path).is_ok() {
            let _ = self.fs.fsync_dir(crate::vfs::parent_dir(&self.path));
        }
        release_registry(&self.key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("jcorpus-lock-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn acquire_release_reacquire() {
        let dir = temp_dir("basic");
        let lock = StoreLock::acquire(&dir).unwrap();
        assert!(dir.join(LOCKFILE).exists());
        drop(lock);
        assert!(!dir.join(LOCKFILE).exists());
        let _again = StoreLock::acquire(&dir).unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn held_lock_blocks_until_timeout() {
        let dir = temp_dir("held");
        let _lock = StoreLock::acquire(&dir).unwrap();
        let err = StoreLock::acquire_with_timeout(&dir, Duration::from_millis(50)).unwrap_err();
        assert!(err.contains("locked"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_lockfile_from_dead_pid_is_stolen() {
        let dir = temp_dir("stale");
        // Pids are capped well below this on Linux, so it is never alive.
        fs::write(dir.join(LOCKFILE), "999999999").unwrap();
        let _lock = StoreLock::acquire_with_timeout(&dir, Duration::from_millis(200)).unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lock_steal_is_counted_in_telemetry() {
        let dir = temp_dir("steal-count");
        fs::write(dir.join(LOCKFILE), "999999999").unwrap();
        jtelemetry::install(jtelemetry::Session::new());
        let lock = StoreLock::acquire_with_timeout(&dir, Duration::from_millis(200)).unwrap();
        drop(lock);
        let snap = jtelemetry::take().unwrap().snapshot();
        assert_eq!(snap.counter("lock_steals"), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_lockfile_is_stolen() {
        let dir = temp_dir("torn");
        fs::write(dir.join(LOCKFILE), "").unwrap();
        let _lock = StoreLock::acquire_with_timeout(&dir, Duration::from_millis(200)).unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn steal_path_syncs_the_unlink_before_recreating() {
        use crate::vfs::{ChaosError, ChaosPlan, ChaosVfs};
        let dir = temp_dir("steal-sync");
        fs::write(dir.join(LOCKFILE), "999999999").unwrap();
        // Op 3 is the directory fsync between the stale unlink (op 2)
        // and the recreate; failing it must abort the steal rather than
        // recreate over a possibly-unpersisted unlink.
        let chaos = Arc::new(ChaosVfs::new(ChaosPlan {
            fail_ops: vec![(3, ChaosError::Eio)],
            ..ChaosPlan::default()
        }));
        let err = StoreLock::acquire_with_vfs(&dir, Duration::from_millis(200), chaos).unwrap_err();
        assert!(err.contains("steal lock"), "{err}");
        assert!(!dir.join(LOCKFILE).exists(), "stale lockfile was unlinked");
        // The registry slot was released: a clean retry succeeds.
        let probe = Arc::new(ChaosVfs::probe());
        let lock =
            StoreLock::acquire_with_vfs(&dir, Duration::from_millis(200), probe.clone()).unwrap();
        assert_eq!(probe.ops(), 3, "create_new + file fsync + dir fsync");
        drop(lock);
        assert_eq!(probe.ops(), 5, "drop unlinks and syncs the directory");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stolen_lock_op_sequence_is_durable() {
        use crate::vfs::ChaosVfs;
        let dir = temp_dir("steal-ops");
        fs::write(dir.join(LOCKFILE), "999999999").unwrap();
        let chaos = Arc::new(ChaosVfs::probe());
        let lock =
            StoreLock::acquire_with_vfs(&dir, Duration::from_millis(500), chaos.clone()).unwrap();
        // Failed exclusive create, unlink, dir fsync, create, file
        // fsync, dir fsync: the steal itself is a durable transition.
        assert_eq!(chaos.ops(), 6);
        drop(lock);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn contended_threads_serialize() {
        let dir = temp_dir("threads");
        let mut handles = Vec::new();
        for _ in 0..4 {
            let dir = dir.clone();
            handles.push(std::thread::spawn(move || {
                let _lock = StoreLock::acquire(&dir).unwrap();
                std::thread::sleep(Duration::from_millis(10));
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(!dir.join(LOCKFILE).exists());
        let _ = fs::remove_dir_all(&dir);
    }
}
