//! The on-disk corpus store.
//!
//! Layout of a store directory:
//!
//! ```text
//! DIR/
//!   manifest.jsonl     header line + one line per entry (id, name,
//!                      fingerprint, provenance, parent, stats)
//!   quarantine.jsonl   one line per quarantined (seed, mutator) pair;
//!                      "mutator": null blocks the whole seed
//!   entries/<id>.java  pretty-printed mjava source, one file per entry
//! ```
//!
//! The store is loaded fully into memory on [`Store::open`]; all mutation
//! is in-memory until [`Store::save`], which rewrites the manifest and
//! quarantine atomically (tmp file + rename). A campaign that dies before
//! its final flush therefore leaves the store exactly as it found it, and
//! a journal-based resume can replay onto the store idempotently: admits
//! dedup by fingerprint and stats are written as absolute values.

use crate::fingerprint::{fingerprint_hex, parse_fingerprint};
use jtelemetry::schema::{parse_json, Json};
use mjava::Program;
use std::fs;
use std::path::{Path, PathBuf};

/// Where a corpus entry came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// One of the handcrafted built-in seeds.
    Builtin,
    /// Produced by the deterministic seed generator.
    Generated,
    /// Imported from a directory of `.java` sources.
    Imported,
    /// A jreduce-minimized mutant promoted by a campaign.
    Promoted,
}

impl Provenance {
    /// Manifest spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            Provenance::Builtin => "builtin",
            Provenance::Generated => "generated",
            Provenance::Imported => "imported",
            Provenance::Promoted => "promoted",
        }
    }

    fn from_str(s: &str) -> Result<Provenance, String> {
        match s {
            "builtin" => Ok(Provenance::Builtin),
            "generated" => Ok(Provenance::Generated),
            "imported" => Ok(Provenance::Imported),
            "promoted" => Ok(Provenance::Promoted),
            other => Err(format!("unknown provenance {other:?}")),
        }
    }
}

/// Per-entry scheduling statistics, persisted in the manifest.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EntryStats {
    /// How many rounds have fuzzed this entry.
    pub schedules: u64,
    /// Sum of final OBV deltas those rounds produced.
    pub yield_sum: f64,
    /// Rounds that ended in a contained fault.
    pub faults: u64,
    /// Bugs (crashes or miscompiles) those rounds reported.
    pub bugs: u64,
}

/// One corpus entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// Stable store-assigned id (`c0001`, ...); names the source file.
    pub id: String,
    /// Unique human-facing seed name used by campaigns and journals.
    pub name: String,
    /// Behaviour fingerprint ([`crate::fingerprint`]).
    pub fingerprint: u64,
    /// Where the entry came from.
    pub provenance: Provenance,
    /// For promoted entries, the seed whose fuzz run produced them.
    pub parent: Option<String>,
    /// Scheduling statistics.
    pub stats: EntryStats,
}

/// The outcome of [`Store::admit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Admission {
    /// The program was new; admitted under this (possibly uniquified) name.
    Fresh(String),
    /// An entry with the same fingerprint already exists under this name.
    Duplicate(String),
}

/// An in-memory view of a corpus directory.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    entries: Vec<Entry>,
    programs: Vec<Program>, // parallel to `entries`
    quarantine: Vec<(String, Option<String>)>,
}

const MANIFEST: &str = "manifest.jsonl";
const QUARANTINE: &str = "quarantine.jsonl";
const ENTRIES_DIR: &str = "entries";
const STORE_VERSION: u64 = 1;

impl Store {
    /// Creates an empty store at `dir`. Fails if a manifest already exists.
    pub fn init(dir: &Path) -> Result<Store, String> {
        let manifest = dir.join(MANIFEST);
        if manifest.exists() {
            return Err(format!("corpus store already exists at {}", dir.display()));
        }
        fs::create_dir_all(dir.join(ENTRIES_DIR))
            .map_err(|e| format!("create {}: {e}", dir.display()))?;
        let store = Store {
            dir: dir.to_path_buf(),
            entries: Vec::new(),
            programs: Vec::new(),
            quarantine: Vec::new(),
        };
        store.save()?;
        Ok(store)
    }

    /// Loads an existing store from `dir`.
    pub fn open(dir: &Path) -> Result<Store, String> {
        let manifest_path = dir.join(MANIFEST);
        let text = fs::read_to_string(&manifest_path)
            .map_err(|e| format!("read {}: {e}", manifest_path.display()))?;
        let mut lines = text.lines().enumerate();
        let (_, header) = lines
            .next()
            .ok_or_else(|| format!("{}: empty manifest", manifest_path.display()))?;
        check_header(header).map_err(|e| format!("{}: {e}", manifest_path.display()))?;
        let mut entries = Vec::new();
        let mut programs = Vec::new();
        for (i, line) in lines {
            if line.trim().is_empty() {
                continue;
            }
            let entry = decode_entry(line)
                .map_err(|e| format!("{} line {}: {e}", manifest_path.display(), i + 1))?;
            let src_path = dir.join(ENTRIES_DIR).join(format!("{}.java", entry.id));
            let src = fs::read_to_string(&src_path)
                .map_err(|e| format!("read {}: {e}", src_path.display()))?;
            let program =
                mjava::parse(&src).map_err(|e| format!("parse {}: {e:?}", src_path.display()))?;
            entries.push(entry);
            programs.push(program);
        }
        let quarantine = read_quarantine(&dir.join(QUARANTINE))?;
        Ok(Store {
            dir: dir.to_path_buf(),
            entries,
            programs,
            quarantine,
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// All entries, in admission order.
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The program behind a named entry.
    pub fn program(&self, name: &str) -> Option<&Program> {
        self.entries
            .iter()
            .position(|e| e.name == name)
            .map(|i| &self.programs[i])
    }

    /// Admits a program under `name_hint`, deduping by fingerprint.
    ///
    /// If an entry with the same fingerprint exists the store is left
    /// untouched and the existing entry's name is returned; this makes
    /// re-imports and replayed promotions idempotent. Name collisions with
    /// distinct fingerprints are resolved by a deterministic `_2`, `_3`,
    /// ... suffix.
    pub fn admit(
        &mut self,
        name_hint: &str,
        program: &Program,
        fingerprint: u64,
        provenance: Provenance,
        parent: Option<String>,
    ) -> Admission {
        if let Some(existing) = self.entries.iter().find(|e| e.fingerprint == fingerprint) {
            return Admission::Duplicate(existing.name.clone());
        }
        let mut name = name_hint.to_string();
        let mut suffix = 2;
        while self.entries.iter().any(|e| e.name == name) {
            name = format!("{name_hint}_{suffix}");
            suffix += 1;
        }
        let id = format!("c{:04}", self.next_id());
        self.entries.push(Entry {
            id,
            name: name.clone(),
            fingerprint,
            provenance,
            parent,
            stats: EntryStats::default(),
        });
        self.programs.push(program.clone());
        Admission::Fresh(name)
    }

    /// Overwrites the stats of a named entry (absolute values, so flushing
    /// the same campaign twice — live then via resume — is idempotent).
    pub fn set_stats(&mut self, name: &str, stats: EntryStats) -> Result<(), String> {
        match self.entries.iter_mut().find(|e| e.name == name) {
            Some(entry) => {
                entry.stats = stats;
                Ok(())
            }
            None => Err(format!("no corpus entry named {name:?}")),
        }
    }

    /// The persisted quarantine: `(seed, mutator)` pairs; a `None` mutator
    /// blocks the whole seed.
    pub fn quarantine(&self) -> &[(String, Option<String>)] {
        &self.quarantine
    }

    /// Set-unions new pairs into the quarantine.
    pub fn merge_quarantine(&mut self, pairs: &[(String, Option<String>)]) {
        for pair in pairs {
            if !self.quarantine.contains(pair) {
                self.quarantine.push(pair.clone());
            }
        }
    }

    /// Atomically rewrites the manifest, quarantine, and any entry sources
    /// not yet on disk.
    pub fn save(&self) -> Result<(), String> {
        fs::create_dir_all(self.dir.join(ENTRIES_DIR))
            .map_err(|e| format!("create {}: {e}", self.dir.display()))?;
        for (entry, program) in self.entries.iter().zip(&self.programs) {
            // Unconditional rewrite: a crash between a source write and the
            // manifest rename could otherwise leave a stale file under a
            // reused id.
            let path = self
                .dir
                .join(ENTRIES_DIR)
                .join(format!("{}.java", entry.id));
            write_atomic(&path, &mjava::print(program))?;
        }
        let mut manifest = String::new();
        manifest.push_str(&format!(
            "{{\"type\":\"jcorpus\",\"version\":{STORE_VERSION}}}\n"
        ));
        for entry in &self.entries {
            manifest.push_str(&encode_entry(entry));
            manifest.push('\n');
        }
        write_atomic(&self.dir.join(MANIFEST), &manifest)?;
        let mut quarantine = String::new();
        for (seed, mutator) in &self.quarantine {
            let mutator = match mutator {
                Some(m) => format!("\"{}\"", esc(m)),
                None => "null".to_string(),
            };
            quarantine.push_str(&format!(
                "{{\"seed\":\"{}\",\"mutator\":{mutator}}}\n",
                esc(seed)
            ));
        }
        write_atomic(&self.dir.join(QUARANTINE), &quarantine)?;
        Ok(())
    }

    fn next_id(&self) -> u64 {
        self.entries
            .iter()
            .filter_map(|e| e.id.strip_prefix('c').and_then(|n| n.parse::<u64>().ok()))
            .max()
            .map_or(1, |n| n + 1)
    }
}

fn write_atomic(path: &Path, contents: &str) -> Result<(), String> {
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, contents).map_err(|e| format!("write {}: {e}", tmp.display()))?;
    fs::rename(&tmp, path).map_err(|e| format!("rename {}: {e}", path.display()))
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn encode_entry(e: &Entry) -> String {
    let parent = match &e.parent {
        Some(p) => format!("\"{}\"", esc(p)),
        None => "null".to_string(),
    };
    format!(
        "{{\"id\":\"{}\",\"name\":\"{}\",\"fingerprint\":\"{}\",\"provenance\":\"{}\",\
         \"parent\":{parent},\"schedules\":{},\"yield_sum\":{:?},\"faults\":{},\"bugs\":{}}}",
        esc(&e.id),
        esc(&e.name),
        fingerprint_hex(e.fingerprint),
        e.provenance.as_str(),
        e.stats.schedules,
        e.stats.yield_sum,
        e.stats.faults,
        e.stats.bugs,
    )
}

fn check_header(line: &str) -> Result<(), String> {
    let json = parse_json(line)?;
    match json.get("type") {
        Some(Json::Str(t)) if t == "jcorpus" => {}
        _ => return Err("not a jcorpus manifest".to_string()),
    }
    match json.get("version") {
        Some(Json::Num(v)) if *v == STORE_VERSION as f64 => Ok(()),
        Some(Json::Num(v)) => Err(format!("unsupported store version {v}")),
        _ => Err("missing store version".to_string()),
    }
}

fn str_field(obj: &Json, key: &str) -> Result<String, String> {
    match obj.get(key) {
        Some(Json::Str(s)) => Ok(s.clone()),
        _ => Err(format!("missing string field {key:?}")),
    }
}

fn u64_field(obj: &Json, key: &str) -> Result<u64, String> {
    match obj.get(key) {
        Some(Json::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n as u64),
        _ => Err(format!("missing integer field {key:?}")),
    }
}

fn decode_entry(line: &str) -> Result<Entry, String> {
    let json = parse_json(line)?;
    let parent = match json.get("parent") {
        Some(Json::Str(s)) => Some(s.clone()),
        Some(Json::Null) | None => None,
        Some(other) => return Err(format!("bad parent: {other:?}")),
    };
    let yield_sum = match json.get("yield_sum") {
        Some(Json::Num(n)) => *n,
        _ => return Err("missing number field \"yield_sum\"".to_string()),
    };
    Ok(Entry {
        id: str_field(&json, "id")?,
        name: str_field(&json, "name")?,
        fingerprint: parse_fingerprint(&str_field(&json, "fingerprint")?)?,
        provenance: Provenance::from_str(&str_field(&json, "provenance")?)?,
        parent,
        stats: EntryStats {
            schedules: u64_field(&json, "schedules")?,
            yield_sum,
            faults: u64_field(&json, "faults")?,
            bugs: u64_field(&json, "bugs")?,
        },
    })
}

fn read_quarantine(path: &Path) -> Result<Vec<(String, Option<String>)>, String> {
    if !path.exists() {
        return Ok(Vec::new());
    }
    let text = fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let mut pairs = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let json =
            parse_json(line).map_err(|e| format!("{} line {}: {e}", path.display(), i + 1))?;
        let seed = str_field(&json, "seed")
            .map_err(|e| format!("{} line {}: {e}", path.display(), i + 1))?;
        let mutator = match json.get("mutator") {
            Some(Json::Str(s)) => Some(s.clone()),
            Some(Json::Null) => None,
            other => {
                return Err(format!(
                    "{} line {}: bad mutator: {other:?}",
                    path.display(),
                    i + 1
                ))
            }
        };
        pairs.push((seed, mutator));
    }
    Ok(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("jcorpus-test-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn seeds() -> Vec<(String, Program)> {
        mjava::samples::all_seeds()
            .into_iter()
            .map(|s| (s.name.to_string(), s.program))
            .collect()
    }

    #[test]
    fn init_then_open_round_trips() {
        let dir = temp_dir("roundtrip");
        let mut store = Store::init(&dir).unwrap();
        for (i, (name, program)) in seeds().into_iter().enumerate().take(4) {
            let adm = store.admit(&name, &program, i as u64 + 10, Provenance::Builtin, None);
            assert_eq!(adm, Admission::Fresh(name));
        }
        store
            .set_stats(
                "listing2",
                EntryStats {
                    schedules: 3,
                    yield_sum: 41.25,
                    faults: 1,
                    bugs: 2,
                },
            )
            .unwrap();
        store.merge_quarantine(&[
            ("listing2".to_string(), Some("Inlining".to_string())),
            ("gen_001".to_string(), None),
        ]);
        store.save().unwrap();
        let manifest_a = fs::read_to_string(dir.join(MANIFEST)).unwrap();

        let reopened = Store::open(&dir).unwrap();
        assert_eq!(reopened.entries(), store.entries());
        assert_eq!(reopened.quarantine(), store.quarantine());
        for entry in store.entries() {
            assert_eq!(
                reopened.program(&entry.name).unwrap(),
                store.program(&entry.name).unwrap()
            );
        }
        reopened.save().unwrap();
        let manifest_b = fs::read_to_string(dir.join(MANIFEST)).unwrap();
        assert_eq!(manifest_a, manifest_b, "save is byte-stable");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn init_refuses_existing_store() {
        let dir = temp_dir("exists");
        Store::init(&dir).unwrap();
        assert!(Store::init(&dir).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn admit_dedups_by_fingerprint() {
        let dir = temp_dir("dedup");
        let mut store = Store::init(&dir).unwrap();
        let (name, program) = seeds().remove(0);
        assert_eq!(
            store.admit(&name, &program, 7, Provenance::Builtin, None),
            Admission::Fresh(name.clone())
        );
        // Same fingerprint, different name: collapses into the first entry.
        assert_eq!(
            store.admit("other", &program, 7, Provenance::Imported, None),
            Admission::Duplicate(name.clone())
        );
        // Same name, different fingerprint: uniquified.
        assert_eq!(
            store.admit(&name, &program, 8, Provenance::Imported, None),
            Admission::Fresh(format!("{name}_2"))
        );
        assert_eq!(store.len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_quarantine_is_a_set_union() {
        let dir = temp_dir("quarantine");
        let mut store = Store::init(&dir).unwrap();
        let pair = ("s".to_string(), Some("Hoisting".to_string()));
        store.merge_quarantine(std::slice::from_ref(&pair));
        store.merge_quarantine(&[pair.clone(), ("t".to_string(), None)]);
        assert_eq!(store.quarantine().len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }
}
