//! The on-disk corpus store.
//!
//! Layout of a store directory:
//!
//! ```text
//! DIR/
//!   manifest.jsonl     header line + one line per entry (id, name,
//!                      fingerprint, source hash, provenance, parent,
//!                      stats) or tombstone (id, name, fingerprint)
//!   quarantine.jsonl   one line per quarantined (seed, mutator) pair;
//!                      "mutator": null blocks the whole seed
//!   entries/<id>.java  pretty-printed mjava source, one file per entry
//!   .lock              advisory lockfile, present only during a save
//! ```
//!
//! The store is loaded fully into memory on [`Store::open`]; all mutation
//! is in-memory until [`Store::save`], which rewrites the manifest and
//! quarantine atomically (tmp file + rename). A campaign that dies before
//! its final flush therefore leaves the store exactly as it found it, and
//! a journal-based resume can replay onto the store idempotently: admits
//! dedup by fingerprint and stats are written as absolute values.
//!
//! Saves take the store lock ([`crate::StoreLock`]) and first fold in
//! whatever concurrent campaigns flushed since this store was opened:
//! quarantine pairs are set-unioned, and entries/tombstones with unknown
//! fingerprints are adopted (under fresh ids, so id assignment races
//! cannot alias two different programs). Stats of entries shared with a
//! concurrent campaign are last-writer-wins — acceptable because stats
//! only steer scheduling heuristics.
//!
//! Entries GC'd by [`Store::gc`] leave a manifest **tombstone** (id, name,
//! fingerprint, no source file): resuming a journal recorded before the
//! GC still resolves the entry's name (stats flushes become no-ops and
//! re-promotions dedup against the tombstone instead of resurrecting the
//! entry).
//!
//! # Sharded layout
//!
//! A store can alternatively be **sharded** for fleet operation, where
//! many concurrent tenants would otherwise serialize on the single
//! manifest lock and every flush rewrites every entry:
//!
//! ```text
//! DIR/
//!   shards.json        layout marker: {"type":"jcorpus-shards",
//!                      "version":1,"shards":N}
//!   shards/00/         one flat-format sub-store per shard:
//!     manifest.jsonl   manifest of the entries whose fingerprint maps
//!     entries/         here (shard = fingerprint mod N), own .lock
//!   shards/01/ ...
//!   quarantine.jsonl   stays top-level (cross-shard by nature), guarded
//!   .lock              by the top-level lock
//! ```
//!
//! Entry ids are unique *per shard* (they only key source files inside
//! one shard directory); names remain the globally unique identity.
//! Saves rewrite only **dirty** shards — the shards whose entries were
//! admitted, re-statted, or GC'd since open — each under its own lock,
//! in ascending shard order. A flush that touched one shard of a large
//! store therefore costs one small manifest rewrite instead of the whole
//! corpus, and two tenants flushing disjoint shards do not contend at
//! all. Flat stores are untouched by any of this: layout is detected at
//! open and the flat code path is byte-identical to what it always was.
//! [`shard_store`] migrates a flat store in place.

use crate::fingerprint::{fingerprint_hex, parse_fingerprint, source_hash};
use crate::lock::{StoreLock, DEFAULT_LOCK_TIMEOUT};
use crate::schedule::energy;
use crate::vfs::{self, Vfs};
use jtelemetry::schema::{parse_json, Json};
use mjava::Program;
use std::collections::BTreeSet;
#[cfg(test)]
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// Where a corpus entry came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// One of the handcrafted built-in seeds.
    Builtin,
    /// Produced by the deterministic seed generator.
    Generated,
    /// Imported from a directory of `.java` sources.
    Imported,
    /// A jreduce-minimized mutant promoted by a campaign.
    Promoted,
}

impl Provenance {
    /// Manifest spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            Provenance::Builtin => "builtin",
            Provenance::Generated => "generated",
            Provenance::Imported => "imported",
            Provenance::Promoted => "promoted",
        }
    }

    fn from_str(s: &str) -> Result<Provenance, String> {
        match s {
            "builtin" => Ok(Provenance::Builtin),
            "generated" => Ok(Provenance::Generated),
            "imported" => Ok(Provenance::Imported),
            "promoted" => Ok(Provenance::Promoted),
            other => Err(format!("unknown provenance {other:?}")),
        }
    }
}

/// Per-entry scheduling statistics, persisted in the manifest.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EntryStats {
    /// How many rounds have fuzzed this entry.
    pub schedules: u64,
    /// Sum of final OBV deltas those rounds produced.
    pub yield_sum: f64,
    /// Rounds that ended in a contained fault.
    pub faults: u64,
    /// Bugs (crashes or miscompiles) those rounds reported.
    pub bugs: u64,
}

/// One corpus entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// Stable store-assigned id (`c0001`, ...); names the source file.
    pub id: String,
    /// Unique human-facing seed name used by campaigns and journals.
    pub name: String,
    /// Behaviour fingerprint ([`crate::fingerprint`]).
    pub fingerprint: u64,
    /// FNV-1a over the pretty-printed source — the memoization key that
    /// lets imports skip re-executing the reference JVM for unchanged
    /// programs ([`Store::memoized_fingerprint`]).
    pub source_hash: u64,
    /// Where the entry came from.
    pub provenance: Provenance,
    /// For promoted entries, the seed whose fuzz run produced them.
    pub parent: Option<String>,
    /// Scheduling statistics.
    pub stats: EntryStats,
    /// Consecutive campaigns this entry's energy ended clamped at the
    /// scheduler floor — the GC criterion ([`Store::gc`]).
    pub floor_streak: u64,
}

/// A GC'd entry's manifest remnant: enough to resolve names and dedup
/// fingerprints for journals recorded before the GC, without a program.
#[derive(Debug, Clone, PartialEq)]
pub struct Tombstone {
    /// The id the entry held while alive.
    pub id: String,
    /// The name the entry held while alive (still reserved).
    pub name: String,
    /// The entry's behaviour fingerprint (still dedups admissions).
    pub fingerprint: u64,
}

/// The outcome of [`Store::admit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Admission {
    /// The program was new; admitted under this (possibly uniquified) name.
    Fresh(String),
    /// An entry (or tombstone) with the same fingerprint already exists
    /// under this name.
    Duplicate(String),
}

/// An in-memory view of a corpus directory.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    fs: Arc<dyn Vfs>,
    entries: Vec<Entry>,
    programs: Vec<Program>, // parallel to `entries`
    tombstones: Vec<Tombstone>,
    quarantine: Vec<(String, Option<String>)>,
    /// `Some(n)` for the sharded layout (n shard sub-stores), `None` flat.
    shards: Option<usize>,
    /// Shards whose entries changed since open / the last save; the only
    /// shards a sharded save rewrites.
    dirty_shards: BTreeSet<usize>,
}

pub(crate) const MANIFEST: &str = "manifest.jsonl";
pub(crate) const QUARANTINE: &str = "quarantine.jsonl";
pub(crate) const ENTRIES_DIR: &str = "entries";
pub(crate) const SHARDS_MARKER: &str = "shards.json";
pub(crate) const SHARDS_DIR: &str = "shards";

/// Highest supported shard count (two-digit shard directory names).
pub const MAX_SHARDS: usize = 99;

/// v2: per-entry `source_hash` (fingerprint memoization), `floor_streak`
/// (GC bookkeeping), and tombstone lines. v1 manifests are still read
/// (hashes recomputed on open, streaks start at 0) and rewritten as v2 on
/// the next save.
const STORE_VERSION: u64 = 2;

impl Store {
    /// Creates an empty store at `dir`. Fails if a manifest already exists.
    pub fn init(dir: &Path) -> Result<Store, String> {
        Store::init_with(dir, vfs::real())
    }

    /// [`Store::init`] with all I/O routed through `fs` (chaos injection
    /// in tests, real fsyncs in production).
    pub fn init_with(dir: &Path, fs: Arc<dyn Vfs>) -> Result<Store, String> {
        let manifest = dir.join(MANIFEST);
        if fs.exists(&manifest) || fs.exists(&dir.join(SHARDS_MARKER)) {
            return Err(format!("corpus store already exists at {}", dir.display()));
        }
        fs.create_dir_all(&dir.join(ENTRIES_DIR))
            .map_err(|e| format!("create {}: {e}", dir.display()))?;
        let mut store = Store {
            dir: dir.to_path_buf(),
            fs,
            entries: Vec::new(),
            programs: Vec::new(),
            tombstones: Vec::new(),
            quarantine: Vec::new(),
            shards: None,
            dirty_shards: BTreeSet::new(),
        };
        store.save()?;
        Ok(store)
    }

    /// Creates an empty **sharded** store at `dir` with `shards` shard
    /// sub-stores. Fails if any store (flat or sharded) already exists.
    pub fn init_sharded(dir: &Path, shards: usize) -> Result<Store, String> {
        Store::init_sharded_with(dir, shards, vfs::real())
    }

    /// [`Store::init_sharded`] with all I/O routed through `fs`.
    pub fn init_sharded_with(dir: &Path, shards: usize, fs: Arc<dyn Vfs>) -> Result<Store, String> {
        check_shard_count(shards)?;
        if fs.exists(&dir.join(MANIFEST)) || fs.exists(&dir.join(SHARDS_MARKER)) {
            return Err(format!("corpus store already exists at {}", dir.display()));
        }
        fs.create_dir_all(dir)
            .map_err(|e| format!("create {}: {e}", dir.display()))?;
        vfs::write_atomic(
            fs.as_ref(),
            &dir.join(SHARDS_MARKER),
            &shards_marker(shards),
        )?;
        let mut store = Store {
            dir: dir.to_path_buf(),
            fs,
            entries: Vec::new(),
            programs: Vec::new(),
            tombstones: Vec::new(),
            quarantine: Vec::new(),
            shards: Some(shards),
            // Every shard starts dirty so the first save materializes
            // every shard manifest; open requires them all.
            dirty_shards: (0..shards).collect(),
        };
        store.save()?;
        Ok(store)
    }

    /// Loads an existing store from `dir`.
    ///
    /// Recovery semantics: stale `*.tmp` siblings left by a crashed save
    /// are swept (when no other writer holds the store lock), and a torn
    /// **final** line of the manifest or quarantine — the footprint of a
    /// crash mid-write on a non-atomic filesystem — is dropped rather
    /// than fatal. Corruption anywhere else still fails the open;
    /// `corpus fsck` reports and repairs it explicitly.
    pub fn open(dir: &Path) -> Result<Store, String> {
        Store::open_with(dir, vfs::real())
    }

    /// [`Store::open`] with all I/O routed through `fs`.
    pub fn open_with(dir: &Path, fs: Arc<dyn Vfs>) -> Result<Store, String> {
        if fs.exists(&dir.join(SHARDS_MARKER)) {
            return Store::open_sharded(dir, fs);
        }
        // Sweep stale tmp files only with the store lock held: a live
        // writer's tmp siblings are about to be renamed, not stale. A
        // held lock skips the sweep (zero-wait probe), never the open.
        if let Ok(_lock) = StoreLock::acquire_with_vfs(dir, Duration::ZERO, fs.clone()) {
            sweep_stale_tmp(fs.as_ref(), dir);
        }
        let (entries, programs, tombstones) = read_store_dir(fs.as_ref(), dir)?;
        let quarantine = read_quarantine(fs.as_ref(), &dir.join(QUARANTINE))?;
        Ok(Store {
            dir: dir.to_path_buf(),
            fs,
            entries,
            programs,
            tombstones,
            quarantine,
            shards: None,
            dirty_shards: BTreeSet::new(),
        })
    }

    /// Loads a sharded store: each shard sub-store is read like a flat
    /// store (own lock probe, own tmp sweep, own torn-tail tolerance),
    /// in ascending shard order. Names that collide across shards — the
    /// footprint of two tenants admitting the same hint into different
    /// shards concurrently — are uniquified deterministically and the
    /// renamed shard marked dirty so the next save persists the repair.
    fn open_sharded(dir: &Path, fs: Arc<dyn Vfs>) -> Result<Store, String> {
        let marker_path = dir.join(SHARDS_MARKER);
        let text = fs
            .read_to_string(&marker_path)
            .map_err(|e| format!("read {}: {e}", marker_path.display()))?;
        let shards =
            parse_shards_marker(&text).map_err(|e| format!("{}: {e}", marker_path.display()))?;
        if let Ok(_lock) = StoreLock::acquire_with_vfs(dir, Duration::ZERO, fs.clone()) {
            sweep_stale_tmp(fs.as_ref(), dir);
        }
        let mut entries = Vec::new();
        let mut programs = Vec::new();
        let mut tombstones = Vec::new();
        let mut dirty_shards = BTreeSet::new();
        for shard in 0..shards {
            let sdir = Store::shard_dir(dir, shard);
            if let Ok(_lock) = StoreLock::acquire_with_vfs(&sdir, Duration::ZERO, fs.clone()) {
                sweep_stale_tmp(fs.as_ref(), &sdir);
            }
            let (mut se, mut sp, mut st) = read_store_dir(fs.as_ref(), &sdir)?;
            let taken = |name: &str, entries: &[Entry], tombstones: &[Tombstone]| {
                entries.iter().any(|e| e.name == name)
                    || tombstones.iter().any(|t: &Tombstone| t.name == name)
            };
            for e in &mut se {
                if taken(&e.name, &entries, &tombstones) {
                    let mut suffix = 2;
                    let mut name = format!("{}_{suffix}", e.name);
                    while taken(&name, &entries, &tombstones) {
                        suffix += 1;
                        name = format!("{}_{suffix}", e.name);
                    }
                    e.name = name;
                    dirty_shards.insert(shard);
                }
            }
            entries.append(&mut se);
            programs.append(&mut sp);
            tombstones.append(&mut st);
        }
        let quarantine = read_quarantine(fs.as_ref(), &dir.join(QUARANTINE))?;
        Ok(Store {
            dir: dir.to_path_buf(),
            fs,
            entries,
            programs,
            tombstones,
            quarantine,
            shards: Some(shards),
            dirty_shards,
        })
    }

    /// Shard count of a sharded store; `None` for the flat layout.
    pub fn shards(&self) -> Option<usize> {
        self.shards
    }

    /// The sub-directory holding one shard of a sharded store.
    pub(crate) fn shard_dir(dir: &Path, shard: usize) -> PathBuf {
        dir.join(SHARDS_DIR).join(format!("{shard:02}"))
    }

    /// The shard a fingerprint maps to, or `None` for flat stores.
    fn shard_of(&self, fingerprint: u64) -> Option<usize> {
        self.shards.map(|n| (fingerprint % n as u64) as usize)
    }

    /// Marks the owning shard of `fingerprint` dirty (no-op when flat).
    fn mark_dirty(&mut self, fingerprint: u64) {
        if let Some(shard) = self.shard_of(fingerprint) {
            self.dirty_shards.insert(shard);
        }
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// All live entries, in admission order.
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// Tombstones of GC'd entries, in GC order.
    pub fn tombstones(&self) -> &[Tombstone] {
        &self.tombstones
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store holds no live entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The program behind a named live entry.
    pub fn program(&self, name: &str) -> Option<&Program> {
        self.entries
            .iter()
            .position(|e| e.name == name)
            .map(|i| &self.programs[i])
    }

    /// The memoized behaviour fingerprint for a program whose printed
    /// source matches an existing entry's — the import hot path that
    /// skips re-executing the reference JVM.
    pub fn memoized_fingerprint(&self, program: &Program) -> Option<u64> {
        let hash = source_hash(program);
        self.entries
            .iter()
            .find(|e| e.source_hash == hash)
            .map(|e| e.fingerprint)
    }

    /// Admits a program under `name_hint`, deduping by fingerprint.
    ///
    /// If an entry (or tombstone) with the same fingerprint exists the
    /// store is left untouched and the existing name is returned; this
    /// makes re-imports and replayed promotions idempotent, and keeps
    /// GC'd behaviours from being resurrected by a resume. Name
    /// collisions with distinct fingerprints are resolved by a
    /// deterministic `_2`, `_3`, ... suffix.
    pub fn admit(
        &mut self,
        name_hint: &str,
        program: &Program,
        fingerprint: u64,
        provenance: Provenance,
        parent: Option<String>,
    ) -> Admission {
        if let Some(existing) = self.entries.iter().find(|e| e.fingerprint == fingerprint) {
            return Admission::Duplicate(existing.name.clone());
        }
        if let Some(tomb) = self
            .tombstones
            .iter()
            .find(|t| t.fingerprint == fingerprint)
        {
            return Admission::Duplicate(tomb.name.clone());
        }
        let name = self.unique_name(name_hint);
        let id = match self.shard_of(fingerprint) {
            Some(shard) => format!("c{:04}", self.next_id_in(shard)),
            None => format!("c{:04}", self.next_id()),
        };
        self.mark_dirty(fingerprint);
        self.entries.push(Entry {
            id,
            name: name.clone(),
            fingerprint,
            source_hash: source_hash(program),
            provenance,
            parent,
            stats: EntryStats::default(),
            floor_streak: 0,
        });
        self.programs.push(program.clone());
        Admission::Fresh(name)
    }

    fn unique_name(&self, name_hint: &str) -> String {
        let taken = |name: &str| {
            self.entries.iter().any(|e| e.name == name)
                || self.tombstones.iter().any(|t| t.name == name)
        };
        let mut name = name_hint.to_string();
        let mut suffix = 2;
        while taken(&name) {
            name = format!("{name_hint}_{suffix}");
            suffix += 1;
        }
        name
    }

    /// Overwrites the stats of a named entry (absolute values, so flushing
    /// the same campaign twice — live then via resume — is idempotent).
    /// A tombstoned name is a silent no-op: resumed journals may flush
    /// stats for entries GC'd since they were recorded.
    pub fn set_stats(&mut self, name: &str, stats: EntryStats) -> Result<(), String> {
        match self.entries.iter_mut().find(|e| e.name == name) {
            Some(entry) => {
                entry.stats = stats;
                let fingerprint = entry.fingerprint;
                self.mark_dirty(fingerprint);
                Ok(())
            }
            None if self.tombstones.iter().any(|t| t.name == name) => Ok(()),
            None => Err(format!("no corpus entry named {name:?}")),
        }
    }

    /// Overwrites the floor-streak counter of a named entry (absolute,
    /// idempotent like [`Store::set_stats`]; tombstoned names no-op).
    pub fn set_floor_streak(&mut self, name: &str, streak: u64) -> Result<(), String> {
        match self.entries.iter_mut().find(|e| e.name == name) {
            Some(entry) => {
                entry.floor_streak = streak;
                let fingerprint = entry.fingerprint;
                self.mark_dirty(fingerprint);
                Ok(())
            }
            None if self.tombstones.iter().any(|t| t.name == name) => Ok(()),
            None => Err(format!("no corpus entry named {name:?}")),
        }
    }

    /// Drops every scheduled entry whose energy has sat at the scheduler
    /// floor for at least `streak` consecutive campaigns, leaving a
    /// manifest tombstone per dropped entry. Returns the dropped names.
    /// Never-scheduled entries are kept regardless (they have not had a
    /// chance to prove themselves).
    pub fn gc(&mut self, streak: u64) -> Vec<String> {
        let mut dropped = Vec::new();
        let mut i = 0;
        while i < self.entries.len() {
            let e = &self.entries[i];
            if e.stats.schedules > 0 && e.floor_streak >= streak {
                let entry = self.entries.remove(i);
                self.programs.remove(i);
                self.mark_dirty(entry.fingerprint);
                // The source file is deleted by the next save(), after the
                // manifest rename — a crash before then leaves the store
                // fully consistent under the old manifest.
                self.tombstones.push(Tombstone {
                    id: entry.id,
                    name: entry.name.clone(),
                    fingerprint: entry.fingerprint,
                });
                dropped.push(entry.name);
            } else {
                i += 1;
            }
        }
        dropped
    }

    /// The persisted quarantine: `(seed, mutator)` pairs; a `None` mutator
    /// blocks the whole seed.
    pub fn quarantine(&self) -> &[(String, Option<String>)] {
        &self.quarantine
    }

    /// Set-unions new pairs into the quarantine.
    pub fn merge_quarantine(&mut self, pairs: &[(String, Option<String>)]) {
        for pair in pairs {
            if !self.quarantine.contains(pair) {
                self.quarantine.push(pair.clone());
            }
        }
    }

    /// The machine-readable twin of `corpus stats`: one JSON object with
    /// per-entry stats and energies, tombstones, the quarantine, and the
    /// total energy. Schema checked by the `corpus_store` test suite.
    pub fn stats_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"type\":\"jcorpus-stats\",\"version\":1,\"dir\":\"{}\",",
            esc(&self.dir.display().to_string())
        ));
        // Layout rides along for sharded stores only: flat stats output
        // is byte-identical to what it was before sharding existed.
        if let Some(shards) = self.shards {
            out.push_str(&format!("\"shards\":{shards},"));
        }
        out.push_str("\"entries\":[");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let parent = match &e.parent {
                Some(p) => format!("\"{}\"", esc(p)),
                None => "null".to_string(),
            };
            out.push_str(&format!(
                "{{\"id\":\"{}\",\"name\":\"{}\",\"fingerprint\":\"{}\",\"provenance\":\"{}\",\
                 \"parent\":{parent},\"schedules\":{},\"yield_sum\":{:?},\"faults\":{},\
                 \"bugs\":{},\"energy\":{:?},\"floor_streak\":{}}}",
                esc(&e.id),
                esc(&e.name),
                fingerprint_hex(e.fingerprint),
                e.provenance.as_str(),
                e.stats.schedules,
                e.stats.yield_sum,
                e.stats.faults,
                e.stats.bugs,
                energy(&e.stats),
                e.floor_streak,
            ));
        }
        out.push_str("],\"tombstones\":[");
        for (i, t) in self.tombstones.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"id\":\"{}\",\"name\":\"{}\",\"fingerprint\":\"{}\"}}",
                esc(&t.id),
                esc(&t.name),
                fingerprint_hex(t.fingerprint),
            ));
        }
        out.push_str("],\"quarantine\":[");
        for (i, (seed, mutator)) in self.quarantine.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let mutator = match mutator {
                Some(m) => format!("\"{}\"", esc(m)),
                None => "null".to_string(),
            };
            out.push_str(&format!(
                "{{\"seed\":\"{}\",\"mutator\":{mutator}}}",
                esc(seed)
            ));
        }
        let total: f64 = self.entries.iter().map(|e| energy(&e.stats)).sum();
        out.push_str(&format!("],\"total_energy\":{total:?}}}"));
        out
    }

    /// Atomically rewrites the manifest, quarantine, and entry sources,
    /// under the store lock. State flushed by concurrent campaigns since
    /// this store was opened is folded in first (see module docs), so two
    /// campaigns finishing over one store lose neither quarantine pairs
    /// nor promoted entries.
    pub fn save(&mut self) -> Result<(), String> {
        if let Some(shards) = self.shards {
            return self.save_sharded(shards);
        }
        self.fs
            .create_dir_all(&self.dir.join(ENTRIES_DIR))
            .map_err(|e| format!("create {}: {e}", self.dir.display()))?;
        let _lock = StoreLock::acquire_with_vfs(&self.dir, DEFAULT_LOCK_TIMEOUT, self.fs.clone())?;
        self.merge_disk_state();
        for (entry, program) in self.entries.iter().zip(&self.programs) {
            // Unconditional rewrite: a crash between a source write and the
            // manifest rename could otherwise leave a stale file under a
            // reused id.
            let path = self
                .dir
                .join(ENTRIES_DIR)
                .join(format!("{}.java", entry.id));
            vfs::write_atomic(self.fs.as_ref(), &path, &mjava::print(program))?;
        }
        let mut manifest = String::new();
        manifest.push_str(&format!(
            "{{\"type\":\"jcorpus\",\"version\":{STORE_VERSION}}}\n"
        ));
        for entry in &self.entries {
            manifest.push_str(&encode_entry(entry));
            manifest.push('\n');
        }
        for tomb in &self.tombstones {
            manifest.push_str(&encode_tombstone(tomb));
        }
        vfs::write_atomic(self.fs.as_ref(), &self.dir.join(MANIFEST), &manifest)?;
        if !self.tombstones.is_empty() {
            for tomb in &self.tombstones {
                let src = self.dir.join(ENTRIES_DIR).join(format!("{}.java", tomb.id));
                let _ = self.fs.remove_file(&src);
            }
            // Make the unlinks durable; failures leave orphaned sources
            // that `corpus fsck` reports (the manifest is already safe).
            let _ = self.fs.fsync_dir(&self.dir.join(ENTRIES_DIR));
        }
        let mut quarantine = String::new();
        for (seed, mutator) in &self.quarantine {
            let mutator = match mutator {
                Some(m) => format!("\"{}\"", esc(m)),
                None => "null".to_string(),
            };
            quarantine.push_str(&format!(
                "{{\"seed\":\"{}\",\"mutator\":{mutator}}}\n",
                esc(seed)
            ));
        }
        vfs::write_atomic(self.fs.as_ref(), &self.dir.join(QUARANTINE), &quarantine)?;
        Ok(())
    }

    /// The sharded flush: only **dirty** shards are rewritten, each under
    /// its own lock in ascending shard order (a total order, so two
    /// tenants flushing overlapping shard sets cannot deadlock), with
    /// the same per-shard crash discipline as a flat save (sources
    /// first, then the atomic manifest rename, then tombstone unlinks).
    /// Disk state concurrent tenants flushed into a dirty shard is
    /// adopted before the rewrite; clean shards are not even read. The
    /// cross-shard quarantine is merged and rewritten last, under the
    /// top-level lock.
    fn save_sharded(&mut self, shards: usize) -> Result<(), String> {
        let dirty: Vec<usize> = self.dirty_shards.iter().copied().collect();
        for shard in dirty {
            let sdir = Store::shard_dir(&self.dir, shard);
            self.fs
                .create_dir_all(&sdir.join(ENTRIES_DIR))
                .map_err(|e| format!("create {}: {e}", sdir.display()))?;
            let _lock = StoreLock::acquire_with_vfs(&sdir, DEFAULT_LOCK_TIMEOUT, self.fs.clone())?;
            self.merge_disk_shard(shard, &sdir);
            let in_shard = |f: u64| (f % shards as u64) as usize == shard;
            for (entry, program) in self
                .entries
                .iter()
                .zip(&self.programs)
                .filter(|(e, _)| in_shard(e.fingerprint))
            {
                let path = sdir.join(ENTRIES_DIR).join(format!("{}.java", entry.id));
                vfs::write_atomic(self.fs.as_ref(), &path, &mjava::print(program))?;
            }
            let mut manifest = String::new();
            manifest.push_str(&format!(
                "{{\"type\":\"jcorpus\",\"version\":{STORE_VERSION}}}\n"
            ));
            for entry in self.entries.iter().filter(|e| in_shard(e.fingerprint)) {
                manifest.push_str(&encode_entry(entry));
                manifest.push('\n');
            }
            let shard_tombs: Vec<&Tombstone> = self
                .tombstones
                .iter()
                .filter(|t| in_shard(t.fingerprint))
                .collect();
            for tomb in &shard_tombs {
                manifest.push_str(&encode_tombstone(tomb));
            }
            vfs::write_atomic(self.fs.as_ref(), &sdir.join(MANIFEST), &manifest)?;
            if !shard_tombs.is_empty() {
                for tomb in &shard_tombs {
                    let src = sdir.join(ENTRIES_DIR).join(format!("{}.java", tomb.id));
                    let _ = self.fs.remove_file(&src);
                }
                let _ = self.fs.fsync_dir(&sdir.join(ENTRIES_DIR));
            }
        }
        self.fs
            .create_dir_all(&self.dir)
            .map_err(|e| format!("create {}: {e}", self.dir.display()))?;
        let _lock = StoreLock::acquire_with_vfs(&self.dir, DEFAULT_LOCK_TIMEOUT, self.fs.clone())?;
        if let Ok(disk) = read_quarantine(self.fs.as_ref(), &self.dir.join(QUARANTINE)) {
            self.merge_quarantine(&disk);
        }
        let mut quarantine = String::new();
        for (seed, mutator) in &self.quarantine {
            let mutator = match mutator {
                Some(m) => format!("\"{}\"", esc(m)),
                None => "null".to_string(),
            };
            quarantine.push_str(&format!(
                "{{\"seed\":\"{}\",\"mutator\":{mutator}}}\n",
                esc(seed)
            ));
        }
        vfs::write_atomic(self.fs.as_ref(), &self.dir.join(QUARANTINE), &quarantine)?;
        self.dirty_shards.clear();
        Ok(())
    }

    /// Per-shard twin of [`Store::merge_disk_state`]: adopts entries and
    /// tombstones a concurrent tenant flushed into `shard` since we
    /// opened (unknown fingerprints only, re-keyed under fresh per-shard
    /// ids and globally uniquified names). Best-effort like the flat
    /// merge. Caller holds the shard lock.
    fn merge_disk_shard(&mut self, shard: usize, sdir: &Path) {
        let Ok(text) = self.fs.read_to_string(&sdir.join(MANIFEST)) else {
            return;
        };
        let mut lines = text.lines();
        let Some(header) = lines.next() else {
            return;
        };
        if check_header(header).is_err() {
            return;
        }
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            let Ok(decoded) = decode_line(line) else {
                continue;
            };
            match decoded {
                Decoded::Tomb(t) => {
                    if self.fingerprint_known(t.fingerprint) {
                        continue;
                    }
                    let id = format!("c{:04}", self.next_id_in(shard));
                    let name = self.unique_name(&t.name);
                    self.tombstones.push(Tombstone {
                        id,
                        name,
                        fingerprint: t.fingerprint,
                    });
                }
                Decoded::Live(entry, _) => {
                    if self.fingerprint_known(entry.fingerprint) {
                        continue;
                    }
                    let src = sdir.join(ENTRIES_DIR).join(format!("{}.java", entry.id));
                    let Ok(text) = self.fs.read_to_string(&src) else {
                        continue;
                    };
                    let Ok(program) = mjava::parse(&text) else {
                        continue;
                    };
                    let id = format!("c{:04}", self.next_id_in(shard));
                    let name = self.unique_name(&entry.name);
                    self.entries.push(Entry {
                        id,
                        name,
                        fingerprint: entry.fingerprint,
                        source_hash: source_hash(&program),
                        provenance: entry.provenance,
                        parent: entry.parent,
                        stats: entry.stats,
                        floor_streak: entry.floor_streak,
                    });
                    self.programs.push(program);
                }
            }
        }
    }

    /// Folds in state concurrent campaigns flushed since we opened:
    /// quarantine pairs are unioned; disk entries/tombstones whose
    /// fingerprints we do not know are adopted under fresh ids (ids are
    /// assigned per-open, so two campaigns racing can mint the same id
    /// for different programs — re-keying on adoption keeps both).
    /// Best-effort: unreadable lines are skipped, never fatal, because
    /// our own atomic rewrite is the recovery path for torn state.
    fn merge_disk_state(&mut self) {
        if let Ok(disk) = read_quarantine(self.fs.as_ref(), &self.dir.join(QUARANTINE)) {
            self.merge_quarantine(&disk);
        }
        let Ok(text) = self.fs.read_to_string(&self.dir.join(MANIFEST)) else {
            return;
        };
        let mut lines = text.lines();
        let Some(header) = lines.next() else {
            return;
        };
        if check_header(header).is_err() {
            return;
        }
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            let Ok(decoded) = decode_line(line) else {
                continue;
            };
            match decoded {
                Decoded::Tomb(t) => {
                    if self.fingerprint_known(t.fingerprint) {
                        continue;
                    }
                    let id = format!("c{:04}", self.next_id());
                    let name = self.unique_name(&t.name);
                    self.tombstones.push(Tombstone {
                        id,
                        name,
                        fingerprint: t.fingerprint,
                    });
                }
                Decoded::Live(entry, _) => {
                    if self.fingerprint_known(entry.fingerprint) {
                        continue;
                    }
                    let src = self
                        .dir
                        .join(ENTRIES_DIR)
                        .join(format!("{}.java", entry.id));
                    let Ok(text) = self.fs.read_to_string(&src) else {
                        continue;
                    };
                    let Ok(program) = mjava::parse(&text) else {
                        continue;
                    };
                    let id = format!("c{:04}", self.next_id());
                    let name = self.unique_name(&entry.name);
                    self.entries.push(Entry {
                        id,
                        name,
                        fingerprint: entry.fingerprint,
                        source_hash: source_hash(&program),
                        provenance: entry.provenance,
                        parent: entry.parent,
                        stats: entry.stats,
                        floor_streak: entry.floor_streak,
                    });
                    self.programs.push(program);
                }
            }
        }
    }

    fn fingerprint_known(&self, fingerprint: u64) -> bool {
        self.entries.iter().any(|e| e.fingerprint == fingerprint)
            || self.tombstones.iter().any(|t| t.fingerprint == fingerprint)
    }

    fn next_id(&self) -> u64 {
        self.entries
            .iter()
            .map(|e| e.id.as_str())
            .chain(self.tombstones.iter().map(|t| t.id.as_str()))
            .filter_map(|id| id.strip_prefix('c').and_then(|n| n.parse::<u64>().ok()))
            .max()
            .map_or(1, |n| n + 1)
    }

    /// [`Store::next_id`] scoped to one shard: ids only key source files
    /// inside their shard directory, so each shard numbers its own.
    fn next_id_in(&self, shard: usize) -> u64 {
        let shards = self.shards.expect("sharded store") as u64;
        self.entries
            .iter()
            .filter(|e| e.fingerprint % shards == shard as u64)
            .map(|e| e.id.as_str())
            .chain(
                self.tombstones
                    .iter()
                    .filter(|t| t.fingerprint % shards == shard as u64)
                    .map(|t| t.id.as_str()),
            )
            .filter_map(|id| id.strip_prefix('c').and_then(|n| n.parse::<u64>().ok()))
            .max()
            .map_or(1, |n| n + 1)
    }
}

/// Reads one flat-format store directory (the whole store, or one shard
/// of a sharded store): manifest header check, entry/tombstone decode
/// with torn-tail tolerance, and entry sources from `entries/`.
#[allow(clippy::type_complexity)]
fn read_store_dir(
    fs: &dyn Vfs,
    dir: &Path,
) -> Result<(Vec<Entry>, Vec<Program>, Vec<Tombstone>), String> {
    let manifest_path = dir.join(MANIFEST);
    let text = fs
        .read_to_string(&manifest_path)
        .map_err(|e| format!("read {}: {e}", manifest_path.display()))?;
    let mut lines: Vec<(usize, &str)> = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .collect();
    if lines.is_empty() {
        return Err(format!("{}: empty manifest", manifest_path.display()));
    }
    let (_, header) = lines.remove(0);
    check_header(header).map_err(|e| format!("{}: {e}", manifest_path.display()))?;
    let mut entries = Vec::new();
    let mut programs = Vec::new();
    let mut tombstones = Vec::new();
    for (pos, (i, line)) in lines.iter().enumerate() {
        let decoded = match decode_line(line) {
            Ok(d) => d,
            // A torn tail (crash mid-write of the last record) is
            // recoverable: the record is dropped.
            Err(_) if pos + 1 == lines.len() => break,
            Err(e) => return Err(format!("{} line {}: {e}", manifest_path.display(), i + 1)),
        };
        match decoded {
            Decoded::Tomb(t) => tombstones.push(t),
            Decoded::Live(mut entry, has_hash) => {
                let src_path = dir.join(ENTRIES_DIR).join(format!("{}.java", entry.id));
                let src = fs
                    .read_to_string(&src_path)
                    .map_err(|e| format!("read {}: {e}", src_path.display()))?;
                let program = mjava::parse(&src)
                    .map_err(|e| format!("parse {}: {e:?}", src_path.display()))?;
                if !has_hash {
                    entry.source_hash = source_hash(&program);
                }
                entries.push(entry);
                programs.push(program);
            }
        }
    }
    Ok((entries, programs, tombstones))
}

pub(crate) fn shards_marker(shards: usize) -> String {
    format!("{{\"type\":\"jcorpus-shards\",\"version\":1,\"shards\":{shards}}}\n")
}

pub(crate) fn parse_shards_marker(text: &str) -> Result<usize, String> {
    let json = parse_json(text.lines().next().unwrap_or(""))?;
    match json.get("type") {
        Some(Json::Str(t)) if t == "jcorpus-shards" => {}
        _ => return Err("not a jcorpus shards marker".to_string()),
    }
    match json.get("version") {
        Some(Json::Num(v)) if *v == 1.0 => {}
        Some(Json::Num(v)) => return Err(format!("unsupported shards version {v}")),
        _ => return Err("missing shards version".to_string()),
    }
    match json.get("shards") {
        Some(Json::Num(n)) if n.fract() == 0.0 && (1.0..=MAX_SHARDS as f64).contains(n) => {
            Ok(*n as usize)
        }
        _ => Err(format!("shard count must be 1..={MAX_SHARDS}")),
    }
}

fn check_shard_count(shards: usize) -> Result<(), String> {
    if (1..=MAX_SHARDS).contains(&shards) {
        Ok(())
    } else {
        Err(format!(
            "shard count must be 1..={MAX_SHARDS}, got {shards}"
        ))
    }
}

/// Converts the flat store at `dir` to the sharded layout in place,
/// under the top-level store lock. Every entry source and manifest line
/// is rewritten into its `fingerprint % shards` shard sub-store, the
/// layout marker is committed atomically (the cutover point: a crash
/// before it leaves the flat store fully intact, a crash after it leaves
/// a complete sharded store plus flat remnants the unlink pass below
/// would have removed), and the flat manifest and sources are unlinked.
/// Ids are preserved (globally unique implies per-shard unique). Run it
/// with no campaigns active over the store: a concurrent flat-layout
/// writer blocked on the lock would resurrect a flat manifest beside
/// the marker. Returns the number of entries migrated.
pub fn shard_store(dir: &Path, shards: usize) -> Result<usize, String> {
    shard_store_with(dir, shards, vfs::real())
}

/// [`shard_store`] with all I/O routed through `fs`.
pub fn shard_store_with(dir: &Path, shards: usize, fs: Arc<dyn Vfs>) -> Result<usize, String> {
    check_shard_count(shards)?;
    if fs.exists(&dir.join(SHARDS_MARKER)) {
        return Err(format!("store at {} is already sharded", dir.display()));
    }
    let store = Store::open_with(dir, fs.clone())?;
    let _lock = StoreLock::acquire_with_vfs(dir, DEFAULT_LOCK_TIMEOUT, fs.clone())?;
    for shard in 0..shards {
        let sdir = Store::shard_dir(dir, shard);
        fs.create_dir_all(&sdir.join(ENTRIES_DIR))
            .map_err(|e| format!("create {}: {e}", sdir.display()))?;
    }
    for (entry, program) in store.entries.iter().zip(&store.programs) {
        let shard = (entry.fingerprint % shards as u64) as usize;
        let path = Store::shard_dir(dir, shard)
            .join(ENTRIES_DIR)
            .join(format!("{}.java", entry.id));
        vfs::write_atomic(fs.as_ref(), &path, &mjava::print(program))?;
    }
    for shard in 0..shards {
        let in_shard = |f: u64| (f % shards as u64) as usize == shard;
        let mut manifest = String::new();
        manifest.push_str(&format!(
            "{{\"type\":\"jcorpus\",\"version\":{STORE_VERSION}}}\n"
        ));
        for entry in store.entries.iter().filter(|e| in_shard(e.fingerprint)) {
            manifest.push_str(&encode_entry(entry));
            manifest.push('\n');
        }
        for tomb in store.tombstones.iter().filter(|t| in_shard(t.fingerprint)) {
            manifest.push_str(&encode_tombstone(tomb));
        }
        vfs::write_atomic(
            fs.as_ref(),
            &Store::shard_dir(dir, shard).join(MANIFEST),
            &manifest,
        )?;
    }
    // The commit point: from here on, opens see the sharded layout.
    vfs::write_atomic(
        fs.as_ref(),
        &dir.join(SHARDS_MARKER),
        &shards_marker(shards),
    )?;
    // Drop the flat remnants (best-effort: leftovers are dead weight,
    // not corruption — the marker owns layout detection).
    let _ = fs.remove_file(&dir.join(MANIFEST));
    for entry in &store.entries {
        let _ = fs.remove_file(&dir.join(ENTRIES_DIR).join(format!("{}.java", entry.id)));
    }
    let _ = fs.fsync_dir(&dir.join(ENTRIES_DIR));
    let _ = fs.fsync_dir(dir);
    Ok(store.entries.len())
}

/// Removes `*.tmp` siblings a crashed save left behind, in the store
/// root and `entries/`. Caller must hold the store lock. Best-effort:
/// a failed unlink just leaves the file for `corpus fsck` to report.
fn sweep_stale_tmp(fs: &dyn Vfs, dir: &Path) {
    for d in [dir.to_path_buf(), dir.join(ENTRIES_DIR)] {
        let Ok(paths) = fs.read_dir(&d) else {
            continue;
        };
        let mut removed = false;
        for path in paths {
            if path.extension().is_some_and(|e| e == "tmp") {
                removed |= fs.remove_file(&path).is_ok();
            }
        }
        if removed {
            let _ = fs.fsync_dir(&d);
        }
    }
}

pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn encode_entry(e: &Entry) -> String {
    let parent = match &e.parent {
        Some(p) => format!("\"{}\"", esc(p)),
        None => "null".to_string(),
    };
    format!(
        "{{\"id\":\"{}\",\"name\":\"{}\",\"fingerprint\":\"{}\",\"source_hash\":\"{}\",\
         \"provenance\":\"{}\",\"parent\":{parent},\"schedules\":{},\"yield_sum\":{:?},\
         \"faults\":{},\"bugs\":{},\"floor_streak\":{}}}",
        esc(&e.id),
        esc(&e.name),
        fingerprint_hex(e.fingerprint),
        fingerprint_hex(e.source_hash),
        e.provenance.as_str(),
        e.stats.schedules,
        e.stats.yield_sum,
        e.stats.faults,
        e.stats.bugs,
        e.floor_streak,
    )
}

pub(crate) fn encode_tombstone(t: &Tombstone) -> String {
    format!(
        "{{\"id\":\"{}\",\"name\":\"{}\",\"fingerprint\":\"{}\",\"tombstone\":true}}\n",
        esc(&t.id),
        esc(&t.name),
        fingerprint_hex(t.fingerprint),
    )
}

pub(crate) fn check_header(line: &str) -> Result<(), String> {
    let json = parse_json(line)?;
    match json.get("type") {
        Some(Json::Str(t)) if t == "jcorpus" => {}
        _ => return Err("not a jcorpus manifest".to_string()),
    }
    match json.get("version") {
        // v1 manifests predate source hashes, floor streaks, and
        // tombstones; all three default sensibly on decode.
        Some(Json::Num(v)) if *v == 1.0 || *v == STORE_VERSION as f64 => Ok(()),
        Some(Json::Num(v)) => Err(format!("unsupported store version {v}")),
        _ => Err("missing store version".to_string()),
    }
}

fn str_field(obj: &Json, key: &str) -> Result<String, String> {
    match obj.get(key) {
        Some(Json::Str(s)) => Ok(s.clone()),
        _ => Err(format!("missing string field {key:?}")),
    }
}

fn u64_field(obj: &Json, key: &str) -> Result<u64, String> {
    match obj.get(key) {
        Some(Json::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n as u64),
        _ => Err(format!("missing integer field {key:?}")),
    }
}

/// Optional integer field, for v2 additions absent from v1 manifests.
fn opt_u64_field(obj: &Json, key: &str, default: u64) -> Result<u64, String> {
    match obj.get(key) {
        None => Ok(default),
        Some(_) => u64_field(obj, key),
    }
}

/// One decoded manifest line: a live entry (plus whether the manifest
/// carried its source hash, absent in v1) or a tombstone.
pub(crate) enum Decoded {
    Live(Entry, bool),
    Tomb(Tombstone),
}

pub(crate) fn decode_line(line: &str) -> Result<Decoded, String> {
    let json = parse_json(line)?;
    if let Some(Json::Bool(true)) = json.get("tombstone") {
        return Ok(Decoded::Tomb(Tombstone {
            id: str_field(&json, "id")?,
            name: str_field(&json, "name")?,
            fingerprint: parse_fingerprint(&str_field(&json, "fingerprint")?)?,
        }));
    }
    let parent = match json.get("parent") {
        Some(Json::Str(s)) => Some(s.clone()),
        Some(Json::Null) | None => None,
        Some(other) => return Err(format!("bad parent: {other:?}")),
    };
    let yield_sum = match json.get("yield_sum") {
        Some(Json::Num(n)) => *n,
        _ => return Err("missing number field \"yield_sum\"".to_string()),
    };
    let (source_hash, has_hash) = match json.get("source_hash") {
        Some(Json::Str(s)) => (parse_fingerprint(s)?, true),
        _ => (0, false),
    };
    Ok(Decoded::Live(
        Entry {
            id: str_field(&json, "id")?,
            name: str_field(&json, "name")?,
            fingerprint: parse_fingerprint(&str_field(&json, "fingerprint")?)?,
            source_hash,
            provenance: Provenance::from_str(&str_field(&json, "provenance")?)?,
            parent,
            stats: EntryStats {
                schedules: u64_field(&json, "schedules")?,
                yield_sum,
                faults: u64_field(&json, "faults")?,
                bugs: u64_field(&json, "bugs")?,
            },
            floor_streak: opt_u64_field(&json, "floor_streak", 0)?,
        },
        has_hash,
    ))
}

/// Reads the on-disk quarantine of the store at `dir` without opening the
/// whole store — the cheap fleet-wide poll running campaigns use to
/// observe pairs that concurrently-running campaigns have flushed.
/// A missing file is an empty quarantine, not an error.
pub fn read_quarantine_dir(dir: &Path) -> Result<Vec<(String, Option<String>)>, String> {
    read_quarantine(vfs::real().as_ref(), &dir.join(QUARANTINE))
}

/// Decodes one quarantine line into its `(seed, mutator)` pair.
pub(crate) fn decode_quarantine_line(line: &str) -> Result<(String, Option<String>), String> {
    let json = parse_json(line)?;
    let seed = str_field(&json, "seed")?;
    let mutator = match json.get("mutator") {
        Some(Json::Str(s)) => Some(s.clone()),
        Some(Json::Null) => None,
        other => return Err(format!("bad mutator: {other:?}")),
    };
    Ok((seed, mutator))
}

/// Reads a quarantine file, tolerating (dropping) a torn final line —
/// the footprint of a crash mid-write — while corruption anywhere else
/// stays fatal. A missing file is an empty quarantine.
fn read_quarantine(fs: &dyn Vfs, path: &Path) -> Result<Vec<(String, Option<String>)>, String> {
    if !fs.exists(path) {
        return Ok(Vec::new());
    }
    let text = fs
        .read_to_string(path)
        .map_err(|e| format!("read {}: {e}", path.display()))?;
    let lines: Vec<(usize, &str)> = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .collect();
    let mut pairs = Vec::new();
    for (pos, (i, line)) in lines.iter().enumerate() {
        match decode_quarantine_line(line) {
            Ok(pair) => pairs.push(pair),
            Err(_) if pos + 1 == lines.len() => break,
            Err(e) => return Err(format!("{} line {}: {e}", path.display(), i + 1)),
        }
    }
    Ok(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("jcorpus-test-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn seeds() -> Vec<(String, Program)> {
        mjava::samples::all_seeds()
            .into_iter()
            .map(|s| (s.name.to_string(), s.program))
            .collect()
    }

    #[test]
    fn init_then_open_round_trips() {
        let dir = temp_dir("roundtrip");
        let mut store = Store::init(&dir).unwrap();
        for (i, (name, program)) in seeds().into_iter().enumerate().take(4) {
            let adm = store.admit(&name, &program, i as u64 + 10, Provenance::Builtin, None);
            assert_eq!(adm, Admission::Fresh(name));
        }
        store
            .set_stats(
                "listing2",
                EntryStats {
                    schedules: 3,
                    yield_sum: 41.25,
                    faults: 1,
                    bugs: 2,
                },
            )
            .unwrap();
        store.set_floor_streak("listing2", 2).unwrap();
        store.merge_quarantine(&[
            ("listing2".to_string(), Some("Inlining".to_string())),
            ("gen_001".to_string(), None),
        ]);
        store.save().unwrap();
        let manifest_a = fs::read_to_string(dir.join(MANIFEST)).unwrap();

        let mut reopened = Store::open(&dir).unwrap();
        assert_eq!(reopened.entries(), store.entries());
        assert_eq!(reopened.quarantine(), store.quarantine());
        for entry in store.entries() {
            assert_eq!(
                reopened.program(&entry.name).unwrap(),
                store.program(&entry.name).unwrap()
            );
        }
        reopened.save().unwrap();
        let manifest_b = fs::read_to_string(dir.join(MANIFEST)).unwrap();
        assert_eq!(manifest_a, manifest_b, "save is byte-stable");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn init_refuses_existing_store() {
        let dir = temp_dir("exists");
        Store::init(&dir).unwrap();
        assert!(Store::init(&dir).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn admit_dedups_by_fingerprint() {
        let dir = temp_dir("dedup");
        let mut store = Store::init(&dir).unwrap();
        let (name, program) = seeds().remove(0);
        assert_eq!(
            store.admit(&name, &program, 7, Provenance::Builtin, None),
            Admission::Fresh(name.clone())
        );
        // Same fingerprint, different name: collapses into the first entry.
        assert_eq!(
            store.admit("other", &program, 7, Provenance::Imported, None),
            Admission::Duplicate(name.clone())
        );
        // Same name, different fingerprint: uniquified.
        assert_eq!(
            store.admit(&name, &program, 8, Provenance::Imported, None),
            Admission::Fresh(format!("{name}_2"))
        );
        assert_eq!(store.len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_quarantine_is_a_set_union() {
        let dir = temp_dir("quarantine");
        let mut store = Store::init(&dir).unwrap();
        let pair = ("s".to_string(), Some("Hoisting".to_string()));
        store.merge_quarantine(std::slice::from_ref(&pair));
        store.merge_quarantine(&[pair.clone(), ("t".to_string(), None)]);
        assert_eq!(store.quarantine().len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_tombstones_floor_streak_entries() {
        let dir = temp_dir("gc");
        let mut store = Store::init(&dir).unwrap();
        let mut all = seeds();
        let (keep_name, keep) = all.remove(0);
        let (drop_name, dropped) = all.remove(0);
        let (fresh_name, fresh) = all.remove(0);
        store.admit(&keep_name, &keep, 1, Provenance::Builtin, None);
        store.admit(&drop_name, &dropped, 2, Provenance::Builtin, None);
        store.admit(&fresh_name, &fresh, 3, Provenance::Builtin, None);
        for name in [&keep_name, &drop_name] {
            store
                .set_stats(
                    name,
                    EntryStats {
                        schedules: 5,
                        yield_sum: 0.0,
                        faults: 0,
                        bugs: 0,
                    },
                )
                .unwrap();
        }
        store.set_floor_streak(&drop_name, 3).unwrap();
        // `fresh` was never scheduled: immune even with a long streak.
        store.set_floor_streak(&fresh_name, 99).unwrap();
        store.save().unwrap();

        assert_eq!(store.gc(3), vec![drop_name.clone()]);
        store.save().unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.tombstones().len(), 1);
        assert!(!dir.join(ENTRIES_DIR).join("c0002.java").exists());

        let mut reopened = Store::open(&dir).unwrap();
        assert_eq!(reopened.tombstones(), store.tombstones());
        // Older journals still resolve the name: stats flushes no-op ...
        reopened
            .set_stats(&drop_name, EntryStats::default())
            .unwrap();
        reopened.set_floor_streak(&drop_name, 0).unwrap();
        // ... re-promotions dedup against the tombstone ...
        assert_eq!(
            reopened.admit("again", &dropped, 2, Provenance::Promoted, None),
            Admission::Duplicate(drop_name.clone())
        );
        // ... and new admissions never reuse its id or name.
        assert_eq!(
            reopened.admit(&drop_name, &dropped, 99, Provenance::Imported, None),
            Admission::Fresh(format!("{drop_name}_2"))
        );
        assert_eq!(reopened.entries().last().unwrap().id, "c0004");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn v1_manifests_are_upgraded_on_open() {
        let dir = temp_dir("v1");
        let mut store = Store::init(&dir).unwrap();
        let (name, program) = seeds().remove(0);
        store.admit(&name, &program, 42, Provenance::Builtin, None);
        store.save().unwrap();
        // Rewrite the manifest as a v1 file: no source_hash, no
        // floor_streak, version 1 header.
        let manifest = fs::read_to_string(dir.join(MANIFEST)).unwrap();
        let v1: String = manifest
            .replace("\"version\":2", "\"version\":1")
            .lines()
            .map(|l| {
                let l = match l.find("\"source_hash\":") {
                    Some(i) => {
                        let rest = &l[i..];
                        let end = rest.find("\",").map(|e| i + e + 2).unwrap();
                        format!("{}{}", &l[..i], &l[end..])
                    }
                    None => l.to_string(),
                };
                match l.find(",\"floor_streak\":") {
                    Some(i) => format!("{}}}", &l[..i]),
                    None => l,
                }
            })
            .collect::<Vec<_>>()
            .join("\n")
            + "\n";
        fs::write(dir.join(MANIFEST), v1).unwrap();
        let reopened = Store::open(&dir).unwrap();
        let entry = &reopened.entries()[0];
        assert_eq!(entry.source_hash, source_hash(&program), "recomputed");
        assert_eq!(entry.floor_streak, 0);
        assert_eq!(
            reopened.memoized_fingerprint(&program),
            Some(42),
            "memoization works after upgrade"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sharded_init_open_round_trips() {
        let dir = temp_dir("shard-roundtrip");
        let mut store = Store::init_sharded(&dir, 4).unwrap();
        assert_eq!(store.shards(), Some(4));
        for (i, (name, program)) in seeds().into_iter().enumerate().take(6) {
            let adm = store.admit(&name, &program, i as u64 + 10, Provenance::Builtin, None);
            assert_eq!(adm, Admission::Fresh(name));
        }
        store
            .set_stats(
                "listing2",
                EntryStats {
                    schedules: 3,
                    yield_sum: 41.25,
                    faults: 1,
                    bugs: 2,
                },
            )
            .unwrap();
        store.merge_quarantine(&[("listing2".to_string(), None)]);
        store.save().unwrap();
        assert!(dir.join(SHARDS_MARKER).exists());
        assert!(!dir.join(MANIFEST).exists(), "no flat manifest");

        let reopened = Store::open(&dir).unwrap();
        assert_eq!(reopened.shards(), Some(4));
        assert_eq!(reopened.len(), store.len());
        assert_eq!(reopened.quarantine(), store.quarantine());
        for entry in store.entries() {
            assert_eq!(
                reopened.program(&entry.name).unwrap(),
                store.program(&entry.name).unwrap()
            );
            let reo = reopened
                .entries()
                .iter()
                .find(|e| e.name == entry.name)
                .unwrap();
            assert_eq!(reo, entry);
        }
        assert!(reopened.stats_json().contains("\"shards\":4"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sharded_save_only_rewrites_dirty_shards() {
        let dir = temp_dir("shard-dirty");
        let mut store = Store::init_sharded(&dir, 4).unwrap();
        let mut all = seeds();
        let (a_name, a_prog) = all.remove(0);
        let (b_name, b_prog) = all.remove(0);
        store.admit(&a_name, &a_prog, 4, Provenance::Builtin, None); // shard 0
        store.admit(&b_name, &b_prog, 5, Provenance::Builtin, None); // shard 1
        store.save().unwrap();

        let mut reopened = Store::open(&dir).unwrap();
        // Corrupt shard 0's manifest mtime proxy: overwrite shard 1's
        // manifest with a sentinel, then touch only shard 0 — the save
        // must leave shard 1's file exactly as we left it.
        let shard1_manifest = Store::shard_dir(&dir, 1).join(MANIFEST);
        let sentinel = fs::read_to_string(&shard1_manifest).unwrap() + "\n\n";
        fs::write(&shard1_manifest, &sentinel).unwrap();
        reopened
            .set_stats(
                &a_name,
                EntryStats {
                    schedules: 1,
                    yield_sum: 1.0,
                    faults: 0,
                    bugs: 0,
                },
            )
            .unwrap();
        reopened.save().unwrap();
        assert_eq!(
            fs::read_to_string(&shard1_manifest).unwrap(),
            sentinel,
            "clean shard untouched by the flush"
        );
        let shard0 = fs::read_to_string(Store::shard_dir(&dir, 0).join(MANIFEST)).unwrap();
        assert!(shard0.contains("\"schedules\":1"), "{shard0}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_migration_round_trips_and_fsck_stats_agree() {
        let dir = temp_dir("shard-migrate");
        let mut store = Store::init(&dir).unwrap();
        for (i, (name, program)) in seeds().into_iter().enumerate().take(5) {
            store.admit(&name, &program, i as u64 + 100, Provenance::Builtin, None);
        }
        store
            .set_stats(
                store.entries()[0].name.clone().as_str(),
                EntryStats {
                    schedules: 2,
                    yield_sum: 7.5,
                    faults: 0,
                    bugs: 1,
                },
            )
            .unwrap();
        store.merge_quarantine(&[("x".to_string(), Some("Inlining".to_string()))]);
        store.save().unwrap();
        let flat_stats = store.stats_json();

        let migrated = shard_store(&dir, 3).unwrap();
        assert_eq!(migrated, 5);
        assert!(!dir.join(MANIFEST).exists(), "flat manifest removed");

        let sharded = Store::open(&dir).unwrap();
        assert_eq!(sharded.shards(), Some(3));
        assert_eq!(sharded.len(), 5);
        assert_eq!(sharded.quarantine(), store.quarantine());
        for entry in store.entries() {
            let migrated_entry = sharded
                .entries()
                .iter()
                .find(|e| e.name == entry.name)
                .expect("entry survives migration");
            assert_eq!(migrated_entry, entry, "ids and stats preserved");
            assert_eq!(
                sharded.program(&entry.name).unwrap(),
                store.program(&entry.name).unwrap()
            );
        }
        // Stats carry the layout and the same totals (entry order is
        // shard-major after migration, so byte equality cannot hold).
        let sharded_stats = sharded.stats_json();
        assert!(sharded_stats.contains("\"shards\":3"), "{sharded_stats}");
        let total = flat_stats.split("\"total_energy\":").nth(1).unwrap();
        assert!(
            sharded_stats.ends_with(&format!("\"total_energy\":{total}")),
            "{sharded_stats}"
        );
        // Migrating twice fails; so does an absurd shard count.
        assert!(shard_store(&dir, 3)
            .unwrap_err()
            .contains("already sharded"));
        assert!(shard_store(&temp_dir("none"), 500).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sharded_save_adopts_concurrent_flushes() {
        let dir = temp_dir("shard-adopt");
        let mut all = seeds();
        let (base_name, base) = all.remove(0);
        let (a_name, a_prog) = all.remove(0);
        let (b_name, b_prog) = all.remove(0);
        let mut init = Store::init_sharded(&dir, 2).unwrap();
        init.admit(&base_name, &base, 1, Provenance::Builtin, None);
        init.save().unwrap();
        let mut campaign_a = Store::open(&dir).unwrap();
        let mut campaign_b = Store::open(&dir).unwrap();
        // Both tenants promote into the same shard (fingerprints ≡ 0
        // mod 2) and race for the same per-shard id.
        campaign_a.admit(&a_name, &a_prog, 100, Provenance::Promoted, None);
        campaign_a.merge_quarantine(&[("s1".to_string(), None)]);
        campaign_a.save().unwrap();
        campaign_b.admit(&b_name, &b_prog, 200, Provenance::Promoted, None);
        campaign_b.merge_quarantine(&[("s2".to_string(), Some("Inlining".to_string()))]);
        campaign_b.save().unwrap();
        let merged = Store::open(&dir).unwrap();
        assert_eq!(merged.len(), 3);
        assert_eq!(merged.quarantine().len(), 2);
        for (name, program) in [(&a_name, &a_prog), (&b_name, &b_prog)] {
            assert_eq!(merged.program(name).unwrap(), program);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn cross_shard_name_collision_is_repaired_on_open() {
        let dir = temp_dir("shard-rename");
        let mut all = seeds();
        let (_, a_prog) = all.remove(0);
        let (_, b_prog) = all.remove(0);
        let mut store = Store::init_sharded(&dir, 2).unwrap();
        store.admit("seed", &a_prog, 2, Provenance::Builtin, None); // shard 0
        store.save().unwrap();
        // Simulate the concurrent-tenant race by planting the same name
        // in shard 1 directly.
        let mut other = Store::init(&temp_dir("shard-rename-src")).unwrap();
        other.admit("seed", &b_prog, 3, Provenance::Builtin, None);
        let sdir = Store::shard_dir(&dir, 1);
        fs::write(
            sdir.join(ENTRIES_DIR).join("c0001.java"),
            mjava::print(&b_prog),
        )
        .unwrap();
        let manifest = format!(
            "{{\"type\":\"jcorpus\",\"version\":2}}\n{}\n",
            encode_entry(&other.entries()[0])
        );
        fs::write(sdir.join(MANIFEST), manifest).unwrap();

        let mut reopened = Store::open(&dir).unwrap();
        let mut names: Vec<&str> = reopened.entries().iter().map(|e| e.name.as_str()).collect();
        names.sort_unstable();
        assert_eq!(names, ["seed", "seed_2"], "collision uniquified");
        // The repair is persisted by the next save and stable thereafter.
        reopened.save().unwrap();
        let again = Store::open(&dir).unwrap();
        let mut names: Vec<&str> = again.entries().iter().map(|e| e.name.as_str()).collect();
        names.sort_unstable();
        assert_eq!(names, ["seed", "seed_2"]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_adopts_concurrent_flushes() {
        let dir = temp_dir("adopt");
        let mut all = seeds();
        let (base_name, base) = all.remove(0);
        let (a_name, a_prog) = all.remove(0);
        let (b_name, b_prog) = all.remove(0);
        let mut init = Store::init(&dir).unwrap();
        init.admit(&base_name, &base, 1, Provenance::Builtin, None);
        init.save().unwrap();
        // Two campaigns open the same baseline ...
        let mut campaign_a = Store::open(&dir).unwrap();
        let mut campaign_b = Store::open(&dir).unwrap();
        // ... both promote different programs (racing for the same id)
        // and quarantine different pairs ...
        campaign_a.admit(&a_name, &a_prog, 100, Provenance::Promoted, None);
        campaign_a.merge_quarantine(&[("s1".to_string(), None)]);
        campaign_a.save().unwrap();
        campaign_b.admit(&b_name, &b_prog, 200, Provenance::Promoted, None);
        campaign_b.merge_quarantine(&[("s2".to_string(), Some("Inlining".to_string()))]);
        campaign_b.save().unwrap();
        // ... and the final state holds all three entries and both pairs.
        let merged = Store::open(&dir).unwrap();
        assert_eq!(merged.len(), 3);
        assert_eq!(merged.quarantine().len(), 2);
        for (name, program) in [(&a_name, &a_prog), (&b_name, &b_prog)] {
            assert_eq!(merged.program(name).unwrap(), program);
        }
        let mut ids: Vec<&str> = merged.entries().iter().map(|e| e.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 3, "adopted entries get fresh ids");
        let _ = fs::remove_dir_all(&dir);
    }
}
