//! `jcorpus`: a persistent, feedback-driven corpus store.
//!
//! The paper seeds MopFuzzer from JVM regression suites and discards every
//! mutant when a run ends. This crate makes the corpus a real subsystem:
//!
//! * [`Store`] — an on-disk corpus directory (one pretty-printed mjava
//!   source per entry plus a JSONL manifest with stable ids, provenance
//!   and per-entry stats, and a persisted quarantine file shared by all
//!   campaigns over the same store).
//! * [`fingerprint`] — an OBV/coverage fingerprint of the optimization
//!   behaviour a program evokes on a fault-free reference JVM; entries
//!   with equal fingerprints collapse into one (dedup), which also makes
//!   mutant promotion idempotent.
//! * [`PowerScheduler`] — an AFL-style power scheduler assigning each
//!   entry an energy from its historical OBV-delta yield, fault rate and
//!   age (schedule count), replacing fixed round-robin seed rotation.
//!
//! The crate is deliberately independent of `mopfuzzer` (core): promotion
//! policy and oracle logic live in the supervisor; `jcorpus` only stores
//! programs, computes fingerprints, and schedules energies. All scheduling
//! is deterministic given the campaign RNG seed.

pub mod fingerprint;
pub mod fsck;
pub mod lock;
pub mod schedule;
pub mod store;
pub mod vfs;

pub use fingerprint::{
    fingerprint, fingerprint_hex, parse_fingerprint, source_hash, FingerprintOutcome,
};
pub use fsck::{fsck, fsck_with, FsckIssue, FsckIssueKind, FsckReport};
pub use lock::{StoreLock, DEFAULT_LOCK_TIMEOUT, LOCKFILE};
pub use schedule::{energy, PowerScheduler, ENERGY_FLOOR};
pub use store::{
    read_quarantine_dir, shard_store, shard_store_with, Admission, Entry, EntryStats, Provenance,
    Store, Tombstone, MAX_SHARDS,
};
pub use vfs::{ChaosError, ChaosPlan, ChaosVfs, RealVfs, Vfs, CRASH_MARKER};
