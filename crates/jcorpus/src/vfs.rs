//! Injectable filesystem abstraction for crash-consistent persistence.
//!
//! Every durable write the corpus store, the store lock, and the campaign
//! journal perform goes through a [`Vfs`] — a small trait over the
//! handful of primitives an append-or-rename persistence layer needs.
//! Two implementations exist:
//!
//! * [`RealVfs`] — the production backend. Its guarantee is the classic
//!   atomic-commit protocol: [`write_atomic`] writes a `*.tmp` sibling,
//!   fsyncs it, renames it over the target, and fsyncs the parent
//!   directory, so a committed file is durable and a crash at any point
//!   leaves either the old contents or the new — never a torn middle.
//! * [`ChaosVfs`] — a deterministic fault injector for tests. It counts
//!   mutating operations and can (a) fail one specific operation with a
//!   transient `EIO`/`ENOSPC`, (b) tear a write at byte *k*, and (c)
//!   simulate a crash: after operation *N* completes, every later
//!   operation fails with [`CRASH_MARKER`] — the on-disk state is
//!   exactly what a `SIGKILL` after op *N* would have left behind. A
//!   probe run with no crash point counts the workload's operations so a
//!   sweep test can crash at every single one.
//!
//! The trait returns `std::io::Result` so injected errors are
//! indistinguishable from real ones to the code under test.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Message prefix of every error a [`ChaosVfs`] raises once its crash
/// point has fired. Tests match on it to tell a simulated crash from an
/// unexpected real failure.
pub const CRASH_MARKER: &str = "chaos: simulated crash";

/// The filesystem primitives the persistence layer is written against.
///
/// Mutating operations (`write`, `append`, `rename`, `remove_file`,
/// `create_dir_all`, `fsync_file`, `fsync_dir`) are the injection points
/// for chaos testing; reads are assumed to never lose data and are
/// passed through untouched.
pub trait Vfs: Send + Sync + fmt::Debug {
    /// Creates or truncates `path` with `contents`.
    fn write(&self, path: &Path, contents: &[u8]) -> io::Result<()>;
    /// Creates `path` exclusively (`O_EXCL`; fails with `AlreadyExists`
    /// when it is already present) and writes `contents`.
    fn create_new(&self, path: &Path, contents: &[u8]) -> io::Result<()>;
    /// Appends `contents` to `path`, creating it if missing.
    fn append(&self, path: &Path, contents: &[u8]) -> io::Result<()>;
    /// Renames `from` onto `to` (atomic on POSIX when same-directory).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Flushes `path`'s data and metadata to stable storage.
    fn fsync_file(&self, path: &Path) -> io::Result<()>;
    /// Flushes the directory entry table of `dir` to stable storage —
    /// the step that makes a rename or unlink survive power loss.
    fn fsync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Removes the file at `path`.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Creates `dir` and any missing ancestors.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// Reads `path` as UTF-8.
    fn read_to_string(&self, path: &Path) -> io::Result<String>;
    /// The paths inside `dir`, unsorted.
    fn read_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;
    /// Whether `path` exists.
    fn exists(&self, path: &Path) -> bool;
}

/// The directory to fsync after committing `path`: its parent component,
/// or `"."` when the path is a bare relative filename (whose `parent()`
/// is the empty path, which cannot be opened).
pub fn parent_dir(path: &Path) -> &Path {
    match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    }
}

/// Writes `contents` to `path` with the full atomic-commit protocol:
/// tmp sibling → fsync tmp → rename over target → fsync parent dir.
/// After this returns, the new contents are durable; a crash at any
/// interior point leaves the previous contents intact (plus, at worst, a
/// stale `*.tmp` sibling that [`crate::fsck`] and `Store::open` sweep).
pub fn write_atomic(vfs: &dyn Vfs, path: &Path, contents: &str) -> Result<(), String> {
    let tmp = path.with_extension("tmp");
    vfs.write(&tmp, contents.as_bytes())
        .map_err(|e| format!("write {}: {e}", tmp.display()))?;
    vfs.fsync_file(&tmp)
        .map_err(|e| format!("fsync {}: {e}", tmp.display()))?;
    vfs.rename(&tmp, path)
        .map_err(|e| format!("rename {}: {e}", path.display()))?;
    let parent = parent_dir(path);
    vfs.fsync_dir(parent)
        .map_err(|e| format!("fsync dir {}: {e}", parent.display()))?;
    Ok(())
}

/// The production backend: plain `std::fs` plus real fsyncs.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealVfs;

/// A fresh handle to the production backend.
pub fn real() -> Arc<dyn Vfs> {
    Arc::new(RealVfs)
}

impl Vfs for RealVfs {
    fn write(&self, path: &Path, contents: &[u8]) -> io::Result<()> {
        fs::write(path, contents)
    }

    fn create_new(&self, path: &Path, contents: &[u8]) -> io::Result<()> {
        use io::Write as _;
        let mut file = fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(path)?;
        file.write_all(contents)?;
        file.flush()
    }

    fn append(&self, path: &Path, contents: &[u8]) -> io::Result<()> {
        use io::Write as _;
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        file.write_all(contents)?;
        file.flush()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn fsync_file(&self, path: &Path) -> io::Result<()> {
        fs::File::open(path)?.sync_all()
    }

    fn fsync_dir(&self, dir: &Path) -> io::Result<()> {
        // Opening a directory read-only for fsync is the POSIX idiom; on
        // platforms where directory fsync is unsupported the failure is
        // reported rather than swallowed.
        fs::File::open(dir)?.sync_all()
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)
    }

    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        fs::read_to_string(path)
    }

    fn read_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        fs::read_dir(dir)?
            .map(|entry| entry.map(|e| e.path()))
            .collect()
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

/// Which transient error a one-shot chaos injection raises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosError {
    /// Out of disk space.
    Enospc,
    /// Generic I/O error.
    Eio,
}

impl ChaosError {
    fn to_io(self, op: u64) -> io::Error {
        match self {
            ChaosError::Enospc => io::Error::other(format!("ENOSPC (injected at op {op})")),
            ChaosError::Eio => io::Error::other(format!("EIO (injected at op {op})")),
        }
    }
}

/// Deterministic chaos configuration. All decisions are pure functions
/// of the mutating-operation counter, so a test replays identically.
#[derive(Debug, Clone, Default)]
pub struct ChaosPlan {
    /// Simulated crash: mutating operation *N* (1-based) completes, then
    /// every later mutating operation fails with [`CRASH_MARKER`].
    /// `Some(0)` crashes before the first operation.
    pub crash_at: Option<u64>,
    /// When the crash point lands on a `write`/`append`, persist only
    /// this many bytes of it (a torn write) instead of completing it.
    pub torn_bytes: Option<usize>,
    /// One-shot transient failures: mutating operation *N* fails with
    /// the given error but the VFS keeps working afterwards.
    pub fail_ops: Vec<(u64, ChaosError)>,
}

#[derive(Debug, Default)]
struct ChaosState {
    ops: u64,
    crashed: bool,
}

/// A deterministic fault-injecting wrapper over [`RealVfs`].
#[derive(Debug)]
pub struct ChaosVfs {
    inner: RealVfs,
    plan: ChaosPlan,
    state: Mutex<ChaosState>,
}

/// What the gate decided for one mutating operation.
enum Gate {
    /// Run the operation normally.
    Proceed,
    /// This operation is the crash point and it is a write: persist only
    /// the given prefix, then report the crash.
    TornWrite(usize),
}

impl ChaosVfs {
    /// A chaos VFS executing `plan` against the real filesystem.
    pub fn new(plan: ChaosPlan) -> ChaosVfs {
        ChaosVfs {
            inner: RealVfs,
            plan,
            state: Mutex::new(ChaosState::default()),
        }
    }

    /// A probe VFS that injects nothing — run the workload once against
    /// it, read [`ops`](ChaosVfs::ops), and sweep `crash_at` over the
    /// count.
    pub fn probe() -> ChaosVfs {
        ChaosVfs::new(ChaosPlan::default())
    }

    /// A VFS that crashes after mutating operation `n`.
    pub fn crash_after(n: u64) -> ChaosVfs {
        ChaosVfs::new(ChaosPlan {
            crash_at: Some(n),
            ..ChaosPlan::default()
        })
    }

    /// Mutating operations observed so far.
    pub fn ops(&self) -> u64 {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).ops
    }

    /// Whether the crash point has fired.
    pub fn crashed(&self) -> bool {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).crashed
    }

    fn crash_error(op: u64) -> io::Error {
        io::Error::other(format!("{CRASH_MARKER} (op {op})"))
    }

    /// Advances the op counter and decides this operation's fate.
    /// `is_write` selects torn-write semantics at the crash point.
    fn gate(&self, is_write: bool) -> io::Result<Gate> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.crashed {
            return Err(ChaosVfs::crash_error(state.ops));
        }
        if self.plan.crash_at == Some(state.ops) {
            // crash_at == current count means "crash before the next op".
            state.crashed = true;
            self.note_injection();
            return Err(ChaosVfs::crash_error(state.ops));
        }
        state.ops += 1;
        let op = state.ops;
        if let Some((_, kind)) = self.plan.fail_ops.iter().find(|(n, _)| *n == op) {
            self.note_injection();
            return Err(kind.to_io(op));
        }
        if self.plan.crash_at == Some(op) {
            state.crashed = true;
            self.note_injection();
            if is_write {
                if let Some(k) = self.plan.torn_bytes {
                    return Ok(Gate::TornWrite(k));
                }
            }
            // The crash-point op itself completes; the caller's *next*
            // operation is the first to fail.
            return Ok(Gate::Proceed);
        }
        Ok(Gate::Proceed)
    }

    fn note_injection(&self) {
        if jtelemetry::enabled() {
            jtelemetry::count(jtelemetry::Counter::ChaosFaultsInjected, 1);
        }
    }
}

impl Vfs for ChaosVfs {
    fn write(&self, path: &Path, contents: &[u8]) -> io::Result<()> {
        match self.gate(true)? {
            Gate::Proceed => self.inner.write(path, contents),
            Gate::TornWrite(k) => {
                let k = k.min(contents.len());
                self.inner.write(path, &contents[..k])?;
                Err(ChaosVfs::crash_error(self.ops()))
            }
        }
    }

    fn create_new(&self, path: &Path, contents: &[u8]) -> io::Result<()> {
        match self.gate(true)? {
            Gate::Proceed => self.inner.create_new(path, contents),
            Gate::TornWrite(k) => {
                let k = k.min(contents.len());
                self.inner.create_new(path, &contents[..k])?;
                Err(ChaosVfs::crash_error(self.ops()))
            }
        }
    }

    fn append(&self, path: &Path, contents: &[u8]) -> io::Result<()> {
        match self.gate(true)? {
            Gate::Proceed => self.inner.append(path, contents),
            Gate::TornWrite(k) => {
                let k = k.min(contents.len());
                self.inner.append(path, &contents[..k])?;
                Err(ChaosVfs::crash_error(self.ops()))
            }
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.gate(false)? {
            Gate::Proceed => self.inner.rename(from, to),
            Gate::TornWrite(_) => unreachable!("rename is not a write"),
        }
    }

    fn fsync_file(&self, path: &Path) -> io::Result<()> {
        match self.gate(false)? {
            Gate::Proceed => self.inner.fsync_file(path),
            Gate::TornWrite(_) => unreachable!("fsync is not a write"),
        }
    }

    fn fsync_dir(&self, dir: &Path) -> io::Result<()> {
        match self.gate(false)? {
            Gate::Proceed => self.inner.fsync_dir(dir),
            Gate::TornWrite(_) => unreachable!("fsync is not a write"),
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        match self.gate(false)? {
            Gate::Proceed => self.inner.remove_file(path),
            Gate::TornWrite(_) => unreachable!("unlink is not a write"),
        }
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        match self.gate(false)? {
            Gate::Proceed => self.inner.create_dir_all(dir),
            Gate::TornWrite(_) => unreachable!("mkdir is not a write"),
        }
    }

    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        self.inner.read_to_string(path)
    }

    fn read_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        self.inner.read_dir(dir)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("jvfs-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_atomic_commits_durably() {
        let dir = temp_dir("commit");
        let path = dir.join("file.txt");
        let vfs = RealVfs;
        write_atomic(&vfs, &path, "first").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "first");
        write_atomic(&vfs, &path, "second").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "second");
        assert!(
            !path.with_extension("tmp").exists(),
            "tmp cleaned by rename"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    /// A bare relative filename has `parent() == Some("")`, which cannot
    /// be opened for the directory fsync — `parent_dir` must map it (and
    /// a root path's `None`) to `"."` so `mopfuzzer --journal c.jsonl`
    /// run from the target directory works.
    #[test]
    fn parent_dir_handles_bare_and_rooted_paths() {
        assert_eq!(parent_dir(Path::new("c.jsonl")), Path::new("."));
        assert_eq!(parent_dir(Path::new("/")), Path::new("."));
        assert_eq!(parent_dir(Path::new("a/b.txt")), Path::new("a"));
        assert_eq!(parent_dir(Path::new("/tmp/x")), Path::new("/tmp"));
    }

    #[test]
    fn probe_counts_mutating_ops_only() {
        let dir = temp_dir("probe");
        let path = dir.join("f");
        let vfs = ChaosVfs::probe();
        write_atomic(&vfs, &path, "hello").unwrap();
        // write + fsync file + rename + fsync dir.
        assert_eq!(vfs.ops(), 4);
        vfs.read_to_string(&path).unwrap();
        assert!(vfs.exists(&path));
        assert_eq!(vfs.ops(), 4, "reads are not mutating ops");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_point_leaves_pre_crash_state() {
        let dir = temp_dir("crash");
        let path = dir.join("f");
        write_atomic(&RealVfs, &path, "old").unwrap();
        for n in 0..4 {
            let vfs = ChaosVfs::crash_after(n);
            let err = write_atomic(&vfs, &path, "new-contents").unwrap_err();
            assert!(
                n == 0 || err.contains(CRASH_MARKER) || vfs.crashed(),
                "op {n}: {err}"
            );
            // Until the rename (op 3) completes, the old contents
            // survive; at op >= 3 the new contents are in place.
            let now = fs::read_to_string(&path).unwrap();
            if n < 3 {
                assert_eq!(now, "old", "crash after op {n}");
            } else {
                assert_eq!(now, "new-contents", "crash after op {n}");
            }
            // Reset for the next crash point.
            let _ = fs::remove_file(path.with_extension("tmp"));
            write_atomic(&RealVfs, &path, "old").unwrap();
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_persists_a_prefix() {
        let dir = temp_dir("torn");
        let path = dir.join("f");
        let vfs = ChaosVfs::new(ChaosPlan {
            crash_at: Some(1),
            torn_bytes: Some(3),
            ..ChaosPlan::default()
        });
        let err = vfs.write(&path, b"abcdef").unwrap_err();
        assert!(err.to_string().contains(CRASH_MARKER), "{err}");
        assert_eq!(fs::read(&path).unwrap(), b"abc");
        let err = vfs.write(&path, b"later").unwrap_err();
        assert!(err.to_string().contains(CRASH_MARKER), "post-crash: {err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn one_shot_errors_are_transient() {
        let dir = temp_dir("enospc");
        let path = dir.join("f");
        let vfs = ChaosVfs::new(ChaosPlan {
            fail_ops: vec![(1, ChaosError::Enospc), (2, ChaosError::Eio)],
            ..ChaosPlan::default()
        });
        assert!(vfs
            .write(&path, b"x")
            .unwrap_err()
            .to_string()
            .contains("ENOSPC"));
        assert!(vfs
            .write(&path, b"x")
            .unwrap_err()
            .to_string()
            .contains("EIO"));
        vfs.write(&path, b"x").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"x");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_appends() {
        let dir = temp_dir("append");
        let path = dir.join("f");
        let vfs = RealVfs;
        vfs.append(&path, b"a\n").unwrap();
        vfs.append(&path, b"b\n").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "a\nb\n");
        let _ = fs::remove_dir_all(&dir);
    }
}
