//! AFL-style power scheduling over corpus entries.
//!
//! Each entry gets an energy computed from its history:
//!
//! ```text
//! energy = yield_term * fault_term * fatigue_term      (clamped >= 1e-6)
//!   yield_term   = 1 + avg_yield / (8 + |avg_yield|)   avg_yield = yield_sum / schedules
//!   fault_term   = 1 / (1 + faults)
//!   fatigue_term = 8 / (8 + schedules)                 the age term
//! ```
//!
//! Entries that have never been scheduled are explored first (energy 2.0,
//! and [`PowerScheduler::pick`] restricts the draw to them while any
//! exist) — this is what guarantees freshly promoted mutants get fuzzed
//! early in the next campaign. Picks are weighted draws from a per-round
//! RNG derived from the campaign seed and the round number only, so a
//! schedule is a pure function of (corpus baseline, campaign seed, round
//! outcomes) and journal replay reproduces it exactly.

use crate::store::EntryStats;
use rand::rngs::SmallRng;
use rand::{Rng as _, SeedableRng as _};

/// Energy assigned to an entry that was never scheduled.
const EXPLORE_ENERGY: f64 = 2.0;

/// Energies never fall below this clamp. An entry whose energy sits
/// exactly at it is "at the floor" — the signal corpus GC counts across
/// campaigns (see `Store::gc`).
pub const ENERGY_FLOOR: f64 = 1e-6;

/// The energy formula (see module docs).
pub fn energy(stats: &EntryStats) -> f64 {
    if stats.schedules == 0 {
        return EXPLORE_ENERGY;
    }
    let avg_yield = stats.yield_sum / stats.schedules as f64;
    let yield_term = 1.0 + avg_yield / (8.0 + avg_yield.abs());
    let fault_term = 1.0 / (1.0 + stats.faults as f64);
    let fatigue_term = 8.0 / (8.0 + stats.schedules as f64);
    (yield_term * fault_term * fatigue_term).max(ENERGY_FLOOR)
}

#[derive(Debug, Clone)]
struct SchedEntry {
    name: String,
    stats: EntryStats,
    blocked: bool,
}

/// In-memory scheduling state for one campaign over a corpus.
#[derive(Debug, Clone, Default)]
pub struct PowerScheduler {
    entries: Vec<SchedEntry>,
}

impl PowerScheduler {
    /// An empty scheduler; populate with [`PowerScheduler::admit`].
    pub fn new() -> PowerScheduler {
        PowerScheduler::default()
    }

    /// Adds an entry with a starting stats baseline. No-op if the name is
    /// already present (admission is idempotent, like the store's).
    pub fn admit(&mut self, name: &str, stats: EntryStats, blocked: bool) {
        if self.entries.iter().any(|e| e.name == name) {
            return;
        }
        self.entries.push(SchedEntry {
            name: name.to_string(),
            stats,
            blocked,
        });
    }

    /// Marks an entry as quarantined; it will never be picked again.
    pub fn block(&mut self, name: &str) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.name == name) {
            e.blocked = true;
        }
    }

    /// Records a completed round: one schedule, its OBV-delta yield, and
    /// any bugs it reported.
    pub fn record_ok(&mut self, name: &str, obv_delta: f64, bugs: u64) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.name == name) {
            e.stats.schedules += 1;
            e.stats.yield_sum += obv_delta;
            e.stats.bugs += bugs;
        }
    }

    /// Records a round that ended in a contained fault.
    pub fn record_fault(&mut self, name: &str) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.name == name) {
            e.stats.schedules += 1;
            e.stats.faults += 1;
        }
    }

    /// Picks the entry to fuzz in `round`. Returns `None` when every entry
    /// is blocked (the campaign has nothing left to schedule).
    pub fn pick(&self, round: usize, campaign_seed: u64) -> Option<String> {
        let eligible: Vec<&SchedEntry> = self.entries.iter().filter(|e| !e.blocked).collect();
        if eligible.is_empty() {
            return None;
        }
        // Exploration first: any never-scheduled entry outranks history.
        let unexplored: Vec<&&SchedEntry> =
            eligible.iter().filter(|e| e.stats.schedules == 0).collect();
        let pool: Vec<&SchedEntry> = if unexplored.is_empty() {
            eligible
        } else {
            unexplored.into_iter().copied().collect()
        };
        let mut rng = SmallRng::seed_from_u64(
            campaign_seed ^ (round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let total: f64 = pool.iter().map(|e| energy(&e.stats)).sum();
        let mut x = rng.gen::<f64>() * total;
        for e in &pool {
            x -= energy(&e.stats);
            if x <= 0.0 {
                return Some(e.name.clone());
            }
        }
        pool.last().map(|e| e.name.clone())
    }

    /// Total energy over unblocked entries (exported as a gauge).
    pub fn total_energy(&self) -> f64 {
        self.entries
            .iter()
            .filter(|e| !e.blocked)
            .map(|e| energy(&e.stats))
            .sum()
    }

    /// Number of entries (blocked included).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the scheduler holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Current stats of an entry, if present.
    pub fn stats(&self, name: &str) -> Option<&EntryStats> {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .map(|e| &e.stats)
    }

    /// Entry names in admission order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|e| e.name.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(schedules: u64, yield_sum: f64, faults: u64) -> EntryStats {
        EntryStats {
            schedules,
            yield_sum,
            faults,
            bugs: 0,
        }
    }

    #[test]
    fn energy_prefers_yield_and_penalizes_faults_and_age() {
        let fresh = energy(&stats(0, 0.0, 0));
        let high_yield = energy(&stats(4, 120.0, 0));
        let low_yield = energy(&stats(4, 1.0, 0));
        let faulty = energy(&stats(4, 120.0, 3));
        let tired = energy(&stats(64, 120.0 * 16.0, 0));
        assert!(fresh > high_yield, "exploration beats history");
        assert!(high_yield > low_yield, "yield raises energy");
        assert!(high_yield > faulty, "faults lower energy");
        assert!(high_yield > tired, "fatigue lowers energy");
        assert!(energy(&stats(1000, 0.0, 1000)) >= 1e-6, "clamped");
    }

    #[test]
    fn pick_is_deterministic_for_a_fixed_seed() {
        let mut a = PowerScheduler::new();
        let mut b = PowerScheduler::new();
        for s in [&mut a, &mut b] {
            s.admit("x", stats(3, 50.0, 0), false);
            s.admit("y", stats(1, 2.0, 1), false);
            s.admit("z", stats(7, 9.0, 0), false);
        }
        for round in 0..64 {
            assert_eq!(a.pick(round, 0xBEEF), b.pick(round, 0xBEEF));
        }
        // And a different campaign seed gives a different schedule overall.
        let seq1: Vec<_> = (0..64).map(|r| a.pick(r, 1)).collect();
        let seq2: Vec<_> = (0..64).map(|r| a.pick(r, 2)).collect();
        assert_ne!(seq1, seq2);
    }

    #[test]
    fn unexplored_entries_are_picked_first() {
        let mut s = PowerScheduler::new();
        s.admit("old", stats(10, 500.0, 0), false);
        s.admit("fresh", stats(0, 0.0, 0), false);
        for round in 0..32 {
            assert_eq!(s.pick(round, 42), Some("fresh".to_string()));
        }
        s.record_ok("fresh", 1.0, 0);
        let names: std::collections::BTreeSet<_> = (0..64).filter_map(|r| s.pick(r, 42)).collect();
        assert!(names.contains("old"), "explored entries compete again");
    }

    #[test]
    fn blocked_entries_are_never_picked() {
        let mut s = PowerScheduler::new();
        s.admit("a", stats(0, 0.0, 0), false);
        s.admit("b", stats(0, 0.0, 0), true);
        for round in 0..32 {
            assert_eq!(s.pick(round, 7), Some("a".to_string()));
        }
        s.block("a");
        assert_eq!(s.pick(0, 7), None);
    }

    #[test]
    fn record_updates_stats() {
        let mut s = PowerScheduler::new();
        s.admit("a", EntryStats::default(), false);
        s.record_ok("a", 12.5, 1);
        s.record_fault("a");
        let st = s.stats("a").unwrap();
        assert_eq!(st.schedules, 2);
        assert_eq!(st.yield_sum, 12.5);
        assert_eq!(st.faults, 1);
        assert_eq!(st.bugs, 1);
    }
}
