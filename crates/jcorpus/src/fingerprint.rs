//! OBV/coverage fingerprints for corpus dedup.
//!
//! Two programs that evoke the same optimization behaviour — the same
//! 19-dimensional optimization behaviour vector (OBV) and the same set of
//! covered JIT/runtime blocks — on a fault-free reference JVM are treated
//! as one corpus entry. The fingerprint is an FNV-1a hash over the OBV
//! counts and the per-area sorted coverage blocks, so it is independent
//! of identifier names, statement order inside dead code, or any other
//! source detail that does not change observed behaviour.

use jprofile::Obv;
use jvmsim::{run_jvm, Area, JvmSpec, RunOptions, Verdict, Version};
use mjava::Program;

/// The result of fingerprinting one program, with the simulated work it
/// cost so callers can account for it in campaign budgets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FingerprintOutcome {
    /// The 64-bit behaviour fingerprint.
    pub fingerprint: u64,
    /// Simulated interpreter/JIT steps spent on the reference run.
    pub steps: u64,
}

/// The fault-free reference JVM all fingerprints are computed on.
///
/// Using a single bug-free spec keeps fingerprints stable across campaigns
/// with different differential pools and guarantees fingerprinting itself
/// never trips an injected bug.
pub fn reference_jvm() -> JvmSpec {
    JvmSpec::hotspur(Version::Mainline).without_bugs()
}

/// Computes the behaviour fingerprint of `program` on the reference JVM.
///
/// Returns an error for programs the reference JVM rejects (invalid
/// seeds have no behaviour to fingerprint).
pub fn fingerprint(program: &Program) -> Result<FingerprintOutcome, String> {
    let run = run_jvm(program, &reference_jvm(), &RunOptions::fuzzing());
    match &run.verdict {
        Verdict::InvalidProgram(e) => Err(format!("invalid program: {e}")),
        Verdict::CompilerCrash(c) => Err(format!(
            "reference JVM crashed (should be bug-free): {}",
            c.bug_id
        )),
        Verdict::Completed(_) => {
            let obv = Obv::from_log(&run.log);
            let mut h = Fnv::new();
            for (_, count) in obv.iter() {
                h.write_u64(count);
            }
            for area in Area::ALL {
                h.write_u64(0xA5A5_A5A5_A5A5_A5A5); // area separator
                for block in run.coverage.blocks(area) {
                    h.write_u64(block as u64);
                }
            }
            Ok(FingerprintOutcome {
                fingerprint: h.finish(),
                steps: run.steps,
            })
        }
    }
}

/// FNV-1a over the pretty-printed source of `program` — the memoization
/// key for behaviour fingerprints. Costs one print, no JVM execution;
/// a store entry with the same source hash already knows the program's
/// fingerprint, so imports skip the reference run entirely.
pub fn source_hash(program: &Program) -> u64 {
    let mut h = Fnv::new();
    for byte in mjava::print(program).bytes() {
        h.write_u8(byte);
    }
    h.finish()
}

/// Renders a fingerprint as the fixed-width hex form stored in manifests.
pub fn fingerprint_hex(fp: u64) -> String {
    format!("{fp:016x}")
}

/// Parses the manifest hex form back into a fingerprint.
pub fn parse_fingerprint(s: &str) -> Result<u64, String> {
    u64::from_str_radix(s, 16).map_err(|e| format!("bad fingerprint {s:?}: {e}"))
}

/// FNV-1a, 64-bit. Dependency-free and stable across platforms.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write_u8(&mut self, byte: u8) {
        self.0 ^= byte as u64;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    fn write_u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.write_u8(byte);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(name: &str) -> Program {
        mjava::samples::all_seeds()
            .into_iter()
            .find(|s| s.name == name)
            .expect("known sample")
            .program
    }

    #[test]
    fn fingerprint_is_deterministic() {
        let p = sample("listing2");
        let a = fingerprint(&p).unwrap();
        let b = fingerprint(&p).unwrap();
        assert_eq!(a, b);
        assert!(a.steps > 0);
    }

    #[test]
    fn distinct_programs_distinct_fingerprints() {
        let seeds = mjava::samples::all_seeds();
        let mut fps = Vec::new();
        for s in &seeds {
            fps.push(fingerprint(&s.program).unwrap().fingerprint);
        }
        fps.sort_unstable();
        fps.dedup();
        assert_eq!(fps.len(), seeds.len(), "built-in seeds should not collide");
    }

    #[test]
    fn source_hash_tracks_printed_source() {
        let a = sample("listing2");
        let b = sample("arith_loop");
        assert_eq!(source_hash(&a), source_hash(&a));
        assert_ne!(source_hash(&a), source_hash(&b));
        // Print → parse → print is stable, so re-imports hit the memo.
        let reparsed = mjava::parse(&mjava::print(&a)).unwrap();
        assert_eq!(source_hash(&reparsed), source_hash(&a));
    }

    #[test]
    fn hex_round_trip() {
        for fp in [0u64, 1, 0xdead_beef, u64::MAX] {
            assert_eq!(parse_fingerprint(&fingerprint_hex(fp)).unwrap(), fp);
        }
        assert!(parse_fingerprint("xyz").is_err());
    }
}
