//! Crash-recovery checking and repair for corpus stores (`corpus fsck`).
//!
//! [`Store::open`](crate::Store::open) deliberately tolerates the
//! footprints a crash can leave behind (torn final lines, stale `*.tmp`
//! siblings) so campaigns keep running; `fsck` is the explicit twin that
//! *names* every such footprint and, with `repair`, removes it:
//!
//! * **torn tails** — an unparseable final line of `manifest.jsonl` or
//!   `quarantine.jsonl` (a writer died mid-write); repaired by
//!   rewriting the file without the torn record;
//! * **mid-file corruption** — an unparseable line that is *not* the
//!   tail, or a bad header: reported but never auto-repaired (dropping
//!   an interior record would silently lose data);
//! * **missing/corrupt sources** — a live manifest entry whose
//!   `entries/<id>.java` is unreadable or unparseable; repaired by
//!   tombstoning the entry (name and fingerprint stay reserved);
//! * **dangling tombstones** — a tombstoned entry whose source file
//!   still exists (crash between the manifest rename and the source
//!   unlink); repaired by deleting the file;
//! * **orphan sources** — `entries/*.java` referenced by no manifest
//!   line at all; repaired by deleting the file;
//! * **stale tmp files** — `*.tmp` anywhere in the store; deleted.
//!
//! All checking runs under the store lock, so a live campaign's
//! in-flight save is never misread as damage. The report is available
//! machine-readable ([`FsckReport::to_json`]) for CI artifacts.
//!
//! Sharded stores (a `shards.json` marker plus `shards/NN/` sub-stores)
//! get the same treatment per shard: each shard is a flat-format store
//! and is checked under its own shard lock, with the quarantine and
//! top-level tmp sweep running once under the top-level lock. Lock
//! order is top-level first, then shards ascending — the same total
//! order saves use, so fsck never deadlocks against a live flush.

use crate::lock::{StoreLock, DEFAULT_LOCK_TIMEOUT};
use crate::store::{
    check_header, decode_line, decode_quarantine_line, esc, parse_shards_marker, Decoded, Store,
    ENTRIES_DIR, MANIFEST, QUARANTINE, SHARDS_MARKER,
};
use crate::vfs::{self, Vfs};
use crate::{fingerprint_hex, Tombstone};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// What kind of damage one [`FsckIssue`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsckIssueKind {
    /// Unparseable final line of `manifest.jsonl`.
    TornManifestTail,
    /// Unparseable interior line or header of `manifest.jsonl`.
    CorruptManifest,
    /// Unparseable final line of `quarantine.jsonl`.
    TornQuarantineTail,
    /// Unparseable interior line of `quarantine.jsonl`.
    CorruptQuarantine,
    /// Live entry whose `entries/<id>.java` is missing or unparseable.
    MissingSource,
    /// `entries/*.java` referenced by no manifest line.
    OrphanSource,
    /// Tombstoned entry whose source file still exists.
    DanglingTombstone,
    /// Leftover `*.tmp` from an interrupted atomic write.
    StaleTmp,
}

impl FsckIssueKind {
    /// Stable machine-readable name.
    pub fn as_str(&self) -> &'static str {
        match self {
            FsckIssueKind::TornManifestTail => "torn-manifest-tail",
            FsckIssueKind::CorruptManifest => "corrupt-manifest",
            FsckIssueKind::TornQuarantineTail => "torn-quarantine-tail",
            FsckIssueKind::CorruptQuarantine => "corrupt-quarantine",
            FsckIssueKind::MissingSource => "missing-source",
            FsckIssueKind::OrphanSource => "orphan-source",
            FsckIssueKind::DanglingTombstone => "dangling-tombstone",
            FsckIssueKind::StaleTmp => "stale-tmp",
        }
    }

    /// Whether `fsck --repair` knows a safe fix. Interior corruption is
    /// never auto-repaired: dropping a mid-file record loses data the
    /// crash did not.
    pub fn repairable(&self) -> bool {
        !matches!(
            self,
            FsckIssueKind::CorruptManifest | FsckIssueKind::CorruptQuarantine
        )
    }
}

/// One detected inconsistency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsckIssue {
    /// The damage class.
    pub kind: FsckIssueKind,
    /// The file the issue lives in.
    pub path: PathBuf,
    /// Human-readable specifics (line number, entry id, parse error).
    pub detail: String,
    /// Whether this run's repair pass fixed it.
    pub repaired: bool,
}

/// The outcome of one fsck pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsckReport {
    /// The store that was checked.
    pub dir: PathBuf,
    /// Whether repairs were requested.
    pub repair: bool,
    /// Every detected issue, in detection order.
    pub issues: Vec<FsckIssue>,
}

impl FsckReport {
    /// No issues at all.
    pub fn clean(&self) -> bool {
        self.issues.is_empty()
    }

    /// Issues fixed by this run.
    pub fn repaired(&self) -> usize {
        self.issues.iter().filter(|i| i.repaired).count()
    }

    /// Issues still present after this run.
    pub fn unrepaired(&self) -> usize {
        self.issues.len() - self.repaired()
    }

    /// Machine-readable report, one JSON object.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"type\":\"jcorpus-fsck\",\"version\":1,\"dir\":\"{}\",\"repair\":{},\
             \"clean\":{},\"issues\":[",
            esc(&self.dir.display().to_string()),
            self.repair,
            self.clean(),
        );
        for (i, issue) in self.issues.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"kind\":\"{}\",\"path\":\"{}\",\"detail\":\"{}\",\"repaired\":{}}}",
                issue.kind.as_str(),
                esc(&issue.path.display().to_string()),
                esc(&issue.detail),
                issue.repaired,
            ));
        }
        out.push_str("]}");
        out
    }

    /// Human-readable report, one line per issue plus a summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for issue in &self.issues {
            let status = if issue.repaired { "repaired" } else { "found" };
            out.push_str(&format!(
                "{status}: {} at {} ({})\n",
                issue.kind.as_str(),
                issue.path.display(),
                issue.detail,
            ));
        }
        if self.clean() {
            out.push_str(&format!("{}: clean\n", self.dir.display()));
        } else {
            out.push_str(&format!(
                "{}: {} issue(s), {} repaired, {} remaining\n",
                self.dir.display(),
                self.issues.len(),
                self.repaired(),
                self.unrepaired(),
            ));
        }
        out
    }
}

/// Checks the store at `dir`, repairing what it finds when `repair` is
/// set. Fails only when the store cannot be examined at all (no
/// manifest, lock held past its timeout).
pub fn fsck(dir: &Path, repair: bool) -> Result<FsckReport, String> {
    fsck_with(dir, repair, vfs::real())
}

/// [`fsck`] with all I/O routed through `fs`.
pub fn fsck_with(dir: &Path, repair: bool, fs: Arc<dyn Vfs>) -> Result<FsckReport, String> {
    let _lock = StoreLock::acquire_with_vfs(dir, DEFAULT_LOCK_TIMEOUT, fs.clone())?;
    let mut report = FsckReport {
        dir: dir.to_path_buf(),
        repair,
        issues: Vec::new(),
    };
    let marker = dir.join(SHARDS_MARKER);
    if fs.exists(&marker) {
        let text = fs
            .read_to_string(&marker)
            .map_err(|e| format!("read {}: {e}", marker.display()))?;
        let shards = parse_shards_marker(&text)?;
        for shard in 0..shards {
            let sdir = Store::shard_dir(dir, shard);
            let _shard_lock = StoreLock::acquire_with_vfs(&sdir, DEFAULT_LOCK_TIMEOUT, fs.clone())?;
            let manifest = check_manifest(fs.as_ref(), &sdir, repair, &mut report)?;
            if let Some(manifest) = &manifest {
                check_sources(fs.as_ref(), &sdir, manifest, repair, &mut report);
            }
            check_stale_tmp(fs.as_ref(), &sdir, repair, &mut report);
        }
    } else {
        let manifest = check_manifest(fs.as_ref(), dir, repair, &mut report)?;
        if let Some(manifest) = &manifest {
            check_sources(fs.as_ref(), dir, manifest, repair, &mut report);
        }
    }
    check_quarantine(fs.as_ref(), dir, repair, &mut report);
    check_stale_tmp(fs.as_ref(), dir, repair, &mut report);
    if jtelemetry::enabled() {
        jtelemetry::count(
            jtelemetry::Counter::FsckIssuesFound,
            report.issues.len() as u64,
        );
        jtelemetry::count(
            jtelemetry::Counter::FsckRepairsApplied,
            report.repaired() as u64,
        );
    }
    Ok(report)
}

/// The manifest knowledge the source checks need: decoded lines paired
/// with their raw text (kept verbatim on rewrite, so repair never
/// reformats undamaged records).
struct ManifestScan {
    header: String,
    records: Vec<(String, Decoded)>, // (raw line, decoded)
}

fn check_manifest(
    fs: &dyn Vfs,
    dir: &Path,
    repair: bool,
    report: &mut FsckReport,
) -> Result<Option<ManifestScan>, String> {
    let path = dir.join(MANIFEST);
    let text = fs
        .read_to_string(&path)
        .map_err(|e| format!("read {}: {e}", path.display()))?;
    let lines: Vec<(usize, &str)> = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .collect();
    let Some((_, header)) = lines.first() else {
        report.issues.push(FsckIssue {
            kind: FsckIssueKind::CorruptManifest,
            path,
            detail: "empty manifest".to_string(),
            repaired: false,
        });
        return Ok(None);
    };
    if let Err(e) = check_header(header) {
        report.issues.push(FsckIssue {
            kind: FsckIssueKind::CorruptManifest,
            path,
            detail: format!("line 1: {e}"),
            repaired: false,
        });
        // Without a trusted header nothing downstream can be judged.
        return Ok(None);
    }
    let mut scan = ManifestScan {
        header: header.to_string(),
        records: Vec::new(),
    };
    let mut torn = false;
    for (pos, (i, line)) in lines.iter().enumerate().skip(1) {
        match decode_line(line) {
            Ok(decoded) => scan.records.push((line.to_string(), decoded)),
            Err(e) if pos + 1 == lines.len() => {
                torn = true;
                report.issues.push(FsckIssue {
                    kind: FsckIssueKind::TornManifestTail,
                    path: path.clone(),
                    detail: format!("line {}: {e}", i + 1),
                    repaired: repair,
                });
            }
            Err(e) => {
                report.issues.push(FsckIssue {
                    kind: FsckIssueKind::CorruptManifest,
                    path: path.clone(),
                    detail: format!("line {}: {e}", i + 1),
                    repaired: false,
                });
                // Interior corruption: stop judging sources against a
                // manifest we only partially understand.
                return Ok(None);
            }
        }
    }
    if torn && repair {
        rewrite_manifest(fs, dir, &scan);
    }
    Ok(Some(scan))
}

/// Rewrites the manifest from a scan's raw records (atomic commit).
fn rewrite_manifest(fs: &dyn Vfs, dir: &Path, scan: &ManifestScan) {
    let mut text = scan.header.clone();
    text.push('\n');
    for (raw, _) in &scan.records {
        text.push_str(raw);
        text.push('\n');
    }
    let _ = vfs::write_atomic(fs, &dir.join(MANIFEST), &text);
}

fn check_sources(
    fs: &dyn Vfs,
    dir: &Path,
    manifest: &ManifestScan,
    repair: bool,
    report: &mut FsckReport,
) {
    let entries_dir = dir.join(ENTRIES_DIR);
    let mut scan = ManifestScan {
        header: manifest.header.clone(),
        records: Vec::new(),
    };
    let mut tombstoned = Vec::new();
    let mut live_ids = Vec::new();
    let mut tomb_ids = Vec::new();
    for (raw, decoded) in &manifest.records {
        match decoded {
            Decoded::Tomb(t) => {
                tomb_ids.push(t.id.clone());
                scan.records.push((raw.clone(), Decoded::Tomb(t.clone())));
            }
            Decoded::Live(entry, has_hash) => {
                let src = entries_dir.join(format!("{}.java", entry.id));
                let healthy = match fs.read_to_string(&src) {
                    Ok(text) => mjava::parse(&text).is_ok(),
                    Err(_) => false,
                };
                if healthy {
                    live_ids.push(entry.id.clone());
                    scan.records
                        .push((raw.clone(), Decoded::Live(entry.clone(), *has_hash)));
                    continue;
                }
                report.issues.push(FsckIssue {
                    kind: FsckIssueKind::MissingSource,
                    path: src.clone(),
                    detail: format!(
                        "entry {} ({:?}) has no readable source; tombstoning",
                        entry.id, entry.name
                    ),
                    repaired: repair,
                });
                // The safe repair: keep name and fingerprint reserved as
                // a tombstone, drop the unreadable program.
                let tomb = Tombstone {
                    id: entry.id.clone(),
                    name: entry.name.clone(),
                    fingerprint: entry.fingerprint,
                };
                tomb_ids.push(tomb.id.clone());
                tombstoned.push(src);
                scan.records.push((
                    format!(
                        "{{\"id\":\"{}\",\"name\":\"{}\",\"fingerprint\":\"{}\",\
                         \"tombstone\":true}}",
                        esc(&tomb.id),
                        esc(&tomb.name),
                        fingerprint_hex(tomb.fingerprint),
                    ),
                    Decoded::Tomb(tomb),
                ));
            }
        }
    }
    if repair && !tombstoned.is_empty() {
        rewrite_manifest(fs, dir, &scan);
        for src in &tombstoned {
            let _ = fs.remove_file(src);
        }
        let _ = fs.fsync_dir(&entries_dir);
    }
    // Source files the (possibly just-rewritten) manifest does not claim.
    let mut removed = false;
    for path in fs.read_dir(&entries_dir).unwrap_or_default() {
        let Some(id) = path
            .file_name()
            .and_then(|n| n.to_str())
            .and_then(|n| n.strip_suffix(".java"))
        else {
            continue; // `*.tmp` and strangers are the tmp sweep's concern
        };
        if live_ids.iter().any(|l| l == id) || tombstoned.contains(&path) {
            continue;
        }
        let (kind, detail) = if tomb_ids.iter().any(|t| t == id) {
            (
                FsckIssueKind::DanglingTombstone,
                format!("tombstoned entry {id} still has a source file"),
            )
        } else {
            (
                FsckIssueKind::OrphanSource,
                format!("{id}.java is referenced by no manifest line"),
            )
        };
        report.issues.push(FsckIssue {
            kind,
            path: path.clone(),
            detail,
            repaired: repair,
        });
        if repair {
            removed |= fs.remove_file(&path).is_ok();
        }
    }
    if removed {
        let _ = fs.fsync_dir(&entries_dir);
    }
}

fn check_quarantine(fs: &dyn Vfs, dir: &Path, repair: bool, report: &mut FsckReport) {
    let path = dir.join(QUARANTINE);
    if !fs.exists(&path) {
        return; // a store may legitimately predate any quarantine flush
    }
    let Ok(text) = fs.read_to_string(&path) else {
        return;
    };
    let lines: Vec<(usize, &str)> = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .collect();
    let mut good = Vec::new();
    let mut torn = false;
    for (pos, (i, line)) in lines.iter().enumerate() {
        match decode_quarantine_line(line) {
            Ok(_) => good.push(*line),
            Err(e) if pos + 1 == lines.len() => {
                torn = true;
                report.issues.push(FsckIssue {
                    kind: FsckIssueKind::TornQuarantineTail,
                    path: path.clone(),
                    detail: format!("line {}: {e}", i + 1),
                    repaired: repair,
                });
            }
            Err(e) => {
                report.issues.push(FsckIssue {
                    kind: FsckIssueKind::CorruptQuarantine,
                    path: path.clone(),
                    detail: format!("line {}: {e}", i + 1),
                    repaired: false,
                });
                return;
            }
        }
    }
    if torn && repair {
        let mut text: String = good.join("\n");
        if !text.is_empty() {
            text.push('\n');
        }
        let _ = vfs::write_atomic(fs, &path, &text);
    }
}

fn check_stale_tmp(fs: &dyn Vfs, dir: &Path, repair: bool, report: &mut FsckReport) {
    for d in [dir.to_path_buf(), dir.join(ENTRIES_DIR)] {
        let Ok(paths) = fs.read_dir(&d) else {
            continue;
        };
        let mut paths: Vec<PathBuf> = paths
            .into_iter()
            .filter(|p| p.extension().is_some_and(|e| e == "tmp"))
            .collect();
        paths.sort();
        let mut removed = false;
        for path in paths {
            report.issues.push(FsckIssue {
                kind: FsckIssueKind::StaleTmp,
                path: path.clone(),
                detail: "leftover from an interrupted atomic write".to_string(),
                repaired: repair,
            });
            if repair {
                removed |= fs.remove_file(&path).is_ok();
            }
        }
        if removed {
            let _ = fs.fsync_dir(&d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{Provenance, Store};
    use std::fs as stdfs;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("jcorpus-fsck-{tag}-{}-{n}", std::process::id()));
        let _ = stdfs::remove_dir_all(&dir);
        dir
    }

    /// A saved two-entry store to damage.
    fn seeded_store(tag: &str) -> PathBuf {
        let dir = temp_dir(tag);
        let mut store = Store::init(&dir).unwrap();
        for (i, seed) in mjava::samples::all_seeds().into_iter().take(2).enumerate() {
            store.admit(
                seed.name,
                &seed.program,
                i as u64 + 1,
                Provenance::Builtin,
                None,
            );
        }
        store.merge_quarantine(&[("s".to_string(), None), ("t".to_string(), Some("X".into()))]);
        store.save().unwrap();
        dir
    }

    #[test]
    fn clean_store_reports_clean() {
        let dir = seeded_store("clean");
        let report = fsck(&dir, false).unwrap();
        assert!(report.clean(), "{:?}", report.issues);
        assert!(report.to_json().contains("\"clean\":true"));
        let _ = stdfs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_manifest_tail_is_reported_and_repaired() {
        let dir = seeded_store("torn-manifest");
        let path = dir.join(MANIFEST);
        let pristine = stdfs::read_to_string(&path).unwrap();
        let last = pristine.lines().last().unwrap();
        stdfs::write(&path, format!("{pristine}{}", &last[..last.len() / 2])).unwrap();
        let report = fsck(&dir, false).unwrap();
        assert_eq!(report.issues.len(), 1, "{:?}", report.issues);
        assert_eq!(report.issues[0].kind, FsckIssueKind::TornManifestTail);
        assert!(!report.issues[0].repaired);

        let report = fsck(&dir, true).unwrap();
        assert_eq!(report.repaired(), 1);
        assert_eq!(stdfs::read_to_string(&path).unwrap(), pristine);
        assert!(fsck(&dir, false).unwrap().clean());
        let _ = stdfs::remove_dir_all(&dir);
    }

    #[test]
    fn interior_corruption_is_reported_but_never_dropped() {
        let dir = seeded_store("interior");
        let path = dir.join(MANIFEST);
        let pristine = stdfs::read_to_string(&path).unwrap();
        let mut lines: Vec<&str> = pristine.lines().collect();
        lines.insert(1, "{\"garbage\":");
        stdfs::write(&path, lines.join("\n") + "\n").unwrap();
        let report = fsck(&dir, true).unwrap();
        assert_eq!(report.issues[0].kind, FsckIssueKind::CorruptManifest);
        assert!(!report.issues[0].repaired);
        assert!(report.unrepaired() >= 1);
        // The damaged manifest was not rewritten behind the user's back.
        assert!(stdfs::read_to_string(&path)
            .unwrap()
            .contains("{\"garbage\":"));
        let _ = stdfs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_source_is_tombstoned() {
        let dir = seeded_store("missing-src");
        stdfs::remove_file(dir.join(ENTRIES_DIR).join("c0001.java")).unwrap();
        let report = fsck(&dir, true).unwrap();
        assert!(
            report
                .issues
                .iter()
                .any(|i| i.kind == FsckIssueKind::MissingSource && i.repaired),
            "{:?}",
            report.issues
        );
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.tombstones().len(), 1);
        assert!(fsck(&dir, false).unwrap().clean());
        let _ = stdfs::remove_dir_all(&dir);
    }

    #[test]
    fn orphans_dangling_tombstones_and_tmp_are_swept() {
        let dir = seeded_store("sweep");
        let entries = dir.join(ENTRIES_DIR);
        // An orphan source, a stale tmp in each directory, and a
        // dangling tombstone (gc, then resurrect the source file).
        stdfs::write(entries.join("c9999.java"), "class Foo { }").unwrap();
        stdfs::write(entries.join("c0001.tmp"), "half").unwrap();
        stdfs::write(dir.join("manifest.tmp"), "half").unwrap();
        let mut store = Store::open(&dir).unwrap();
        let name = store.entries()[0].name.clone();
        store
            .set_stats(
                &name,
                crate::EntryStats {
                    schedules: 1,
                    ..Default::default()
                },
            )
            .unwrap();
        store.set_floor_streak(&name, 10).unwrap();
        assert_eq!(store.gc(1), vec![name]);
        store.save().unwrap();
        stdfs::write(entries.join("c0001.java"), "class Foo { }").unwrap();

        let report = fsck(&dir, true).unwrap();
        let kinds: Vec<FsckIssueKind> = report.issues.iter().map(|i| i.kind).collect();
        assert!(kinds.contains(&FsckIssueKind::OrphanSource), "{kinds:?}");
        assert!(
            kinds.contains(&FsckIssueKind::DanglingTombstone),
            "{kinds:?}"
        );
        assert!(!kinds.contains(&FsckIssueKind::StaleTmp), "{kinds:?}");
        assert!(!entries.join("c9999.java").exists());
        assert!(!entries.join("c0001.java").exists());
        assert!(fsck(&dir, false).unwrap().clean());
        let _ = stdfs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_manifest_tail_recovers_at_every_byte_boundary() {
        let dir = seeded_store("manifest-bytes");
        let manifest = dir.join(MANIFEST);
        let pristine = stdfs::read_to_string(&manifest).unwrap();
        let last = pristine.lines().last().unwrap().to_string();
        let head = pristine[..pristine.len() - last.len() - 1].to_string();
        let src_path = dir.join(ENTRIES_DIR).join("c0002.java");
        let src = stdfs::read_to_string(&src_path).unwrap();
        for cut in 0..last.len() {
            stdfs::write(&src_path, &src).unwrap();
            stdfs::write(&manifest, format!("{head}{}", &last[..cut])).unwrap();
            let opened = Store::open(&dir).unwrap();
            assert_eq!(opened.len(), 1, "cut {cut}: torn record dropped on open");
            let report = fsck(&dir, true).unwrap();
            assert!(
                report.issues.iter().all(|i| i.repaired),
                "cut {cut}: {:?}",
                report.issues
            );
            if cut > 0 {
                assert!(
                    report
                        .issues
                        .iter()
                        .any(|i| i.kind == FsckIssueKind::TornManifestTail),
                    "cut {cut}: {:?}",
                    report.issues
                );
            }
            assert!(fsck(&dir, false).unwrap().clean(), "cut {cut}");
        }
        let _ = stdfs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_quarantine_tail_recovers_at_every_byte_boundary() {
        let dir = seeded_store("quarantine-bytes");
        let quarantine = dir.join(QUARANTINE);
        let pristine = stdfs::read_to_string(&quarantine).unwrap();
        let last = pristine.lines().last().unwrap().to_string();
        let head = pristine[..pristine.len() - last.len() - 1].to_string();
        for cut in 0..last.len() {
            stdfs::write(&quarantine, format!("{head}{}", &last[..cut])).unwrap();
            let opened = Store::open(&dir).unwrap();
            assert_eq!(opened.quarantine().len(), 1, "cut {cut}");
            let report = fsck(&dir, true).unwrap();
            let expect = usize::from(cut > 0);
            assert_eq!(
                report.issues.len(),
                expect,
                "cut {cut}: {:?}",
                report.issues
            );
            assert_eq!(report.repaired(), expect, "cut {cut}");
            if cut > 0 {
                assert_eq!(report.issues[0].kind, FsckIssueKind::TornQuarantineTail);
                assert_eq!(stdfs::read_to_string(&quarantine).unwrap(), head);
            }
            assert!(fsck(&dir, false).unwrap().clean(), "cut {cut}");
        }
        let _ = stdfs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_quarantine_tail_is_repaired() {
        let dir = seeded_store("torn-quarantine");
        let path = dir.join(QUARANTINE);
        let pristine = stdfs::read_to_string(&path).unwrap();
        stdfs::write(&path, format!("{pristine}{{\"seed\":\"half")).unwrap();
        let report = fsck(&dir, true).unwrap();
        assert_eq!(report.issues.len(), 1, "{:?}", report.issues);
        assert_eq!(report.issues[0].kind, FsckIssueKind::TornQuarantineTail);
        assert_eq!(stdfs::read_to_string(&path).unwrap(), pristine);
        let _ = stdfs::remove_dir_all(&dir);
    }

    #[test]
    fn sharded_store_is_checked_and_repaired_per_shard() {
        let dir = temp_dir("sharded");
        let mut store = Store::init_sharded(&dir, 3).unwrap();
        for (i, seed) in mjava::samples::all_seeds().into_iter().take(3).enumerate() {
            store.admit(
                seed.name,
                &seed.program,
                i as u64 + 1, // fingerprints 1, 2, 3 → shards 1, 2, 0
                Provenance::Builtin,
                None,
            );
        }
        store.merge_quarantine(&[("s".to_string(), None)]);
        store.save().unwrap();
        assert!(fsck(&dir, false).unwrap().clean());

        // One kind of damage in each shard: a torn manifest tail in
        // shard 1, an orphan source in shard 0, a stale tmp in shard 2.
        let s1_manifest = Store::shard_dir(&dir, 1).join(MANIFEST);
        let pristine = stdfs::read_to_string(&s1_manifest).unwrap();
        let last = pristine.lines().last().unwrap();
        stdfs::write(
            &s1_manifest,
            format!("{pristine}{}", &last[..last.len() / 2]),
        )
        .unwrap();
        stdfs::write(
            Store::shard_dir(&dir, 0)
                .join(ENTRIES_DIR)
                .join("c9999.java"),
            "class Foo { }",
        )
        .unwrap();
        stdfs::write(Store::shard_dir(&dir, 2).join("manifest.tmp"), "half").unwrap();

        let report = fsck(&dir, false).unwrap();
        let kinds: Vec<FsckIssueKind> = report.issues.iter().map(|i| i.kind).collect();
        assert!(
            kinds.contains(&FsckIssueKind::TornManifestTail),
            "{kinds:?}"
        );
        assert!(kinds.contains(&FsckIssueKind::OrphanSource), "{kinds:?}");
        assert!(kinds.contains(&FsckIssueKind::StaleTmp), "{kinds:?}");
        assert_eq!(report.issues.len(), 3, "{:?}", report.issues);

        let report = fsck(&dir, true).unwrap();
        assert_eq!(report.repaired(), 3, "{:?}", report.issues);
        assert_eq!(stdfs::read_to_string(&s1_manifest).unwrap(), pristine);
        assert!(fsck(&dir, false).unwrap().clean());
        // The repaired store still opens with every entry intact.
        let reopened = Store::open(&dir).unwrap();
        assert_eq!(reopened.len(), 3);
        let _ = stdfs::remove_dir_all(&dir);
    }

    #[test]
    fn reports_serialize() {
        let dir = seeded_store("json");
        stdfs::write(dir.join("manifest.tmp"), "half").unwrap();
        let report = fsck(&dir, false).unwrap();
        let json = report.to_json();
        assert!(json.contains("\"kind\":\"stale-tmp\""), "{json}");
        assert!(json.contains("\"clean\":false"), "{json}");
        let parsed = jtelemetry::schema::parse_json(&json).unwrap();
        assert!(matches!(
            parsed.get("issues"),
            Some(jtelemetry::schema::Json::Arr(_))
        ));
        let text = report.render_text();
        assert!(text.contains("stale-tmp"), "{text}");
        let _ = stdfs::remove_dir_all(&dir);
    }
}
