//! Value-level operator semantics, shared by the interpreter and the JIT's
//! constant folder.
//!
//! Keeping a single implementation guarantees the optimizer folds constants
//! with exactly the semantics the interpreter executes — a divergence here
//! would be a genuine miscompilation, not a modelling artifact.

use crate::code::{ArithOp, CmpOp};
use crate::error::ExecError;
use crate::value::Value;

/// Applies a binary arithmetic operator with Java numeric semantics:
/// 32-bit wrapping for `int`, 64-bit for `long`, promotion when either
/// operand is `long`, masked shift counts, and `&`/`|`/`^` on booleans.
///
/// # Errors
///
/// [`ExecError::DivisionByZero`] on zero division/remainder and
/// [`ExecError::TypeMismatch`] for operand kinds outside the table.
#[inline]
pub fn arith(op: ArithOp, a: Value, b: Value) -> Result<Value, ExecError> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => arith_i32(op, x, y),
        (Value::Long(x), Value::Long(y)) => arith_i64(op, x, y),
        (Value::Long(x), Value::Int(y)) => arith_i64(op, x, y as i64),
        (Value::Int(x), Value::Long(y)) => arith_i64(op, x as i64, y),
        (Value::Bool(x), Value::Bool(y)) => match op {
            ArithOp::And => Ok(Value::Bool(x & y)),
            ArithOp::Or => Ok(Value::Bool(x | y)),
            ArithOp::Xor => Ok(Value::Bool(x ^ y)),
            _ => Err(ExecError::TypeMismatch("arithmetic on booleans")),
        },
        _ => Err(ExecError::TypeMismatch("arithmetic operand kinds")),
    }
}

#[inline]
fn arith_i32(op: ArithOp, x: i32, y: i32) -> Result<Value, ExecError> {
    let v = match op {
        ArithOp::Add => x.wrapping_add(y),
        ArithOp::Sub => x.wrapping_sub(y),
        ArithOp::Mul => x.wrapping_mul(y),
        ArithOp::Div => {
            if y == 0 {
                return Err(ExecError::DivisionByZero);
            }
            x.wrapping_div(y)
        }
        ArithOp::Rem => {
            if y == 0 {
                return Err(ExecError::DivisionByZero);
            }
            x.wrapping_rem(y)
        }
        ArithOp::And => x & y,
        ArithOp::Or => x | y,
        ArithOp::Xor => x ^ y,
        ArithOp::Shl => x.wrapping_shl((y & 31) as u32),
        ArithOp::Shr => x.wrapping_shr((y & 31) as u32),
    };
    Ok(Value::Int(v))
}

#[inline]
fn arith_i64(op: ArithOp, x: i64, y: i64) -> Result<Value, ExecError> {
    let v = match op {
        ArithOp::Add => x.wrapping_add(y),
        ArithOp::Sub => x.wrapping_sub(y),
        ArithOp::Mul => x.wrapping_mul(y),
        ArithOp::Div => {
            if y == 0 {
                return Err(ExecError::DivisionByZero);
            }
            x.wrapping_div(y)
        }
        ArithOp::Rem => {
            if y == 0 {
                return Err(ExecError::DivisionByZero);
            }
            x.wrapping_rem(y)
        }
        ArithOp::And => x & y,
        ArithOp::Or => x | y,
        ArithOp::Xor => x ^ y,
        ArithOp::Shl => x.wrapping_shl((y & 63) as u32),
        ArithOp::Shr => x.wrapping_shr((y & 63) as u32),
    };
    Ok(Value::Long(v))
}

/// Applies a comparison operator. Numeric operands compare after promotion
/// to 64 bits; `==`/`!=` additionally compare booleans, boxed integers (by
/// value) and references (by identity).
///
/// # Errors
///
/// [`ExecError::TypeMismatch`] for incomparable kinds.
#[inline]
pub fn compare(op: CmpOp, a: Value, b: Value) -> Result<Value, ExecError> {
    let numeric = |v: Value| -> Option<i64> {
        match v {
            Value::Int(x) => Some(x as i64),
            Value::Long(x) => Some(x),
            _ => None,
        }
    };
    if let (Some(x), Some(y)) = (numeric(a), numeric(b)) {
        let r = match op {
            CmpOp::Lt => x < y,
            CmpOp::Le => x <= y,
            CmpOp::Gt => x > y,
            CmpOp::Ge => x >= y,
            CmpOp::Eq => x == y,
            CmpOp::Ne => x != y,
        };
        return Ok(Value::Bool(r));
    }
    let eq = match (a, b) {
        (Value::Bool(x), Value::Bool(y)) => x == y,
        (Value::Boxed(x), Value::Boxed(y)) => x == y,
        (Value::Ref(x), Value::Ref(y)) => x == y,
        (Value::Null, Value::Null) => true,
        (Value::Null, _) | (_, Value::Null) => false,
        _ => return Err(ExecError::TypeMismatch("comparison operand kinds")),
    };
    match op {
        CmpOp::Eq => Ok(Value::Bool(eq)),
        CmpOp::Ne => Ok(Value::Bool(!eq)),
        _ => Err(ExecError::TypeMismatch("ordering on non-numeric values")),
    }
}

/// Arithmetic negation.
///
/// # Errors
///
/// [`ExecError::TypeMismatch`] for non-numeric operands.
#[inline]
pub fn negate(v: Value) -> Result<Value, ExecError> {
    match v {
        Value::Int(x) => Ok(Value::Int(x.wrapping_neg())),
        Value::Long(x) => Ok(Value::Long(x.wrapping_neg())),
        _ => Err(ExecError::TypeMismatch("negation operand kind")),
    }
}

/// Boolean negation.
///
/// # Errors
///
/// [`ExecError::TypeMismatch`] for non-boolean operands.
#[inline]
pub fn boolean_not(v: Value) -> Result<Value, ExecError> {
    match v {
        Value::Bool(b) => Ok(Value::Bool(!b)),
        _ => Err(ExecError::TypeMismatch("not operand kind")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_arithmetic_wraps() {
        assert_eq!(
            arith(ArithOp::Add, Value::Int(i32::MAX), Value::Int(1)).unwrap(),
            Value::Int(i32::MIN)
        );
        assert_eq!(
            arith(ArithOp::Mul, Value::Int(1 << 20), Value::Int(1 << 20)).unwrap(),
            Value::Int((1i64 << 40) as i32)
        );
    }

    #[test]
    fn long_promotion() {
        assert_eq!(
            arith(ArithOp::Add, Value::Int(1), Value::Long(2)).unwrap(),
            Value::Long(3)
        );
        assert_eq!(
            arith(ArithOp::Add, Value::Long(1), Value::Int(2)).unwrap(),
            Value::Long(3)
        );
    }

    #[test]
    fn division_by_zero_detected() {
        assert_eq!(
            arith(ArithOp::Div, Value::Int(1), Value::Int(0)),
            Err(ExecError::DivisionByZero)
        );
        assert_eq!(
            arith(ArithOp::Rem, Value::Long(1), Value::Long(0)),
            Err(ExecError::DivisionByZero)
        );
    }

    #[test]
    fn int_min_div_minus_one_wraps() {
        // Java: Integer.MIN_VALUE / -1 == Integer.MIN_VALUE.
        assert_eq!(
            arith(ArithOp::Div, Value::Int(i32::MIN), Value::Int(-1)).unwrap(),
            Value::Int(i32::MIN)
        );
    }

    #[test]
    fn shift_counts_are_masked() {
        assert_eq!(
            arith(ArithOp::Shl, Value::Int(1), Value::Int(33)).unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            arith(ArithOp::Shr, Value::Long(4), Value::Long(65)).unwrap(),
            Value::Long(2)
        );
    }

    #[test]
    fn boolean_bitops() {
        assert_eq!(
            arith(ArithOp::Xor, Value::Bool(true), Value::Bool(true)).unwrap(),
            Value::Bool(false)
        );
        assert!(arith(ArithOp::Add, Value::Bool(true), Value::Bool(true)).is_err());
    }

    #[test]
    fn numeric_comparisons_promote() {
        assert_eq!(
            compare(CmpOp::Lt, Value::Int(1), Value::Long(2)).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            compare(CmpOp::Eq, Value::Int(-1), Value::Long(-1)).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn reference_equality() {
        assert_eq!(
            compare(CmpOp::Eq, Value::Ref(1), Value::Ref(1)).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            compare(CmpOp::Ne, Value::Ref(1), Value::Null).unwrap(),
            Value::Bool(true)
        );
        assert!(compare(CmpOp::Lt, Value::Ref(1), Value::Ref(2)).is_err());
    }

    #[test]
    fn negate_and_not() {
        assert_eq!(negate(Value::Int(i32::MIN)).unwrap(), Value::Int(i32::MIN));
        assert_eq!(negate(Value::Long(-7)).unwrap(), Value::Long(7));
        assert!(negate(Value::Bool(true)).is_err());
        assert_eq!(boolean_not(Value::Bool(true)).unwrap(), Value::Bool(false));
        assert!(boolean_not(Value::Int(0)).is_err());
    }
}
