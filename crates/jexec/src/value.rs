//! Runtime values and the object heap.

use std::fmt;

/// Identifier of a heap object.
pub type ObjId = usize;

/// Identifier of a class in the [`crate::image::Image`].
pub type ClassId = usize;

/// A runtime value. MiniJava `int` has Java's 32-bit wrapping semantics;
/// `long` is 64-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Value {
    /// 32-bit integer.
    Int(i32),
    /// 64-bit integer.
    Long(i64),
    /// Boolean.
    Bool(bool),
    /// Boxed integer (`java.lang.Integer`); boxing identity is not modelled.
    Boxed(i32),
    /// Heap reference.
    Ref(ObjId),
    /// Null reference.
    Null,
}

impl Value {
    /// Default value for a type: 0 / false / null.
    pub fn default_of(ty: &mjava::Type) -> Value {
        match ty {
            mjava::Type::Int => Value::Int(0),
            mjava::Type::Long => Value::Long(0),
            mjava::Type::Bool => Value::Bool(false),
            mjava::Type::Integer | mjava::Type::Ref(_) | mjava::Type::Void => Value::Null,
        }
    }

    /// One-word tag for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Long(_) => "long",
            Value::Bool(_) => "boolean",
            Value::Boxed(_) => "Integer",
            Value::Ref(_) => "object",
            Value::Null => "null",
        }
    }

    /// True if the value is a reference (object, boxed, or null).
    pub fn is_reference(&self) -> bool {
        matches!(self, Value::Ref(_) | Value::Boxed(_) | Value::Null)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Long(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Boxed(v) => write!(f, "{v}"),
            // Identity hashes are intentionally not printed: scalar
            // replacement may legally change allocation order, which must
            // not look like a miscompilation to the differential oracle.
            Value::Ref(_) => write!(f, "<object>"),
            Value::Null => write!(f, "null"),
        }
    }
}

/// A heap object: its class, named fields, and a monitor.
///
/// Execution is single-threaded (the paper's generated tests are too), so
/// the monitor tracks only re-entrancy depth; unbalanced enter/exit —
/// e.g. produced by a broken lock optimization — is still detectable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Object {
    /// The object's class.
    pub class: ClassId,
    /// Field values, indexed by the class's field layout.
    pub fields: Vec<Value>,
    /// Monitor re-entrancy depth.
    pub monitor_depth: u32,
}

/// The object heap. Object ids are allocation-ordered and never reused.
#[derive(Debug, Clone, Default)]
pub struct Heap {
    objects: Vec<Object>,
    /// Total allocations performed (== `objects.len()`, kept for clarity).
    allocated: u64,
}

impl Heap {
    /// Creates an empty heap.
    pub fn new() -> Heap {
        Heap::default()
    }

    /// Allocates an object of `class` with `n_fields` default-initialized
    /// fields, returning its id.
    pub fn alloc(&mut self, class: ClassId, field_defaults: Vec<Value>) -> ObjId {
        let id = self.objects.len();
        self.objects.push(Object {
            class,
            fields: field_defaults,
            monitor_depth: 0,
        });
        self.allocated += 1;
        id
    }

    /// Accesses an object.
    pub fn get(&self, id: ObjId) -> Option<&Object> {
        self.objects.get(id)
    }

    /// Accesses an object mutably.
    pub fn get_mut(&mut self, id: ObjId) -> Option<&mut Object> {
        self.objects.get_mut(id)
    }

    /// Number of live objects (nothing is ever collected; the simulated GC
    /// in `jvmsim` works from allocation statistics).
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True if no object has been allocated.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Total allocations performed.
    pub fn allocated(&self) -> u64 {
        self.allocated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_java() {
        assert_eq!(Value::default_of(&mjava::Type::Int), Value::Int(0));
        assert_eq!(Value::default_of(&mjava::Type::Long), Value::Long(0));
        assert_eq!(Value::default_of(&mjava::Type::Bool), Value::Bool(false));
        assert_eq!(Value::default_of(&mjava::Type::Integer), Value::Null);
        assert_eq!(
            Value::default_of(&mjava::Type::Ref("T".into())),
            Value::Null
        );
    }

    #[test]
    fn display_hides_object_identity() {
        assert_eq!(Value::Ref(3).to_string(), "<object>");
        assert_eq!(Value::Ref(7).to_string(), "<object>");
        assert_eq!(Value::Int(-5).to_string(), "-5");
        assert_eq!(Value::Boxed(9).to_string(), "9");
        assert_eq!(Value::Null.to_string(), "null");
    }

    #[test]
    fn heap_allocates_sequential_ids() {
        let mut heap = Heap::new();
        let a = heap.alloc(0, vec![Value::Int(0)]);
        let b = heap.alloc(1, vec![]);
        assert_eq!((a, b), (0, 1));
        assert_eq!(heap.len(), 2);
        assert_eq!(heap.allocated(), 2);
        assert_eq!(heap.get(a).unwrap().class, 0);
        assert!(heap.get(99).is_none());
    }

    #[test]
    fn monitor_depth_tracks() {
        let mut heap = Heap::new();
        let a = heap.alloc(0, vec![]);
        heap.get_mut(a).unwrap().monitor_depth += 2;
        assert_eq!(heap.get(a).unwrap().monitor_depth, 2);
    }
}
