//! # jexec — the MiniJava execution substrate
//!
//! This crate is the reproduction's analogue of the JVM's loading,
//! verification and interpreter tiers:
//!
//! * [`Image`] — the resolved, executable form of an [`mjava::Program`]
//!   (class loading + verification);
//! * [`code`] — a stack-machine bytecode, plus [`compile_method_ast`] which
//!   lowers method ASTs to it (used both at load time and by the JIT tier
//!   after optimization);
//! * [`run`] — the profiling interpreter, whose per-method invocation and
//!   back-edge counters drive tiered compilation in `jvmsim`;
//! * [`ops`] — shared operator semantics so the optimizer's constant folder
//!   can never diverge from the interpreter.
//!
//! # Examples
//!
//! ```
//! let program = mjava::parse(r#"
//!     class T {
//!         static void main() {
//!             int s = 0;
//!             for (int i = 0; i < 10; i++) { s = s + i; }
//!             System.out.println(s);
//!         }
//!     }
//! "#).unwrap();
//! let image = jexec::Image::build(&program)?;
//! let outcome = jexec::run(&image, &jexec::ExecConfig::default());
//! assert_eq!(outcome.output, vec!["45"]);
//! assert!(outcome.is_clean());
//! # Ok::<(), jexec::BuildError>(())
//! ```

pub mod code;
pub mod compile;
pub mod error;
pub mod image;
pub mod interp;
pub mod ops;
pub mod value;

pub use code::{ArithOp, CmpOp, Code, Instr, MethodId};
pub use compile::compile_method_ast;
pub use error::{BuildError, ExecError};
pub use image::{ClassImage, FieldLayout, Image, MethodImage};
pub use interp::{run, run_program, ExecConfig, ExecStats, Outcome, Profile};
pub use value::{ClassId, Heap, ObjId, Object, Value};
