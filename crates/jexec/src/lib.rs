//! # jexec — the MiniJava execution substrate
//!
//! This crate is the reproduction's analogue of the JVM's loading,
//! verification and interpreter tiers:
//!
//! * [`Image`] — the resolved, executable form of an [`mjava::Program`]
//!   (class loading + verification);
//! * [`code`] — a stack-machine bytecode, plus [`compile_method_ast`] which
//!   lowers method ASTs to it (used both at load time and by the JIT tier
//!   after optimization);
//! * [`run`] — the profiling interpreter, whose per-method invocation and
//!   back-edge counters drive tiered compilation in `jvmsim`;
//! * [`ops`] — shared operator semantics so the optimizer's constant folder
//!   can never diverge from the interpreter.
//!
//! # Examples
//!
//! ```
//! let program = mjava::parse(r#"
//!     class T {
//!         static void main() {
//!             int s = 0;
//!             for (int i = 0; i < 10; i++) { s = s + i; }
//!             System.out.println(s);
//!         }
//!     }
//! "#).unwrap();
//! let image = jexec::Image::build(&program)?;
//! let outcome = jexec::run(&image, &jexec::ExecConfig::default());
//! assert_eq!(outcome.output, vec!["45"]);
//! assert!(outcome.is_clean());
//! # Ok::<(), jexec::BuildError>(())
//! ```

pub mod code;
pub mod compile;
pub mod error;
pub mod image;
pub mod interp;
pub mod ops;
mod slot;
pub mod threaded;
pub mod value;

pub use code::{ArithOp, CmpOp, Code, Instr, MethodId};
pub use compile::compile_method_ast;
pub use error::{BuildError, ExecError};
pub use image::{code_fingerprint, ClassImage, FieldLayout, Image, MethodImage};
pub use interp::{
    default_exec_mode, run_program, set_default_exec_mode, ExecConfig, ExecMode, ExecStats,
    Outcome, Profile,
};
pub use value::{ClassId, Heap, ObjId, Object, Value};

/// Executes `image` from its `main` method on the substrate selected by
/// `config.mode`. Both substrates are bit-for-bit equivalent (enforced by
/// `tests/exec_equivalence.rs`); [`ExecMode::Threaded`] is the fast path.
pub fn run(image: &Image, config: &ExecConfig) -> Outcome {
    match config.mode {
        ExecMode::Interp => interp::run(image, config),
        ExecMode::Threaded => threaded::run(image, config),
    }
}
