//! The interpreter tier: executes an [`Image`] with profiling.
//!
//! The machine is iterative (explicit frame stack), so deeply recursive
//! mutants hit the configured [`ExecError::StackOverflow`] limit instead of
//! exhausting the host thread's stack.
//!
//! Profiling data (per-method invocation and loop back-edge counters) is
//! what the tiered driver in `jvmsim` uses to decide which methods are hot
//! enough to JIT-compile, mirroring HotSpot's interpreter counters.

use crate::code::{Instr, MethodId};
use crate::error::ExecError;
use crate::image::Image;
use crate::ops;
use crate::value::{Heap, Value};
use std::sync::atomic::{AtomicU8, Ordering};

/// Which execution substrate runs an [`Image`].
///
/// Both substrates are observably identical — same outputs, errors, step
/// counts, fuel accounting, cancellation latency, and profile attribution —
/// so the mode is a pure performance knob and, like worker counts, is never
/// journaled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// The classic [`Instr`]-matching interpreter in this module.
    Interp,
    /// The pre-resolved threaded substrate in [`crate::threaded`], backed
    /// by the process-wide code cache.
    Threaded,
}

/// Process-wide default for [`ExecConfig::default`]'s `mode` field:
/// 0 = interp, 1 = threaded. Set once at CLI startup by `--exec-mode`.
static DEFAULT_MODE: AtomicU8 = AtomicU8::new(1);

/// Sets the process-wide default execution mode (`--exec-mode`).
pub fn set_default_exec_mode(mode: ExecMode) {
    DEFAULT_MODE.store(
        match mode {
            ExecMode::Interp => 0,
            ExecMode::Threaded => 1,
        },
        Ordering::Relaxed,
    );
}

/// The process-wide default execution mode.
pub fn default_exec_mode() -> ExecMode {
    match DEFAULT_MODE.load(Ordering::Relaxed) {
        0 => ExecMode::Interp,
        _ => ExecMode::Threaded,
    }
}

/// Execution limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Maximum number of executed instructions before
    /// [`ExecError::OutOfFuel`].
    pub fuel: u64,
    /// Maximum call depth before [`ExecError::StackOverflow`].
    pub max_call_depth: usize,
    /// Which substrate executes the image (see [`ExecMode`]).
    pub mode: ExecMode,
}

impl Default for ExecConfig {
    fn default() -> ExecConfig {
        ExecConfig {
            fuel: 20_000_000,
            max_call_depth: 512,
            mode: default_exec_mode(),
        }
    }
}

/// Counters describing what an execution did — the raw material for the
/// simulated JVM's runtime/GC coverage model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Instructions executed.
    pub steps: u64,
    /// Objects allocated (class lock objects excluded).
    pub allocations: u64,
    /// Monitor enter operations.
    pub monitor_enters: u64,
    /// Monitor exit operations.
    pub monitor_exits: u64,
    /// Reflective invocations.
    pub reflective_calls: u64,
    /// Boxing operations.
    pub boxes: u64,
    /// Unboxing operations.
    pub unboxes: u64,
    /// Method invocations (all kinds).
    pub calls: u64,
    /// Lines printed.
    pub prints: u64,
    /// Deepest call stack observed.
    pub max_depth: usize,
}

/// Per-method hotness counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Profile {
    /// Invocations per [`MethodId`].
    pub invocations: Vec<u64>,
    /// Loop back-edges taken per [`MethodId`].
    pub backedges: Vec<u64>,
}

impl Profile {
    /// Methods whose invocation count or back-edge count reaches the given
    /// thresholds — the JIT compilation candidates.
    pub fn hot_methods(&self, invocation_threshold: u64, backedge_threshold: u64) -> Vec<MethodId> {
        (0..self.invocations.len())
            .filter(|&m| {
                self.invocations[m] >= invocation_threshold
                    || self.backedges[m] >= backedge_threshold
            })
            .collect()
    }
}

/// Number of distinct opcodes ([`Instr`] discriminants) — the size of the
/// profiler's fixed accumulation arrays.
pub(crate) const OPCODE_COUNT: usize = 30;

/// Stable display name for each opcode index (see [`opcode_index`]).
pub(crate) const OPCODE_NAMES: [&str; OPCODE_COUNT] = [
    "ConstI",
    "ConstL",
    "ConstB",
    "ConstNull",
    "ClassObj",
    "Load",
    "Store",
    "GetField",
    "PutField",
    "GetStatic",
    "PutStatic",
    "Arith",
    "Cmp",
    "Neg",
    "Not",
    "Jump",
    "JumpIfFalse",
    "Invoke",
    "InvokeVirtual",
    "InvokeReflect",
    "New",
    "BoxInt",
    "UnboxInt",
    "MonitorEnter",
    "MonitorExit",
    "Print",
    "Pop",
    "Dup",
    "ReturnV",
    "Return",
];

/// Dense index of an instruction's opcode, for array-indexed profiling.
pub(crate) fn opcode_index(instr: &Instr) -> usize {
    match instr {
        Instr::ConstI(_) => 0,
        Instr::ConstL(_) => 1,
        Instr::ConstB(_) => 2,
        Instr::ConstNull => 3,
        Instr::ClassObj(_) => 4,
        Instr::Load(_) => 5,
        Instr::Store(_) => 6,
        Instr::GetField(_) => 7,
        Instr::PutField(_) => 8,
        Instr::GetStatic(..) => 9,
        Instr::PutStatic(..) => 10,
        Instr::Arith(_) => 11,
        Instr::Cmp(_) => 12,
        Instr::Neg => 13,
        Instr::Not => 14,
        Instr::Jump(_) => 15,
        Instr::JumpIfFalse(_) => 16,
        Instr::Invoke { .. } => 17,
        Instr::InvokeVirtual { .. } => 18,
        Instr::InvokeReflect { .. } => 19,
        Instr::New(_) => 20,
        Instr::BoxInt => 21,
        Instr::UnboxInt => 22,
        Instr::MonitorEnter => 23,
        Instr::MonitorExit => 24,
        Instr::Print => 25,
        Instr::Pop => 26,
        Instr::Dup => 27,
        Instr::ReturnV => 28,
        Instr::Return => 29,
    }
}

/// Sampling opcode profiler, active only under `mopfuzzer --profile`.
///
/// Hits are counted on every instruction (one array increment); wall time
/// is attributed by sampling — every 64th instruction reads the session
/// clock once and charges the inter-sample delta to the opcode executing
/// at the sample point. That keeps dispatch overhead at ~1/64th of a
/// clock read, and under a manual clock the deltas are all zero, so the
/// per-opcode hit counts stay bit-identical across worker counts.
pub(crate) struct OpcodeProfiler {
    hits: [u64; OPCODE_COUNT],
    nanos: [u64; OPCODE_COUNT],
    last_sample: u64,
}

pub(crate) const SAMPLE_MASK: u64 = 63;

impl OpcodeProfiler {
    pub(crate) fn new() -> OpcodeProfiler {
        OpcodeProfiler {
            hits: [0; OPCODE_COUNT],
            nanos: [0; OPCODE_COUNT],
            last_sample: jtelemetry::now_nanos(),
        }
    }

    #[inline]
    pub(crate) fn step(&mut self, steps: u64, opcode: usize) {
        self.hits[opcode] += 1;
        if steps & SAMPLE_MASK == 0 {
            let now = jtelemetry::now_nanos();
            self.nanos[opcode] += now.saturating_sub(self.last_sample);
            self.last_sample = now;
        }
    }

    pub(crate) fn flush(&self) {
        for (i, &name) in OPCODE_NAMES.iter().enumerate() {
            if self.hits[i] > 0 {
                jtelemetry::profile_opcode(name, self.hits[i], self.nanos[i]);
            }
        }
    }
}

/// The result of executing a program image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// Lines produced by `System.out.println`.
    pub output: Vec<String>,
    /// The terminating error, if any. `None` is a clean exit.
    pub error: Option<ExecError>,
    /// Execution counters.
    pub stats: ExecStats,
    /// Hotness profile.
    pub profile: Profile,
}

impl Outcome {
    /// The externally observable behaviour: printed lines, plus the Java
    /// exception banner for program-level errors. This is what the
    /// differential oracle compares across JVMs.
    pub fn observable(&self) -> Vec<String> {
        let mut out = self.output.clone();
        if let Some(e) = &self.error {
            if e.is_program_level() {
                out.push(format!("Exception in thread \"main\" {}", e.java_name()));
            }
        }
        out
    }

    /// True when execution neither erred nor timed out.
    pub fn is_clean(&self) -> bool {
        self.error.is_none()
    }
}

/// Executes `image` from its `main` method on the interpreter substrate.
///
/// This is the reference implementation of execution semantics; the
/// threaded substrate ([`crate::threaded::run`]) must match it bit for bit.
/// `config.mode` is ignored here — use [`crate::run`] to dispatch on it.
///
/// # Examples
///
/// ```
/// let program = mjava::parse(
///     "class T { static void main() { System.out.println(6 * 7); } }",
/// ).unwrap();
/// let image = jexec::Image::build(&program)?;
/// let outcome = jexec::run(&image, &jexec::ExecConfig::default());
/// assert_eq!(outcome.output, vec!["42"]);
/// # Ok::<(), jexec::BuildError>(())
/// ```
pub fn run(image: &Image, config: &ExecConfig) -> Outcome {
    let _trace = jtelemetry::trace_span("interp_run", Vec::new);
    let mut machine = Machine {
        image,
        config,
        heap: Heap::new(),
        statics: image.static_defaults(),
        fuel: config.fuel,
        stats: ExecStats::default(),
        profile: Profile {
            invocations: vec![0; image.methods.len()],
            backedges: vec![0; image.methods.len()],
        },
        output: Vec::new(),
        profiler: jtelemetry::profiling().then(OpcodeProfiler::new),
    };
    // Class lock objects occupy ids 0..n_classes, so `ClassObj(c)` is
    // `Ref(c)`.
    for cid in 0..image.classes.len() {
        machine.heap.alloc(cid, Vec::new());
    }
    let result = machine.run_from(image.main());
    let mut error = result.err();
    // A clean exit must leave every monitor released; a leaked monitor is
    // the classic symptom of a broken lock optimization.
    if error.is_none() {
        for id in 0..machine.heap.len() {
            if machine.heap.get(id).map_or(0, |o| o.monitor_depth) != 0 {
                error = Some(ExecError::IllegalMonitorState);
                break;
            }
        }
    }
    jtelemetry::count(jtelemetry::Counter::InterpRuns, 1);
    jtelemetry::count(jtelemetry::Counter::InterpSteps, machine.stats.steps);
    if let Some(profiler) = &machine.profiler {
        profiler.flush();
    }
    Outcome {
        output: machine.output,
        error,
        stats: machine.stats,
        profile: machine.profile,
    }
}

/// Builds and runs a program in one step, dispatching on `config.mode`.
///
/// # Errors
///
/// Returns [`crate::BuildError`] if the program does not resolve.
pub fn run_program(
    program: &mjava::Program,
    config: &ExecConfig,
) -> Result<Outcome, crate::error::BuildError> {
    let image = Image::build(program)?;
    Ok(crate::run(&image, config))
}

struct Frame {
    mid: MethodId,
    locals: Vec<Value>,
    stack: Vec<Value>,
    pc: usize,
}

/// What the inner dispatch loop asks the outer loop to do.
enum Transfer {
    /// Push a new frame for this call.
    Call {
        mid: MethodId,
        recv: Option<Value>,
        args: Vec<Value>,
    },
    /// Pop the current frame, handing this value to the caller.
    Return(Value),
}

struct Machine<'i> {
    image: &'i Image,
    config: &'i ExecConfig,
    heap: Heap,
    statics: Vec<Vec<Value>>,
    fuel: u64,
    stats: ExecStats,
    profile: Profile,
    output: Vec<String>,
    profiler: Option<OpcodeProfiler>,
}

impl<'i> Machine<'i> {
    fn run_from(&mut self, main: MethodId) -> Result<(), ExecError> {
        let mut frames = Vec::with_capacity(16);
        frames.push(self.new_frame(main, None, Vec::new())?);
        loop {
            let frame = frames.last_mut().expect("at least one frame");
            let transfer = self.dispatch(frame)?;
            match transfer {
                Transfer::Call { mid, recv, args } => {
                    if frames.len() >= self.config.max_call_depth {
                        return Err(ExecError::StackOverflow);
                    }
                    frames.push(self.new_frame(mid, recv, args)?);
                    self.stats.max_depth = self.stats.max_depth.max(frames.len());
                }
                Transfer::Return(v) => {
                    frames.pop();
                    match frames.last_mut() {
                        Some(caller) => caller.stack.push(v),
                        None => return Ok(()),
                    }
                }
            }
        }
    }

    fn new_frame(
        &mut self,
        mid: MethodId,
        recv: Option<Value>,
        args: Vec<Value>,
    ) -> Result<Frame, ExecError> {
        self.profile.invocations[mid] += 1;
        self.stats.calls += 1;
        let method = &self.image.methods[mid];
        let mut locals = vec![Value::Null; method.code.n_locals as usize];
        let mut slot = 0usize;
        if let Some(r) = recv {
            if locals.is_empty() {
                return Err(ExecError::VmCorrupt("no slot for receiver"));
            }
            locals[0] = r;
            slot = 1;
        }
        for a in args {
            if slot >= locals.len() {
                return Err(ExecError::VmCorrupt("no slot for argument"));
            }
            locals[slot] = a;
            slot += 1;
        }
        Ok(Frame {
            mid,
            locals,
            // Exact preallocation from compile-time metadata — the hot loop
            // never reallocates an operand stack for compiler-emitted code.
            stack: Vec::with_capacity(method.code.max_stack as usize),
            pc: 0,
        })
    }

    /// Executes instructions in `frame` until a call or return transfers
    /// control.
    fn dispatch(&mut self, frame: &mut Frame) -> Result<Transfer, ExecError> {
        let code = &self.image.methods[frame.mid].code;
        macro_rules! pop {
            () => {
                frame
                    .stack
                    .pop()
                    .ok_or(ExecError::VmCorrupt("operand stack underflow"))?
            };
        }
        loop {
            if self.fuel == 0 {
                return Err(ExecError::OutOfFuel);
            }
            self.fuel -= 1;
            self.stats.steps += 1;
            // Cooperative cancellation: a campaign watchdog can cancel the
            // current round's token; polling every 4096 steps bounds the
            // latency of a wall-clock timeout without measurable dispatch
            // cost. Panics with the timeout marker when cancelled.
            if self.stats.steps & 0xFFF == 0 {
                jtelemetry::cancel::check("interpreter");
            }
            let instr = code
                .instrs
                .get(frame.pc)
                .ok_or(ExecError::VmCorrupt("pc out of range"))?;
            if let Some(profiler) = &mut self.profiler {
                profiler.step(self.stats.steps, opcode_index(instr));
            }
            match instr {
                Instr::ConstI(v) => frame.stack.push(Value::Int(*v)),
                Instr::ConstL(v) => frame.stack.push(Value::Long(*v)),
                Instr::ConstB(b) => frame.stack.push(Value::Bool(*b)),
                Instr::ConstNull => frame.stack.push(Value::Null),
                Instr::ClassObj(cid) => frame.stack.push(Value::Ref(*cid)),
                Instr::Load(s) => {
                    let v = *frame
                        .locals
                        .get(*s as usize)
                        .ok_or(ExecError::VmCorrupt("local slot out of range"))?;
                    frame.stack.push(v);
                }
                Instr::Store(s) => {
                    let v = pop!();
                    let slot = frame
                        .locals
                        .get_mut(*s as usize)
                        .ok_or(ExecError::VmCorrupt("local slot out of range"))?;
                    *slot = v;
                }
                Instr::GetField(name) => {
                    let obj = pop!();
                    let v = self.get_field(obj, name)?;
                    frame.stack.push(v);
                }
                Instr::PutField(name) => {
                    let value = pop!();
                    let obj = pop!();
                    self.put_field(obj, name, value)?;
                }
                Instr::GetStatic(cid, off) => {
                    let v = *self
                        .statics
                        .get(*cid)
                        .and_then(|s| s.get(*off as usize))
                        .ok_or(ExecError::VmCorrupt("static slot out of range"))?;
                    frame.stack.push(v);
                }
                Instr::PutStatic(cid, off) => {
                    let v = pop!();
                    let slot = self
                        .statics
                        .get_mut(*cid)
                        .and_then(|s| s.get_mut(*off as usize))
                        .ok_or(ExecError::VmCorrupt("static slot out of range"))?;
                    *slot = v;
                }
                Instr::Arith(op) => {
                    let b = pop!();
                    let a = pop!();
                    frame.stack.push(ops::arith(*op, a, b)?);
                }
                Instr::Cmp(op) => {
                    let b = pop!();
                    let a = pop!();
                    frame.stack.push(ops::compare(*op, a, b)?);
                }
                Instr::Neg => {
                    let v = pop!();
                    frame.stack.push(ops::negate(v)?);
                }
                Instr::Not => {
                    let v = pop!();
                    frame.stack.push(ops::boolean_not(v)?);
                }
                Instr::Jump(target) => {
                    if *target <= frame.pc {
                        self.profile.backedges[frame.mid] += 1;
                    }
                    frame.pc = *target;
                    continue;
                }
                Instr::JumpIfFalse(target) => {
                    let v = pop!();
                    match v {
                        Value::Bool(false) => {
                            frame.pc = *target;
                            continue;
                        }
                        Value::Bool(true) => {}
                        _ => return Err(ExecError::TypeMismatch("branch on non-boolean")),
                    }
                }
                Instr::Invoke {
                    method,
                    argc,
                    has_recv,
                } => {
                    let call_args = Self::pop_args(&mut frame.stack, *argc)?;
                    let recv = if *has_recv {
                        Some(Self::require_recv(pop!())?)
                    } else {
                        None
                    };
                    let target = &self.image.methods[*method];
                    if target.params.len() != call_args.len() {
                        return Err(ExecError::NoSuchMethod {
                            class: self.image.classes[target.class].name.clone(),
                            method: target.name.clone(),
                        });
                    }
                    let recv = if target.is_static {
                        None
                    } else {
                        Some(recv.ok_or(ExecError::NullReference)?)
                    };
                    frame.pc += 1;
                    return Ok(Transfer::Call {
                        mid: *method,
                        recv,
                        args: call_args,
                    });
                }
                Instr::InvokeVirtual { method, argc } => {
                    let call_args = Self::pop_args(&mut frame.stack, *argc)?;
                    let recv = Self::require_recv(pop!())?;
                    let Value::Ref(oid) = recv else {
                        return Err(ExecError::TypeMismatch("virtual call on non-object"));
                    };
                    let class = self
                        .heap
                        .get(oid)
                        .ok_or(ExecError::VmCorrupt("dangling reference"))?
                        .class;
                    let mid = self.image.classes[class]
                        .method_index
                        .get(method)
                        .copied()
                        .ok_or_else(|| ExecError::NoSuchMethod {
                            class: self.image.classes[class].name.clone(),
                            method: method.clone(),
                        })?;
                    let target = &self.image.methods[mid];
                    if target.params.len() != call_args.len() {
                        return Err(ExecError::NoSuchMethod {
                            class: self.image.classes[class].name.clone(),
                            method: method.clone(),
                        });
                    }
                    let recv = if target.is_static { None } else { Some(recv) };
                    frame.pc += 1;
                    return Ok(Transfer::Call {
                        mid,
                        recv,
                        args: call_args,
                    });
                }
                Instr::InvokeReflect {
                    class,
                    method,
                    has_recv,
                    argc,
                } => {
                    self.stats.reflective_calls += 1;
                    let call_args = Self::pop_args(&mut frame.stack, *argc)?;
                    let recv = if *has_recv { Some(pop!()) } else { None };
                    let cid = self
                        .image
                        .class_id(class)
                        .ok_or_else(|| ExecError::NoSuchClass(class.clone()))?;
                    let mid = self.image.classes[cid]
                        .method_index
                        .get(method)
                        .copied()
                        .ok_or_else(|| ExecError::NoSuchMethod {
                            class: class.clone(),
                            method: method.clone(),
                        })?;
                    let target = &self.image.methods[mid];
                    if target.params.len() != call_args.len() {
                        return Err(ExecError::NoSuchMethod {
                            class: class.clone(),
                            method: method.clone(),
                        });
                    }
                    let recv = if target.is_static {
                        None
                    } else {
                        match recv {
                            Some(Value::Null) | None => return Err(ExecError::NullReference),
                            Some(v) => Some(Self::require_recv(v)?),
                        }
                    };
                    frame.pc += 1;
                    return Ok(Transfer::Call {
                        mid,
                        recv,
                        args: call_args,
                    });
                }
                Instr::New(cid) => {
                    self.stats.allocations += 1;
                    let defaults = self.image.classes[*cid].field_defaults();
                    let oid = self.heap.alloc(*cid, defaults);
                    frame.stack.push(Value::Ref(oid));
                }
                Instr::BoxInt => {
                    self.stats.boxes += 1;
                    match pop!() {
                        Value::Int(v) => frame.stack.push(Value::Boxed(v)),
                        _ => return Err(ExecError::TypeMismatch("boxing a non-int")),
                    }
                }
                Instr::UnboxInt => {
                    self.stats.unboxes += 1;
                    match pop!() {
                        Value::Boxed(v) => frame.stack.push(Value::Int(v)),
                        Value::Null => return Err(ExecError::NullReference),
                        _ => return Err(ExecError::TypeMismatch("unboxing a non-Integer")),
                    }
                }
                Instr::MonitorEnter => {
                    self.stats.monitor_enters += 1;
                    match pop!() {
                        Value::Ref(oid) => {
                            let obj = self
                                .heap
                                .get_mut(oid)
                                .ok_or(ExecError::VmCorrupt("dangling reference"))?;
                            obj.monitor_depth += 1;
                        }
                        Value::Null => return Err(ExecError::NullReference),
                        _ => return Err(ExecError::TypeMismatch("monitor on non-object")),
                    }
                }
                Instr::MonitorExit => {
                    self.stats.monitor_exits += 1;
                    match pop!() {
                        Value::Ref(oid) => {
                            let obj = self
                                .heap
                                .get_mut(oid)
                                .ok_or(ExecError::VmCorrupt("dangling reference"))?;
                            if obj.monitor_depth == 0 {
                                return Err(ExecError::IllegalMonitorState);
                            }
                            obj.monitor_depth -= 1;
                        }
                        Value::Null => return Err(ExecError::NullReference),
                        _ => return Err(ExecError::TypeMismatch("monitor on non-object")),
                    }
                }
                Instr::Print => {
                    self.stats.prints += 1;
                    let v = pop!();
                    self.output.push(v.to_string());
                }
                Instr::Pop => {
                    let _ = pop!();
                }
                Instr::Dup => {
                    let v = *frame
                        .stack
                        .last()
                        .ok_or(ExecError::VmCorrupt("operand stack underflow"))?;
                    frame.stack.push(v);
                }
                Instr::ReturnV => return Ok(Transfer::Return(pop!())),
                Instr::Return => return Ok(Transfer::Return(Value::Null)),
            }
            frame.pc += 1;
        }
    }

    fn pop_args(stack: &mut Vec<Value>, argc: u8) -> Result<Vec<Value>, ExecError> {
        let n = argc as usize;
        if stack.len() < n {
            return Err(ExecError::VmCorrupt("operand stack underflow"));
        }
        Ok(stack.split_off(stack.len() - n))
    }

    fn require_recv(v: Value) -> Result<Value, ExecError> {
        match v {
            Value::Null => Err(ExecError::NullReference),
            Value::Ref(_) => Ok(v),
            _ => Err(ExecError::TypeMismatch("receiver is not an object")),
        }
    }

    fn get_field(&self, obj: Value, name: &str) -> Result<Value, ExecError> {
        match obj {
            Value::Null => Err(ExecError::NullReference),
            Value::Ref(oid) => {
                let object = self
                    .heap
                    .get(oid)
                    .ok_or(ExecError::VmCorrupt("dangling reference"))?;
                let class = &self.image.classes[object.class];
                let off = class
                    .instance_offset(name)
                    .ok_or_else(|| ExecError::NoSuchField {
                        class: class.name.clone(),
                        field: name.to_string(),
                    })?;
                Ok(object.fields[off])
            }
            _ => Err(ExecError::TypeMismatch("field access on non-object")),
        }
    }

    fn put_field(&mut self, obj: Value, name: &str, value: Value) -> Result<(), ExecError> {
        match obj {
            Value::Null => Err(ExecError::NullReference),
            Value::Ref(oid) => {
                let class_id = self
                    .heap
                    .get(oid)
                    .ok_or(ExecError::VmCorrupt("dangling reference"))?
                    .class;
                let class = &self.image.classes[class_id];
                let off = class
                    .instance_offset(name)
                    .ok_or_else(|| ExecError::NoSuchField {
                        class: class.name.clone(),
                        field: name.to_string(),
                    })?;
                let object = self
                    .heap
                    .get_mut(oid)
                    .ok_or(ExecError::VmCorrupt("dangling reference"))?;
                object.fields[off] = value;
                Ok(())
            }
            _ => Err(ExecError::TypeMismatch("field access on non-object")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// This module tests the interpreter substrate specifically; the mode
    /// is pinned so the global default (threaded) cannot redirect `exec`.
    /// `crate::threaded` mirrors the behavioural tests, and
    /// `tests/exec_equivalence.rs` proves the two substrates identical.
    fn interp_config() -> ExecConfig {
        ExecConfig {
            mode: ExecMode::Interp,
            ..ExecConfig::default()
        }
    }

    fn exec(src: &str) -> Outcome {
        run_program(&mjava::parse(src).unwrap(), &interp_config()).unwrap()
    }

    #[test]
    fn prints_arithmetic() {
        let o = exec("class T { static void main() { System.out.println(2 + 3 * 4); } }");
        assert!(o.is_clean());
        assert_eq!(o.output, vec!["14"]);
    }

    #[test]
    fn loops_accumulate_and_profile_backedges() {
        let o = exec(
            r#"
            class T {
                static void main() {
                    int s = 0;
                    for (int i = 0; i < 100; i++) { s = s + i; }
                    System.out.println(s);
                }
            }
            "#,
        );
        assert_eq!(o.output, vec!["4950"]);
        assert!(o.profile.backedges[0] >= 99);
    }

    #[test]
    fn instance_fields_and_methods() {
        let o = exec(
            r#"
            class T {
                int f;
                int bump(int d) { f = f + d; return f; }
                static void main() {
                    T t = new T();
                    t.bump(5);
                    System.out.println(t.bump(7));
                }
            }
            "#,
        );
        assert_eq!(o.output, vec!["12"]);
        assert_eq!(o.stats.allocations, 1);
    }

    #[test]
    fn statics_persist_across_calls() {
        let o = exec(
            r#"
            class T {
                static int s = 10;
                static void inc() { s = s + 1; }
                static void main() { T.inc(); T.inc(); System.out.println(s); }
            }
            "#,
        );
        assert_eq!(o.output, vec!["12"]);
    }

    #[test]
    fn synchronized_blocks_balance() {
        let o = exec(
            r#"
            class T {
                static void main() {
                    synchronized (T.class) {
                        synchronized (T.class) {
                            System.out.println(1);
                        }
                    }
                }
            }
            "#,
        );
        assert!(o.is_clean(), "error: {:?}", o.error);
        assert_eq!(o.stats.monitor_enters, 2);
        assert_eq!(o.stats.monitor_exits, 2);
    }

    #[test]
    fn return_inside_synchronized_releases() {
        let o = exec(
            r#"
            class T {
                static int g() {
                    synchronized (T.class) { return 5; }
                }
                static void main() { System.out.println(T.g()); }
            }
            "#,
        );
        assert!(o.is_clean(), "error: {:?}", o.error);
        assert_eq!(o.output, vec!["5"]);
    }

    #[test]
    fn synchronized_method_runs() {
        let o = exec(
            r#"
            class T {
                int n;
                synchronized void inc() { n = n + 1; }
                static void main() {
                    T t = new T();
                    t.inc(); t.inc(); t.inc();
                    System.out.println(t.n);
                }
            }
            "#,
        );
        assert!(o.is_clean());
        assert_eq!(o.output, vec!["3"]);
    }

    #[test]
    fn reflection_invokes_instance_method() {
        let o = exec(
            r#"
            class T {
                int f;
                int get(int d) { return f + d; }
                static void main() {
                    T t = new T();
                    t.f = 40;
                    System.out.println(Class.forName("T").getDeclaredMethod("get").invoke(t, 2));
                }
            }
            "#,
        );
        assert!(o.is_clean(), "error: {:?}", o.error);
        assert_eq!(o.output, vec!["42"]);
        assert_eq!(o.stats.reflective_calls, 1);
    }

    #[test]
    fn reflection_missing_class_is_program_level() {
        let o = exec(
            r#"
            class T {
                static void main() {
                    System.out.println(Class.forName("Nope").getDeclaredMethod("g").invoke(null));
                }
            }
            "#,
        );
        assert_eq!(o.error, Some(ExecError::NoSuchClass("Nope".into())));
        assert!(o
            .observable()
            .iter()
            .any(|l| l.contains("ClassNotFoundException")));
    }

    #[test]
    fn reflection_static_with_null_receiver() {
        let o = exec(
            r#"
            class T {
                static int twice(int v) { return v * 2; }
                static void main() {
                    System.out.println(Class.forName("T").getDeclaredMethod("twice").invoke(null, 21));
                }
            }
            "#,
        );
        assert!(o.is_clean(), "error: {:?}", o.error);
        assert_eq!(o.output, vec!["42"]);
    }

    #[test]
    fn boxing_roundtrip() {
        let o = exec(
            r#"
            class T {
                static void main() {
                    Integer b = Integer.valueOf(20);
                    System.out.println(b.intValue() + 22);
                }
            }
            "#,
        );
        assert_eq!(o.output, vec!["42"]);
        assert_eq!(o.stats.boxes, 1);
        assert_eq!(o.stats.unboxes, 1);
    }

    #[test]
    fn division_by_zero_is_program_level() {
        let o = exec("class T { static void main() { System.out.println(1 / 0); } }");
        assert_eq!(o.error, Some(ExecError::DivisionByZero));
        let obs = o.observable();
        assert!(obs.last().unwrap().contains("ArithmeticException"));
    }

    #[test]
    fn null_field_access_is_npe() {
        let o =
            exec("class T { int f; static void main() { T t = null; System.out.println(t.f); } }");
        assert_eq!(o.error, Some(ExecError::NullReference));
    }

    #[test]
    fn infinite_loop_runs_out_of_fuel() {
        let program =
            mjava::parse("class T { static void main() { while (true) { int x = 1; } } }").unwrap();
        let o = run_program(
            &program,
            &ExecConfig {
                fuel: 10_000,
                ..interp_config()
            },
        )
        .unwrap();
        assert_eq!(o.error, Some(ExecError::OutOfFuel));
    }

    #[test]
    fn deep_recursion_overflows_gracefully() {
        let o = exec(
            r#"
            class T {
                static int down(int n) { return T.down(n + 1); }
                static void main() { System.out.println(T.down(0)); }
            }
            "#,
        );
        assert_eq!(o.error, Some(ExecError::StackOverflow));
        assert!(o.stats.max_depth <= interp_config().max_call_depth);
    }

    #[test]
    fn bounded_recursion_works() {
        let o = exec(
            r#"
            class T {
                static int fib(int n) {
                    if (n < 2) { return n; }
                    return T.fib(n - 1) + T.fib(n - 2);
                }
                static void main() { System.out.println(T.fib(15)); }
            }
            "#,
        );
        assert!(o.is_clean());
        assert_eq!(o.output, vec!["610"]);
    }

    #[test]
    fn hot_method_profile() {
        let o = exec(
            r#"
            class T {
                static int f(int i) { return i * 2; }
                static void main() {
                    int s = 0;
                    for (int i = 0; i < 500; i++) { s = s + T.f(i); }
                    System.out.println(s);
                }
            }
            "#,
        );
        let hot = o.profile.hot_methods(400, 400);
        // Both f (500 invocations) and main (499+ backedges) are hot.
        assert_eq!(hot.len(), 2);
    }

    #[test]
    fn int_overflow_wraps_like_java() {
        let o = exec("class T { static void main() { System.out.println(2147483647 + 1); } }");
        assert_eq!(o.output, vec!["-2147483648"]);
    }

    #[test]
    fn long_arithmetic() {
        let o = exec(
            "class T { static void main() { long x = 4000000000L; System.out.println(x + 1L); } }",
        );
        assert_eq!(o.output, vec!["4000000001"]);
    }

    #[test]
    fn while_with_mutation() {
        let o = exec(
            r#"
            class T {
                static void main() {
                    int i = 0;
                    int s = 0;
                    while (i < 10) { s = s + i; i = i + 1; }
                    System.out.println(s);
                }
            }
            "#,
        );
        assert_eq!(o.output, vec!["45"]);
    }

    #[test]
    fn hand_built_code_with_dup_pop_and_direct_invoke() {
        // Exercise instructions the AST compiler never emits (Dup, and
        // Invoke with an explicit receiver) by patching code in directly.
        use crate::code::{Code, Instr};
        let program = mjava::parse(
            r#"
            class T {
                int f;
                int get() { return f; }
                static void main() { }
            }
            "#,
        )
        .unwrap();
        let mut image = Image::build(&program).unwrap();
        let get = image.method_id("T", "get").unwrap();
        let main = image.main();
        // main: T t = new T(); t.f via Dup'd receiver; print get().
        let code = Code {
            instrs: vec![
                Instr::New(0),
                Instr::Dup,
                Instr::Dup,
                Instr::ConstI(41),
                Instr::PutField("f".into()),
                // Stack now: [t, t]; drop one, call get() on the other.
                Instr::Pop,
                Instr::Invoke {
                    method: get,
                    argc: 0,
                    has_recv: true,
                },
                Instr::ConstI(1),
                Instr::Arith(crate::code::ArithOp::Add),
                Instr::Print,
                Instr::Return,
            ],
            n_locals: 0,
            max_stack: 4,
        };
        image.install_code(main, code);
        let o = run(&image, &interp_config());
        assert!(o.is_clean(), "{:?}", o.error);
        assert_eq!(o.output, vec!["42"]);
    }

    #[test]
    fn corrupt_code_is_caught_not_undefined() {
        use crate::code::{Code, Instr};
        let program = mjava::parse("class T { static void main() { } }").unwrap();
        let mut image = Image::build(&program).unwrap();
        let main = image.main();
        // Pop from an empty stack must be a VmCorrupt error, not a panic.
        image.install_code(
            main,
            Code {
                instrs: vec![Instr::Pop, Instr::Return],
                n_locals: 0,
                max_stack: 0,
            },
        );
        let o = run(&image, &interp_config());
        assert_eq!(
            o.error,
            Some(ExecError::VmCorrupt("operand stack underflow"))
        );
    }

    #[test]
    fn profiler_attributes_every_instruction() {
        jtelemetry::install(jtelemetry::Session::from_spec(jtelemetry::SessionSpec {
            manual: true,
            trace: false,
            profile: true,
        }));
        let o = exec(
            r#"
            class T {
                static void main() {
                    int s = 0;
                    for (int i = 0; i < 50; i++) { s = s + i; }
                    System.out.println(s);
                }
            }
            "#,
        );
        assert!(o.is_clean());
        let snap = jtelemetry::take().unwrap().snapshot();
        let total: u64 = snap.opcodes.iter().map(|op| op.hits).sum();
        assert_eq!(total, o.stats.steps, "every step lands on one opcode");
        assert!(snap.opcodes.iter().any(|op| op.name == "Arith"));
        assert!(snap.opcodes.iter().any(|op| op.name == "JumpIfFalse"));
        assert!(
            snap.opcodes.iter().all(|op| op.nanos == 0),
            "manual clock must sample zero nanos"
        );
    }

    #[test]
    fn profiler_off_records_nothing() {
        jtelemetry::install(jtelemetry::Session::from_spec(jtelemetry::SessionSpec {
            manual: true,
            trace: false,
            profile: false,
        }));
        let o = exec("class T { static void main() { System.out.println(1); } }");
        assert!(o.is_clean());
        let snap = jtelemetry::take().unwrap().snapshot();
        assert!(snap.opcodes.is_empty());
    }

    #[test]
    fn all_builtin_seeds_execute_cleanly() {
        for seed in mjava::samples::all_seeds() {
            let o = run_program(&seed.program, &interp_config())
                .unwrap_or_else(|e| panic!("seed {} fails to build: {e}", seed.name));
            assert!(
                o.is_clean(),
                "seed {} errored: {:?} (output {:?})",
                seed.name,
                o.error,
                o.output
            );
            assert!(!o.output.is_empty(), "seed {} prints nothing", seed.name);
        }
    }
}
