//! AST-to-bytecode compiler.
//!
//! Used twice in the simulated JVM: once at class-load time for the
//! interpreter tier, and again by the JIT tier to lower an *optimized*
//! method AST back to executable code. Keeping one lowering path means any
//! semantic change observed after optimization is attributable to the
//! optimizer, exactly the property differential testing needs.

use crate::code::{ArithOp, CmpOp, Code, Instr};
use crate::error::BuildError;
use crate::image::Image;
use crate::value::ClassId;
use mjava::{BinOp, Block, CallTarget, Expr, LValue, Method, Stmt, UnOp};
use std::collections::HashMap;

/// Compiles a method AST against an image's resolved class skeletons.
///
/// `class` is the id of the class the method belongs to (it resolves bare
/// field references and `this`).
///
/// # Errors
///
/// Returns [`BuildError`] for unresolved names, unknown classes/members in
/// static references, `this` in static context, or arity mismatches on
/// statically resolved calls.
pub fn compile_method_ast(
    image: &Image,
    class: ClassId,
    method: &Method,
) -> Result<Code, BuildError> {
    let mut c = Compiler {
        image,
        class,
        method_name: method.name.clone(),
        is_static: method.is_static,
        scopes: vec![HashMap::new()],
        next_slot: 0,
        instrs: Vec::new(),
        active_monitors: Vec::new(),
    };
    if !method.is_static {
        c.next_slot = 1; // slot 0 = this
    }
    for p in &method.params {
        let slot = c.alloc_slot();
        c.scopes
            .last_mut()
            .expect("scope")
            .insert(p.name.clone(), slot);
    }
    // Synchronized methods lock `this` (instance) or the class object
    // (static) around the whole body.
    let method_lock = if method.is_sync {
        let slot = c.alloc_slot();
        if method.is_static {
            c.emit(Instr::ClassObj(class));
        } else {
            c.emit(Instr::Load(0));
        }
        c.emit(Instr::Store(slot));
        c.emit(Instr::Load(slot));
        c.emit(Instr::MonitorEnter);
        c.active_monitors.push(slot);
        Some(slot)
    } else {
        None
    };
    c.block(&method.body)?;
    if let Some(slot) = method_lock {
        c.emit(Instr::Load(slot));
        c.emit(Instr::MonitorExit);
        c.active_monitors.pop();
    }
    // Fall-through return (void methods and defensive default).
    c.emit(Instr::Return);
    jtelemetry::count(jtelemetry::Counter::MethodsLowered, 1);
    let max_stack = Code::compute_max_stack(&c.instrs);
    Ok(Code {
        instrs: c.instrs,
        n_locals: c.next_slot,
        max_stack,
    })
}

struct Compiler<'i> {
    image: &'i Image,
    class: ClassId,
    method_name: String,
    is_static: bool,
    scopes: Vec<HashMap<String, u16>>,
    next_slot: u16,
    instrs: Vec<Instr>,
    /// Slots holding the lock objects of currently open `synchronized`
    /// scopes; `return` must release them innermost-first.
    active_monitors: Vec<u16>,
}

impl<'i> Compiler<'i> {
    fn emit(&mut self, i: Instr) -> usize {
        self.instrs.push(i);
        self.instrs.len() - 1
    }

    fn here(&self) -> usize {
        self.instrs.len()
    }

    fn patch_jump(&mut self, at: usize, target: usize) {
        match &mut self.instrs[at] {
            Instr::Jump(t) | Instr::JumpIfFalse(t) => *t = target,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    fn alloc_slot(&mut self) -> u16 {
        let s = self.next_slot;
        self.next_slot += 1;
        s
    }

    fn lookup_local(&self, name: &str) -> Option<u16> {
        self.scopes
            .iter()
            .rev()
            .find_map(|scope| scope.get(name).copied())
    }

    fn unresolved(&self, name: &str) -> BuildError {
        BuildError::UnresolvedName {
            method: self.method_name.clone(),
            name: name.to_string(),
        }
    }

    fn block(&mut self, b: &Block) -> Result<(), BuildError> {
        self.scopes.push(HashMap::new());
        for stmt in &b.0 {
            self.stmt(stmt)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn stmt(&mut self, stmt: &Stmt) -> Result<(), BuildError> {
        match stmt {
            Stmt::Decl { name, ty, init } => {
                match init {
                    Some(e) => self.expr(e)?,
                    None => {
                        let default = crate::value::Value::default_of(ty);
                        self.emit_const(default);
                    }
                }
                let slot = self.alloc_slot();
                self.scopes
                    .last_mut()
                    .expect("scope")
                    .insert(name.clone(), slot);
                self.emit(Instr::Store(slot));
            }
            Stmt::Assign { target, value } => match target {
                LValue::Var(name) => {
                    if let Some(slot) = self.lookup_local(name) {
                        self.expr(value)?;
                        self.emit(Instr::Store(slot));
                    } else if !self.is_static
                        && self.image.classes[self.class]
                            .instance_offset(name)
                            .is_some()
                    {
                        self.emit(Instr::Load(0));
                        self.expr(value)?;
                        self.emit(Instr::PutField(name.clone()));
                    } else if let Some(off) = self.image.classes[self.class].static_offset(name) {
                        self.expr(value)?;
                        self.emit(Instr::PutStatic(self.class, off as u16));
                    } else {
                        return Err(self.unresolved(name));
                    }
                }
                LValue::Field(obj, name) => {
                    self.expr(obj)?;
                    self.expr(value)?;
                    self.emit(Instr::PutField(name.clone()));
                }
                LValue::StaticField(class, name) => {
                    let (cid, off) = self.resolve_static(class, name)?;
                    self.expr(value)?;
                    self.emit(Instr::PutStatic(cid, off));
                }
            },
            Stmt::Expr(e) => {
                self.expr(e)?;
                self.emit(Instr::Pop);
            }
            Stmt::If {
                cond,
                then_b,
                else_b,
            } => {
                self.expr(cond)?;
                let jf = self.emit(Instr::JumpIfFalse(0));
                self.block(then_b)?;
                match else_b {
                    Some(else_b) => {
                        let jend = self.emit(Instr::Jump(0));
                        let else_at = self.here();
                        self.patch_jump(jf, else_at);
                        self.block(else_b)?;
                        let end = self.here();
                        self.patch_jump(jend, end);
                    }
                    None => {
                        let end = self.here();
                        self.patch_jump(jf, end);
                    }
                }
            }
            Stmt::While { cond, body } => {
                let start = self.here();
                self.expr(cond)?;
                let jf = self.emit(Instr::JumpIfFalse(0));
                self.block(body)?;
                self.emit(Instr::Jump(start));
                let end = self.here();
                self.patch_jump(jf, end);
            }
            Stmt::For {
                init,
                cond,
                update,
                body,
            } => {
                // The header declaration scopes over the whole loop.
                self.scopes.push(HashMap::new());
                if let Some(i) = init {
                    self.stmt(i)?;
                }
                let start = self.here();
                self.expr(cond)?;
                let jf = self.emit(Instr::JumpIfFalse(0));
                self.block(body)?;
                if let Some(u) = update {
                    self.stmt(u)?;
                }
                self.emit(Instr::Jump(start));
                let end = self.here();
                self.patch_jump(jf, end);
                self.scopes.pop();
            }
            Stmt::Sync { lock, body } => {
                self.expr(lock)?;
                let slot = self.alloc_slot();
                self.emit(Instr::Store(slot));
                self.emit(Instr::Load(slot));
                self.emit(Instr::MonitorEnter);
                self.active_monitors.push(slot);
                self.block(body)?;
                self.active_monitors.pop();
                self.emit(Instr::Load(slot));
                self.emit(Instr::MonitorExit);
            }
            Stmt::Block(b) => self.block(b)?,
            Stmt::Return(value) => {
                match value {
                    Some(e) => {
                        self.expr(e)?;
                        self.release_monitors_for_return();
                        self.emit(Instr::ReturnV);
                    }
                    None => {
                        self.release_monitors_for_return();
                        self.emit(Instr::Return);
                    }
                };
            }
            Stmt::Print(e) => {
                self.expr(e)?;
                self.emit(Instr::Print);
            }
        }
        Ok(())
    }

    /// Emits monitor exits for every open `synchronized` scope — a `return`
    /// leaves them all.
    fn release_monitors_for_return(&mut self) {
        for slot in self.active_monitors.clone().into_iter().rev() {
            self.emit(Instr::Load(slot));
            self.emit(Instr::MonitorExit);
        }
    }

    fn emit_const(&mut self, v: crate::value::Value) {
        use crate::value::Value;
        match v {
            Value::Int(i) => self.emit(Instr::ConstI(i)),
            Value::Long(l) => self.emit(Instr::ConstL(l)),
            Value::Bool(b) => self.emit(Instr::ConstB(b)),
            Value::Boxed(i) => {
                self.emit(Instr::ConstI(i));
                self.emit(Instr::BoxInt)
            }
            Value::Null | Value::Ref(_) => self.emit(Instr::ConstNull),
        };
    }

    fn resolve_static(&self, class: &str, member: &str) -> Result<(ClassId, u16), BuildError> {
        let cid = self
            .image
            .class_id(class)
            .ok_or_else(|| BuildError::UnknownClass(class.to_string()))?;
        let off = self.image.classes[cid]
            .static_offset(member)
            .ok_or_else(|| BuildError::UnknownStatic {
                class: class.to_string(),
                member: member.to_string(),
            })?;
        Ok((cid, off as u16))
    }

    /// Compiles an expression; exactly one value is left on the stack
    /// (calls to void methods push `null`).
    fn expr(&mut self, e: &Expr) -> Result<(), BuildError> {
        match e {
            Expr::Int(v) => {
                self.emit(Instr::ConstI(*v as i32));
            }
            Expr::Long(v) => {
                self.emit(Instr::ConstL(*v));
            }
            Expr::Bool(b) => {
                self.emit(Instr::ConstB(*b));
            }
            Expr::Null => {
                self.emit(Instr::ConstNull);
            }
            Expr::This => {
                if self.is_static {
                    return Err(BuildError::ThisInStatic {
                        method: self.method_name.clone(),
                    });
                }
                self.emit(Instr::Load(0));
            }
            Expr::Var(name) => {
                if let Some(slot) = self.lookup_local(name) {
                    self.emit(Instr::Load(slot));
                } else if !self.is_static
                    && self.image.classes[self.class]
                        .instance_offset(name)
                        .is_some()
                {
                    self.emit(Instr::Load(0));
                    self.emit(Instr::GetField(name.clone()));
                } else if let Some(off) = self.image.classes[self.class].static_offset(name) {
                    self.emit(Instr::GetStatic(self.class, off as u16));
                } else {
                    return Err(self.unresolved(name));
                }
            }
            Expr::Unary(op, inner) => {
                self.expr(inner)?;
                match op {
                    UnOp::Neg => self.emit(Instr::Neg),
                    UnOp::Not => self.emit(Instr::Not),
                };
            }
            Expr::Binary(op, lhs, rhs) => {
                self.expr(lhs)?;
                self.expr(rhs)?;
                let instr = match op {
                    BinOp::Add => Instr::Arith(ArithOp::Add),
                    BinOp::Sub => Instr::Arith(ArithOp::Sub),
                    BinOp::Mul => Instr::Arith(ArithOp::Mul),
                    BinOp::Div => Instr::Arith(ArithOp::Div),
                    BinOp::Rem => Instr::Arith(ArithOp::Rem),
                    BinOp::BitAnd => Instr::Arith(ArithOp::And),
                    BinOp::BitOr => Instr::Arith(ArithOp::Or),
                    BinOp::BitXor => Instr::Arith(ArithOp::Xor),
                    BinOp::Shl => Instr::Arith(ArithOp::Shl),
                    BinOp::Shr => Instr::Arith(ArithOp::Shr),
                    BinOp::Lt => Instr::Cmp(CmpOp::Lt),
                    BinOp::Le => Instr::Cmp(CmpOp::Le),
                    BinOp::Gt => Instr::Cmp(CmpOp::Gt),
                    BinOp::Ge => Instr::Cmp(CmpOp::Ge),
                    BinOp::Eq => Instr::Cmp(CmpOp::Eq),
                    BinOp::Ne => Instr::Cmp(CmpOp::Ne),
                };
                self.emit(instr);
            }
            Expr::Call(call) => match &call.target {
                CallTarget::Static(class) => {
                    let mid = self.image.method_id(class, &call.method).ok_or_else(|| {
                        BuildError::UnknownStatic {
                            class: class.clone(),
                            member: call.method.clone(),
                        }
                    })?;
                    if self.image.methods[mid].params.len() != call.args.len() {
                        return Err(BuildError::ArityMismatch {
                            class: class.clone(),
                            method: call.method.clone(),
                        });
                    }
                    for a in &call.args {
                        self.expr(a)?;
                    }
                    self.emit(Instr::Invoke {
                        method: mid,
                        argc: call.args.len() as u8,
                        has_recv: false,
                    });
                }
                CallTarget::Instance(recv) => {
                    self.expr(recv)?;
                    for a in &call.args {
                        self.expr(a)?;
                    }
                    self.emit(Instr::InvokeVirtual {
                        method: call.method.clone(),
                        argc: call.args.len() as u8,
                    });
                }
            },
            Expr::Reflect(r) => {
                let has_recv = r.receiver.is_some();
                if let Some(recv) = &r.receiver {
                    self.expr(recv)?;
                }
                for a in &r.args {
                    self.expr(a)?;
                }
                self.emit(Instr::InvokeReflect {
                    class: r.class.clone(),
                    method: r.method.clone(),
                    has_recv,
                    argc: r.args.len() as u8,
                });
            }
            Expr::Field(obj, name) => {
                self.expr(obj)?;
                self.emit(Instr::GetField(name.clone()));
            }
            Expr::StaticField(class, name) => {
                let (cid, off) = self.resolve_static(class, name)?;
                self.emit(Instr::GetStatic(cid, off));
            }
            Expr::New(class) => {
                let cid = self
                    .image
                    .class_id(class)
                    .ok_or_else(|| BuildError::UnknownClass(class.clone()))?;
                self.emit(Instr::New(cid));
            }
            Expr::BoxInt(inner) => {
                self.expr(inner)?;
                self.emit(Instr::BoxInt);
            }
            Expr::UnboxInt(inner) => {
                self.expr(inner)?;
                self.emit(Instr::UnboxInt);
            }
            Expr::ClassLit(class) => {
                let cid = self
                    .image
                    .class_id(class)
                    .ok_or_else(|| BuildError::UnknownClass(class.clone()))?;
                self.emit(Instr::ClassObj(cid));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image_of(src: &str) -> Image {
        Image::build(&mjava::parse(src).unwrap()).unwrap()
    }

    #[test]
    fn compiles_loop_with_backward_jump() {
        let image = image_of(
            "class T { static void main() { for (int i = 0; i < 3; i++) { System.out.println(i); } } }",
        );
        let code = &image.methods[image.main()].code;
        let has_backjump = code
            .instrs
            .iter()
            .enumerate()
            .any(|(pc, i)| matches!(i, Instr::Jump(t) if *t <= pc));
        assert!(
            has_backjump,
            "loop must compile to a backward jump:\n{}",
            code.listing()
        );
    }

    #[test]
    fn bare_field_resolves_to_this_getfield() {
        let image = image_of("class T { int f; void g() { f = f + 1; } static void main() { } }");
        let g = image.method_id("T", "g").unwrap();
        let code = &image.methods[g].code;
        assert!(code
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::GetField(n) if n == "f")));
        assert!(code
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::PutField(n) if n == "f")));
    }

    #[test]
    fn bare_static_field_resolves_to_getstatic() {
        let image = image_of("class T { static int s; static void main() { s = s + 1; } }");
        let code = &image.methods[image.main()].code;
        assert!(code
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::GetStatic(0, 0))));
        assert!(code
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::PutStatic(0, 0))));
    }

    #[test]
    fn sync_block_is_balanced() {
        let image =
            image_of("class T { static void main() { synchronized (T.class) { int x = 1; } } }");
        let code = &image.methods[image.main()].code;
        let enters = code
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::MonitorEnter))
            .count();
        let exits = code
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::MonitorExit))
            .count();
        assert_eq!((enters, exits), (1, 1));
    }

    #[test]
    fn return_inside_sync_releases_monitors() {
        let image = image_of(
            r#"
            class T {
                static int g() {
                    synchronized (T.class) {
                        synchronized (T.class) {
                            return 1;
                        }
                    }
                }
                static void main() { }
            }
            "#,
        );
        let g = image.method_id("T", "g").unwrap();
        let code = &image.methods[g].code;
        // Two enters; the return path releases both, and the normal path
        // also emits its two exits (unreachable after return, but present).
        let enters = code
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::MonitorEnter))
            .count();
        let exits = code
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::MonitorExit))
            .count();
        assert_eq!(enters, 2);
        assert_eq!(exits, 4);
    }

    #[test]
    fn synchronized_method_wraps_body() {
        let image = image_of(
            "class T { synchronized void g() { } static synchronized void h() { } static void main() { } }",
        );
        for name in ["g", "h"] {
            let mid = image.method_id("T", name).unwrap();
            let code = &image.methods[mid].code;
            assert!(
                code.instrs.iter().any(|i| matches!(i, Instr::MonitorEnter)),
                "{name}"
            );
            assert!(
                code.instrs.iter().any(|i| matches!(i, Instr::MonitorExit)),
                "{name}"
            );
        }
    }

    #[test]
    fn static_call_resolves_to_invoke() {
        let image = image_of(
            "class T { static int f(int a, int b) { return a + b; } static void main() { int x = T.f(1, 2); } }",
        );
        let code = &image.methods[image.main()].code;
        assert!(code.instrs.iter().any(|i| matches!(
            i,
            Instr::Invoke {
                argc: 2,
                has_recv: false,
                ..
            }
        )));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let p = mjava::parse(
            "class T { static int f(int a) { return a; } static void main() { int x = T.f(1, 2); } }",
        )
        .unwrap();
        assert!(matches!(
            Image::build(&p),
            Err(BuildError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn this_in_static_rejected() {
        let p = mjava::parse("class T { int f; static void main() { int x = this.f; } }").unwrap();
        assert!(matches!(
            Image::build(&p),
            Err(BuildError::ThisInStatic { .. })
        ));
    }

    #[test]
    fn unresolved_name_rejected() {
        let p = mjava::parse("class T { static void main() { x = 1; } }").unwrap();
        assert!(matches!(
            Image::build(&p),
            Err(BuildError::UnresolvedName { .. })
        ));
    }

    #[test]
    fn shadowing_in_nested_blocks() {
        let image = image_of(
            r#"
            class T {
                static void main() {
                    int x = 1;
                    { int x2 = 2; System.out.println(x2); }
                    System.out.println(x);
                }
            }
            "#,
        );
        // Just checking it compiles and uses distinct slots.
        let code = &image.methods[image.main()].code;
        let stores: Vec<u16> = code
            .instrs
            .iter()
            .filter_map(|i| match i {
                Instr::Store(s) => Some(*s),
                _ => None,
            })
            .collect();
        assert_eq!(stores.len(), 2);
        assert_ne!(stores[0], stores[1]);
    }

    #[test]
    fn compiled_methods_carry_stack_metadata() {
        let image = image_of(
            "class T { static int f(int a, int b) { return a + b * (a - b); } static void main() { System.out.println(T.f(3, 4)); } }",
        );
        for mid in 0..image.methods.len() {
            let code = &image.methods[mid].code;
            assert_eq!(
                code.max_stack,
                Code::compute_max_stack(&code.instrs),
                "method {mid} metadata out of date"
            );
            assert!(code.max_stack > 0, "method {mid} pushes at least one value");
        }
    }
}
