//! The threaded-code execution substrate: the fast twin of [`crate::interp`].
//!
//! [`lower`] translates a method's [`Code`] once into a flat array of
//! pre-decoded, pre-resolved [`Op`]s:
//!
//! * local and static slots are bounds-checked at lowering time (invalid
//!   slots become [`Op::Corrupt`] ops that raise the interpreter's exact
//!   error at the exact step it would occur);
//! * constants are pre-packed as untagged [`Slot`]s (see [`crate::slot`]);
//! * branch targets are resolved to op indices, with out-of-range targets
//!   redirected to a trailing "pc out of range" sentinel;
//! * field names, virtual-call names, and reflective class/method names are
//!   resolved into per-class offset and dispatch tables, replacing the
//!   interpreter's per-access linear scans and hash lookups;
//! * statically resolved calls that can only fail (arity mismatch, missing
//!   receiver) carry their prebuilt error;
//! * a forward type-recovery pass ([`int_facts`]) proves which
//!   `Arith`/`Cmp` sites always see two `int` operands; those lower to
//!   the tag-free [`Op::ArithII`]/[`Op::CmpII`] fast ops.
//!
//! Values do not live in boxed [`Value`] vectors here: every operand is an
//! untagged 64-bit payload plus a one-byte tag in a single contiguous
//! register-file arena per execution (`RegFile`). A call frame is a
//! `(base, floor, sp)` window into that arena — the receiver and arguments
//! a caller pushes already sit where the callee's locals begin, so frame
//! entry copies nothing in the common case and frame save/restore is three
//! integers instead of two `Vec`s.
//!
//! On top of lowering, [`fuse`] builds superinstructions, and a final pass
//! inlines tiny leaf callees at their statically resolved `Invoke` sites
//! ([`Op::InlineCall`]): the callee's straight-line micro-ops execute in
//! the caller's dispatch, with no frame push and no per-call code lookup.
//! The process-wide code cache key covers the code fingerprints of every
//! statically invoked callee, so a JIT [`Image::install_code`] on a leaf
//! invalidates exactly the cached bodies that inlined it.
//!
//! Lowered bodies are shared through a process-wide lock-once code cache
//! keyed by `(image shape fingerprint, method+callee code fingerprints)`,
//! so every `WorkPool` worker and every differential-pool JVM reuses
//! lowering work.
//!
//! The dispatch loop preserves the interpreter's observable behaviour bit
//! for bit: fuel accounting, step counts, the every-4096-steps cancellation
//! poll, `--profile` opcode attribution, error values and their timing, and
//! all [`ExecStats`]/[`Profile`] counters. `tests/exec_equivalence.rs`
//! enforces this over the golden corpus and a property sweep.
//!
//! One deliberate divergence: hand-built code holding an out-of-range
//! [`MethodId`]/[`ClassId`] makes the interpreter panic on a slice index at
//! the faulting instruction; here the same instruction executes an
//! [`Op::HostPanic`] with a clearer message. Both substrates panic at the
//! same execution point, so crash containment behaves identically. The AST
//! compiler never emits such code.

use crate::code::{ArithOp, CmpOp, Code, Instr, MethodId};
use crate::error::ExecError;
use crate::image::{Fnv, Image};
use crate::interp::{opcode_index, ExecConfig, ExecStats, OpcodeProfiler, Outcome, Profile};
use crate::slot::{self, Slot, Tag, NULL};
use crate::value::{ClassId, Heap, Value};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Opcode-array value for the pc sentinel: the interpreter errors on fetch,
/// before profiler attribution, so the sentinel must not be profiled.
const NO_OPCODE: u8 = u8::MAX;

/// Missing entry in a per-class field-offset table.
const NO_FIELD: u32 = u32::MAX;

/// A pre-decoded, pre-resolved instruction. Operand-free by design: cold
/// resolution data lives in side tables indexed by small ids, keeping the
/// hot array compact.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Push a pre-packed constant (covers ConstI/ConstL/ConstB/ConstNull
    /// and ClassObj; the original opcode survives in the opcode array).
    ConstVal(Slot),
    /// Load a local slot, validated at lowering time.
    Load(u16),
    /// Store into a local slot, validated at lowering time.
    Store(u16),
    /// Field read via the indexed per-class offset table.
    GetField(u16),
    /// Field write via the indexed per-class offset table.
    PutField(u16),
    /// Read a flattened static slot, validated at lowering time.
    GetStatic(u32),
    /// Write a flattened static slot, validated at lowering time.
    PutStatic(u32),
    Arith(ArithOp),
    /// [`Op::Arith`] whose operands are statically proven `int` by
    /// [`int_facts`]: raw-payload `i32` arithmetic, no tag dispatch.
    ArithII(ArithOp),
    Cmp(CmpOp),
    /// [`Op::Cmp`] with statically proven `int` operands.
    CmpII(CmpOp),
    Neg,
    Not,
    /// Unconditional jump; `backedge` is precomputed (`target <= pc`).
    Jump {
        target: u32,
        backedge: bool,
    },
    JumpIfFalse(u32),
    /// Statically resolved call via the calls table.
    Invoke(u16),
    /// Name-dispatched call via the vcalls table.
    InvokeVirtual(u16),
    /// Reflective call via the rcalls table.
    InvokeReflect(u16),
    New(u32),
    BoxInt,
    UnboxInt,
    MonitorEnter,
    MonitorExit,
    Print,
    Pop,
    Dup,
    ReturnV,
    Return,
    /// An op the interpreter rejects at runtime; raises the matching
    /// `VmCorrupt` after the usual fuel/step/cancel accounting.
    Corrupt(CorruptKind),
    /// An op the interpreter panics on (out-of-range id in hand-built
    /// code); see the module docs.
    HostPanic(BadRef),

    // ---- superinstructions (fused bodies only, see [`fuse`]) ----
    //
    // Each replaces a straight-line run of the plain ops above with one
    // dispatch. Execution stays micro-step exact: the dispatch prologue
    // accounts for the first constituent instruction and every further
    // one "ticks" fuel/steps/cancellation individually, so fuel
    // exhaustion, error timing, and watchdog polls are bit-identical to
    // the unfused body. Profiled runs never execute these (the profiler
    // attributes per original opcode, so they run the unfused twin).
    /// Two pushes: `Load`/`ConstVal`/`GetStatic` × 2.
    Push2 {
        a: Src,
        b: Src,
    },
    /// Fetch then store: e.g. `Load; Store`, `ConstVal; PutStatic`.
    Move {
        src: Src,
        dst: Sink,
    },
    /// `Load(slot); GetField(fi)` — field read off a local object.
    GetFieldL {
        slot: u16,
        fi: u16,
    },
    /// Binary arithmetic with fused operand fetches and an optional
    /// fused store: `[fetch a] [fetch b] Arith [Store/PutStatic]`.
    /// `Src::Stack` operands pop (a fused `Arith; Store` tail has both
    /// on the stack); `b` is only `Stack` when `a` is. `ii` carries the
    /// constituent's proven-int flag.
    Bin {
        op: ArithOp,
        ii: bool,
        a: Src,
        b: Src,
        sink: Sink,
    },
    /// `[fetch a] [fetch b] Cmp; JumpIfFalse(target)` — the classic
    /// loop-header shape, one dispatch per iteration test.
    CmpBr {
        op: CmpOp,
        ii: bool,
        a: Src,
        b: Src,
        target: u32,
    },
    /// A backward `Jump` fused with the [`Op::CmpBr`] loop header it
    /// lands on: the whole loop latch + next iteration test in one
    /// dispatch. `exit` is the `CmpBr` exit target (where a false
    /// condition leaves the loop); `fall` is the fused index right after
    /// the `CmpBr` (where a true condition re-enters the body). The
    /// original `CmpBr` stays in place for loop entry.
    JumpCmpBr {
        op: CmpOp,
        ii: bool,
        a: Src,
        b: Src,
        exit: u32,
        fall: u32,
    },
    /// A whole two-operator expression statement in one dispatch:
    /// `(a op1 b) op2 c` when `right` is false (micro order
    /// `a b op1 c op2 [sink]`), `a op2 (b op1 c)` when true (micro order
    /// `a b c op1 op2 [sink]`). All three operands are real fetches —
    /// the fuser never builds a `Chain3` from stack operands.
    Chain3 {
        a: Src,
        b: Src,
        c: Src,
        op1: ArithOp,
        op2: ArithOp,
        ii1: bool,
        ii2: bool,
        right: bool,
        sink: Sink,
    },
    /// The canonical counted-loop latch, one dispatch per iteration:
    /// `local dst = local islot iop const` (the induction step), the
    /// backward jump, and the [`Op::CmpBr`] header test it lands on.
    /// Built by replacing the `Bin` of a `Bin` + backward-`Jump` pair
    /// (both stay in place — a branch into either still behaves
    /// identically).
    IncLatch {
        iop: ArithOp,
        iop_ii: bool,
        islot: u16,
        ic: Slot,
        dst: u16,
        cop: CmpOp,
        cop_ii: bool,
        ca: Src,
        cb: Src,
        exit: u32,
        fall: u32,
    },
    /// A statically resolved call to a tiny straight-line leaf method,
    /// executed inline via the inlines table: no frame push, no code
    /// lookup, one dispatch for the call plus per-micro ticks for the
    /// callee's instructions — step accounting identical to the real
    /// call. Fused bodies only; the unfused twin keeps the plain
    /// [`Op::Invoke`] so profiled runs attribute callee opcodes normally.
    InlineCall(u16),
}

/// Fused operand source. Slots are pre-validated (the fuser only folds
/// ops that already passed lowering-time bounds checks).
#[derive(Debug, Clone, Copy)]
enum Src {
    /// Pop from the operand stack (the value a preceding unfused op left).
    Stack,
    Local(u16),
    Static(u32),
    Const(Slot),
}

/// Fused result destination.
#[derive(Debug, Clone, Copy)]
enum Sink {
    Push,
    Local(u16),
    Static(u32),
}

#[derive(Debug, Clone, Copy)]
enum CorruptKind {
    LocalSlot,
    StaticSlot,
    Pc,
}

impl CorruptKind {
    fn msg(self) -> &'static str {
        match self {
            CorruptKind::LocalSlot => "local slot out of range",
            CorruptKind::StaticSlot => "static slot out of range",
            CorruptKind::Pc => "pc out of range",
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum BadRef {
    Method,
    Class,
}

/// One micro-instruction of an inlined leaf body: the strict straight-line
/// subset of [`Op`] a leaf may contain. Executes against the caller's
/// register file with a private `(cbase, cfloor, csp)` window.
#[derive(Debug, Clone, Copy)]
enum LeafOp {
    Const(Slot),
    Load(u16),
    Store(u16),
    Arith(ArithOp),
    Cmp(CmpOp),
    Neg,
    Not,
    Dup,
    Pop,
    ReturnV,
    Return,
}

/// An inline-expanded leaf callee: the frame geometry [`enter!`] would
/// have set up, plus the translated body.
#[derive(Debug)]
struct InlineInfo {
    /// The callee, for `Profile::invocations` attribution.
    mid: u32,
    argc: u8,
    /// Whether the call pops (and the callee binds) a receiver. Only
    /// `pops_recv == needs_recv` call sites inline, so one flag covers
    /// both.
    recv: bool,
    n_locals: u16,
    max_stack: u16,
    body: Box<[LeafOp]>,
}

/// Per-class instance-field offsets for one field name.
#[derive(Debug)]
struct FieldTable {
    name: Box<str>,
    /// Offset per [`ClassId`], [`NO_FIELD`] when the class lacks the field.
    offsets: Box<[u32]>,
}

/// What a call does once its arguments and receiver are off the stack.
#[derive(Debug, Clone)]
enum CallAction {
    Goto { mid: u32, needs_recv: bool },
    Fail(ExecError),
}

/// A statically resolved (or statically failing) `Invoke`.
#[derive(Debug)]
struct CallInfo {
    argc: u8,
    pops_recv: bool,
    action: CallAction,
}

/// Pre-resolved virtual dispatch target for one class.
#[derive(Debug, Clone, Copy)]
enum VTarget {
    Goto { mid: u32, needs_recv: bool },
    NoMethod,
    Arity,
}

/// A name-dispatched `InvokeVirtual`: one resolution per possible runtime
/// class, replacing the interpreter's per-call hash lookup.
#[derive(Debug)]
struct VCall {
    name: Box<str>,
    argc: u8,
    targets: Box<[VTarget]>,
}

/// A fully pre-resolved `InvokeReflect` (class and method names are
/// compile-time constants, so resolution never depends on runtime values).
#[derive(Debug)]
struct RCall {
    argc: u8,
    pops_recv: bool,
    action: CallAction,
}

/// Resolution side tables, shared between a method's fused and unfused
/// bodies (the fused body references the same call/field data).
#[derive(Debug)]
struct SideTables {
    fields: Box<[FieldTable]>,
    calls: Box<[CallInfo]>,
    vcalls: Box<[VCall]>,
    rcalls: Box<[RCall]>,
}

/// One method's lowered body plus its resolution side tables.
#[derive(Debug)]
pub struct ThreadedCode {
    /// The ops array, ending in the pc-out-of-range sentinel. Unfused
    /// bodies hold `instrs.len() + 1` ops; fused bodies fewer.
    ops: Box<[Op]>,
    /// Original opcode index per op, for `--profile` attribution.
    /// Empty on fused bodies — profiled runs execute the unfused twin.
    opcodes: Box<[u8]>,
    n_locals: u16,
    max_stack: u16,
    tables: Arc<SideTables>,
    /// Inline-expanded leaf callees referenced by [`Op::InlineCall`].
    /// Empty on unfused bodies.
    inlines: Box<[InlineInfo]>,
    /// The unfused twin of a fused body (`None` when self is unfused).
    /// Profiled runs execute it so per-opcode attribution, which samples
    /// individual steps, sees every original instruction.
    unfused: Option<Arc<ThreadedCode>>,
}

/// Statistics of the process-wide code cache (for benches and debugging;
/// deterministic telemetry counters are derived elsewhere, see
/// [`take_lookup_log`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries currently resident.
    pub entries: usize,
    /// Process-lifetime lookup hits.
    pub hits: u64,
    /// Process-lifetime lookup misses (lowerings performed).
    pub misses: u64,
}

/// Entry cap; on overflow the cache is flushed wholesale. Presence in the
/// cache never affects results or telemetry, so eviction is unobservable.
const CACHE_CAP: usize = 16_384;

/// `(image shape fingerprint, combined code fingerprint)` -> lowered body.
/// The combined fingerprint covers the method's own code plus the code of
/// every statically invoked callee — leaf inlining copies callee bodies
/// into the fused code, so `install_code` on a callee must invalidate its
/// inliners too.
type CodeMap = HashMap<(u64, u64), Arc<ThreadedCode>>;

static CODE_CACHE: OnceLock<RwLock<CodeMap>> = OnceLock::new();
static CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static CACHE_MISSES: AtomicU64 = AtomicU64::new(0);
/// Process-lifetime count of leaf calls executed inline (benches only;
/// the deterministic per-run counter is [`take_inline_count`]).
static INLINE_TOTAL: AtomicU64 = AtomicU64::new(0);

fn cache() -> &'static RwLock<CodeMap> {
    CODE_CACHE.get_or_init(|| RwLock::new(HashMap::new()))
}

fn cache_read() -> RwLockReadGuard<'static, CodeMap> {
    cache().read().unwrap_or_else(|e| e.into_inner())
}

fn cache_write() -> RwLockWriteGuard<'static, CodeMap> {
    cache().write().unwrap_or_else(|e| e.into_inner())
}

thread_local! {
    /// Cache keys looked up by this thread, in execution order. Drained by
    /// `jvmsim::run_jvm` into `JvmRun::cache_log`, where the oracle counts
    /// hits/misses in canonical merge order — making the telemetry counters
    /// a pure function of the executions, independent of live cache state
    /// and worker scheduling.
    static LOOKUP_LOG: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// Leaf calls executed inline by this thread since the last drain.
    /// Like the lookup log, a pure function of the executions performed.
    static INLINE_LOG: Cell<u64> = const { Cell::new(0) };
}

/// Drains this thread's code-cache lookup log.
pub fn take_lookup_log() -> Vec<u64> {
    LOOKUP_LOG.with(|l| std::mem::take(&mut *l.borrow_mut()))
}

/// Drains this thread's count of leaf calls executed inline.
pub fn take_inline_count() -> u64 {
    INLINE_LOG.with(|c| c.replace(0))
}

/// Process-lifetime count of leaf calls executed inline.
pub fn inline_total() -> u64 {
    INLINE_TOTAL.load(Ordering::Relaxed)
}

/// Renders a method's fused op array, one op per line (development
/// tooling for inspecting what the fuser built; not a stable format).
#[doc(hidden)]
pub fn dump_fused(image: &Image, mid: MethodId) -> Vec<String> {
    let tc = fuse(image, Arc::new(lower(image, mid)));
    tc.ops.iter().map(|op| format!("{op:?}")).collect()
}

/// Empties the cache and zeroes its statistics (campaign start / benches).
pub fn cache_reset() {
    cache_write().clear();
    CACHE_HITS.store(0, Ordering::Relaxed);
    CACHE_MISSES.store(0, Ordering::Relaxed);
    INLINE_TOTAL.store(0, Ordering::Relaxed);
}

/// Live statistics of the process-wide cache.
pub fn cache_stats() -> CacheStats {
    CacheStats {
        entries: cache_read().len(),
        hits: CACHE_HITS.load(Ordering::Relaxed),
        misses: CACHE_MISSES.load(Ordering::Relaxed),
    }
}

/// Fetches (or lowers and publishes) the threaded body of one method.
fn lookup_or_lower(image: &Image, mid: MethodId) -> Arc<ThreadedCode> {
    let m = &image.methods[mid];
    let mut h = Fnv::new();
    h.u64(m.code_fp);
    // Leaf inlining copies statically invoked callee bodies into this
    // method's fused code, so the key covers their fingerprints too:
    // `install_code` on a callee changes every inliner's key.
    for instr in &m.code.instrs {
        if let Instr::Invoke { method, .. } = instr {
            if let Some(t) = image.methods.get(*method) {
                h.u64(t.code_fp);
            }
        }
    }
    let key = (image.shape_fp(), h.0);
    let mut lh = Fnv::new();
    lh.u64(key.0);
    lh.u64(key.1);
    LOOKUP_LOG.with(|l| l.borrow_mut().push(lh.0));
    if let Some(tc) = cache_read().get(&key) {
        CACHE_HITS.fetch_add(1, Ordering::Relaxed);
        return Arc::clone(tc);
    }
    CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
    // Lower outside the lock: lowering is a pure function of the key, so
    // racing writers insert interchangeable values and `or_insert` keeps
    // the first. The cache stores the fused body; its unfused twin rides
    // along inside for profiled runs.
    let tc = Arc::new(fuse(image, Arc::new(lower(image, mid))));
    let mut map = cache_write();
    if map.len() >= CACHE_CAP {
        map.clear();
    }
    Arc::clone(map.entry(key).or_insert(tc))
}

/// Abstract operand kind for the lowering-time type recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum At {
    Int,
    Long,
    Bool,
    Any,
}

impl At {
    fn join(self, other: At) -> At {
        if self == other {
            self
        } else {
            At::Any
        }
    }
}

/// Abstract machine state at one pc: the kind of every stack and local
/// slot. Stack depth is exact — merges with mismatched depths abandon the
/// analysis (see [`int_facts`]).
#[derive(Clone, PartialEq)]
struct AbsState {
    stack: Vec<At>,
    locals: Vec<At>,
}

/// Budget multiplier: the fixpoint visits at most `64 * n` worklist items
/// before giving up (the lattice is tiny, so real code converges far
/// earlier; this is a backstop for adversarial hand-built code).
const FACTS_BUDGET_PER_INSTR: usize = 64;

/// Instruction-count ceiling for running the recovery at all.
const FACTS_MAX_INSTRS: usize = 2048;

/// Lowering-time recovery of statically-`int` operand pairs: a forward
/// abstract interpretation over `Code` tracking, per pc, the abstract kind
/// of every stack and local slot. `facts[pc]` is true exactly when
/// instruction `pc` is an `Arith`/`Cmp` whose two stack operands are
/// proven `int` on every path — those lower to the tag-free
/// [`Op::ArithII`]/[`Op::CmpII`].
///
/// Soundness over precision: locals start as `Any` (parameters and fields
/// are untyped here), every unknown producer pushes `Any`, paths that must
/// error before producing a value (abstract stack underflow, invalid
/// slots, falling off the end) are terminal, and any merge with mismatched
/// stack depths — impossible for compiler output, possible for hand-built
/// code — abandons the analysis entirely. A missed fact only costs the
/// generic tag-dispatched op; a wrong fact would be a miscompile, so every
/// `ArithII`/`CmpII` dispatch debug-asserts its operand tags.
fn int_facts(code: &Code) -> Vec<bool> {
    let n = code.instrs.len();
    let mut facts = vec![false; n];
    if n == 0 || n > FACTS_MAX_INSTRS {
        return facts;
    }
    let n_locals = code.n_locals as usize;
    let mut states: Vec<Option<AbsState>> = vec![None; n];
    states[0] = Some(AbsState {
        stack: Vec::new(),
        locals: vec![At::Any; n_locals],
    });
    let mut work = vec![0usize];
    let mut budget = FACTS_BUDGET_PER_INSTR * n;
    while let Some(pc) = work.pop() {
        if budget == 0 {
            return vec![false; n];
        }
        budget -= 1;
        let Some(mut st) = states[pc].clone() else {
            continue;
        };
        // Transfer: `None` from a pop means abstract underflow — real
        // execution errors at this pc, so the path is terminal.
        let mut succs: [Option<usize>; 2] = [None, None];
        let fall = (pc + 1 < n).then_some(pc + 1);
        let mut terminal = false;
        macro_rules! popk {
            () => {
                match st.stack.pop() {
                    Some(k) => k,
                    None => {
                        terminal = true;
                        At::Any
                    }
                }
            };
        }
        match &code.instrs[pc] {
            Instr::ConstI(_) => {
                st.stack.push(At::Int);
                succs[0] = fall;
            }
            Instr::ConstL(_) => {
                st.stack.push(At::Long);
                succs[0] = fall;
            }
            Instr::ConstB(_) => {
                st.stack.push(At::Bool);
                succs[0] = fall;
            }
            Instr::ConstNull | Instr::ClassObj(_) => {
                st.stack.push(At::Any);
                succs[0] = fall;
            }
            Instr::Load(s) => {
                if (*s as usize) < n_locals {
                    st.stack.push(st.locals[*s as usize]);
                    succs[0] = fall;
                }
            }
            Instr::Store(s) => {
                let v = popk!();
                if !terminal && (*s as usize) < n_locals {
                    st.locals[*s as usize] = v;
                    succs[0] = fall;
                }
            }
            Instr::GetField(_) => {
                let _ = popk!();
                st.stack.push(At::Any);
                succs[0] = fall;
            }
            Instr::PutField(_) => {
                let _ = popk!();
                let _ = popk!();
                succs[0] = fall;
            }
            Instr::GetStatic(..) => {
                st.stack.push(At::Any);
                succs[0] = fall;
            }
            Instr::PutStatic(..) => {
                let _ = popk!();
                succs[0] = fall;
            }
            Instr::Arith(_) => {
                let b = popk!();
                let a = popk!();
                let r = match (a, b) {
                    (At::Int, At::Int) => At::Int,
                    (At::Int | At::Long, At::Int | At::Long) => At::Long,
                    (At::Bool, At::Bool) => At::Bool,
                    _ => At::Any,
                };
                st.stack.push(r);
                succs[0] = fall;
            }
            Instr::Cmp(_) => {
                let _ = popk!();
                let _ = popk!();
                st.stack.push(At::Bool);
                succs[0] = fall;
            }
            Instr::Neg => {
                let v = popk!();
                st.stack.push(match v {
                    At::Int => At::Int,
                    At::Long => At::Long,
                    _ => At::Any,
                });
                succs[0] = fall;
            }
            Instr::Not => {
                let _ = popk!();
                st.stack.push(At::Bool);
                succs[0] = fall;
            }
            Instr::Jump(t) => {
                succs[0] = (*t < n).then_some(*t);
            }
            Instr::JumpIfFalse(t) => {
                let _ = popk!();
                succs[0] = fall;
                succs[1] = (*t < n).then_some(*t);
            }
            Instr::Invoke { argc, has_recv, .. } => {
                for _ in 0..(*argc as usize + usize::from(*has_recv)) {
                    let _ = popk!();
                }
                st.stack.push(At::Any);
                succs[0] = fall;
            }
            Instr::InvokeVirtual { argc, .. } => {
                for _ in 0..(*argc as usize + 1) {
                    let _ = popk!();
                }
                st.stack.push(At::Any);
                succs[0] = fall;
            }
            Instr::InvokeReflect { argc, has_recv, .. } => {
                for _ in 0..(*argc as usize + usize::from(*has_recv)) {
                    let _ = popk!();
                }
                st.stack.push(At::Any);
                succs[0] = fall;
            }
            Instr::New(_) => {
                st.stack.push(At::Any);
                succs[0] = fall;
            }
            Instr::BoxInt => {
                let _ = popk!();
                st.stack.push(At::Any);
                succs[0] = fall;
            }
            Instr::UnboxInt => {
                let _ = popk!();
                st.stack.push(At::Int);
                succs[0] = fall;
            }
            Instr::MonitorEnter | Instr::MonitorExit | Instr::Print | Instr::Pop => {
                let _ = popk!();
                succs[0] = fall;
            }
            Instr::Dup => {
                match st.stack.last() {
                    Some(&v) => st.stack.push(v),
                    None => terminal = true,
                }
                succs[0] = fall;
            }
            Instr::ReturnV => {
                let _ = popk!();
            }
            Instr::Return => {}
        }
        if terminal {
            continue;
        }
        for succ in succs.into_iter().flatten() {
            match &mut states[succ] {
                slot @ None => {
                    *slot = Some(st.clone());
                    work.push(succ);
                }
                Some(old) => {
                    if old.stack.len() != st.stack.len() {
                        // Depth mismatch: exact depth tracking is the
                        // soundness backbone, so give up wholesale.
                        return vec![false; n];
                    }
                    let mut changed = false;
                    for (o, v) in old.stack.iter_mut().zip(&st.stack) {
                        let j = o.join(*v);
                        if j != *o {
                            *o = j;
                            changed = true;
                        }
                    }
                    for (o, v) in old.locals.iter_mut().zip(&st.locals) {
                        let j = o.join(*v);
                        if j != *o {
                            *o = j;
                            changed = true;
                        }
                    }
                    if changed {
                        work.push(succ);
                    }
                }
            }
        }
    }
    for (pc, instr) in code.instrs.iter().enumerate() {
        if matches!(instr, Instr::Arith(_) | Instr::Cmp(_)) {
            if let Some(st) = &states[pc] {
                let d = st.stack.len();
                if d >= 2 && st.stack[d - 1] == At::Int && st.stack[d - 2] == At::Int {
                    facts[pc] = true;
                }
            }
        }
    }
    facts
}

/// Lowers one method's [`Code`] against its image. Infallible: anything the
/// interpreter would reject at runtime becomes a [`Op::Corrupt`] or
/// [`Op::HostPanic`] op that reproduces the behaviour at the same step.
fn lower(image: &Image, mid: MethodId) -> ThreadedCode {
    let code = &image.methods[mid].code;
    let n = code.instrs.len();
    let n_classes = image.classes.len();
    let facts = int_facts(code);

    // Flattened static layout: base slot per class.
    let mut static_base = Vec::with_capacity(n_classes);
    let mut acc = 0u32;
    for class in &image.classes {
        static_base.push(acc);
        acc += class.static_fields.len() as u32;
    }

    let mut ops = Vec::with_capacity(n + 1);
    let mut opcodes = Vec::with_capacity(n + 1);
    let mut fields: Vec<FieldTable> = Vec::new();
    let mut field_ids: HashMap<&str, u16> = HashMap::new();
    let mut calls: Vec<CallInfo> = Vec::new();
    let mut vcalls: Vec<VCall> = Vec::new();
    let mut rcalls: Vec<RCall> = Vec::new();

    // Any jump target beyond the code lands on the sentinel at index n.
    let clamp = |target: usize| -> u32 { target.min(n) as u32 };

    for (pc, instr) in code.instrs.iter().enumerate() {
        opcodes.push(opcode_index(instr) as u8);
        let op = match instr {
            Instr::ConstI(v) => Op::ConstVal(slot::pack(Value::Int(*v))),
            Instr::ConstL(v) => Op::ConstVal(slot::pack(Value::Long(*v))),
            Instr::ConstB(b) => Op::ConstVal(slot::pack(Value::Bool(*b))),
            Instr::ConstNull => Op::ConstVal(NULL),
            // Class lock objects occupy heap ids 0..n_classes, so the class
            // object is a plain reference — unvalidated, as in the
            // interpreter (a wild id only surfaces as a dangling reference
            // if used).
            Instr::ClassObj(cid) => Op::ConstVal(Slot {
                bits: *cid as u64,
                tag: Tag::Ref,
            }),
            Instr::Load(s) => {
                if (*s as usize) < code.n_locals as usize {
                    Op::Load(*s)
                } else {
                    Op::Corrupt(CorruptKind::LocalSlot)
                }
            }
            Instr::Store(s) => {
                if (*s as usize) < code.n_locals as usize {
                    Op::Store(*s)
                } else {
                    Op::Corrupt(CorruptKind::LocalSlot)
                }
            }
            Instr::GetField(name) => {
                Op::GetField(intern_field(image, &mut fields, &mut field_ids, name))
            }
            Instr::PutField(name) => {
                Op::PutField(intern_field(image, &mut fields, &mut field_ids, name))
            }
            Instr::GetStatic(cid, off) => match flat_static(image, &static_base, *cid, *off) {
                Some(flat) => Op::GetStatic(flat),
                None => Op::Corrupt(CorruptKind::StaticSlot),
            },
            Instr::PutStatic(cid, off) => match flat_static(image, &static_base, *cid, *off) {
                Some(flat) => Op::PutStatic(flat),
                None => Op::Corrupt(CorruptKind::StaticSlot),
            },
            Instr::Arith(op) => {
                if facts[pc] {
                    Op::ArithII(*op)
                } else {
                    Op::Arith(*op)
                }
            }
            Instr::Cmp(op) => {
                if facts[pc] {
                    Op::CmpII(*op)
                } else {
                    Op::Cmp(*op)
                }
            }
            Instr::Neg => Op::Neg,
            Instr::Not => Op::Not,
            Instr::Jump(target) => Op::Jump {
                target: clamp(*target),
                backedge: *target <= pc,
            },
            Instr::JumpIfFalse(target) => Op::JumpIfFalse(clamp(*target)),
            Instr::Invoke {
                method,
                argc,
                has_recv,
            } => {
                if *method >= image.methods.len() {
                    Op::HostPanic(BadRef::Method)
                } else {
                    let target = &image.methods[*method];
                    // Failure priority mirrors the interpreter's check
                    // order: arity first, then a missing mandatory
                    // receiver. Both fire after operand pops.
                    let action = if target.params.len() != *argc as usize {
                        CallAction::Fail(ExecError::NoSuchMethod {
                            class: image.classes[target.class].name.clone(),
                            method: target.name.clone(),
                        })
                    } else if !target.is_static && !*has_recv {
                        CallAction::Fail(ExecError::NullReference)
                    } else {
                        CallAction::Goto {
                            mid: *method as u32,
                            needs_recv: !target.is_static,
                        }
                    };
                    calls.push(CallInfo {
                        argc: *argc,
                        pops_recv: *has_recv,
                        action,
                    });
                    Op::Invoke((calls.len() - 1) as u16)
                }
            }
            Instr::InvokeVirtual { method, argc } => {
                let targets: Vec<VTarget> = image
                    .classes
                    .iter()
                    .map(|class| match class.method_index.get(method) {
                        None => VTarget::NoMethod,
                        Some(&mid) => {
                            let target = &image.methods[mid];
                            if target.params.len() != *argc as usize {
                                VTarget::Arity
                            } else {
                                VTarget::Goto {
                                    mid: mid as u32,
                                    needs_recv: !target.is_static,
                                }
                            }
                        }
                    })
                    .collect();
                vcalls.push(VCall {
                    name: method.clone().into_boxed_str(),
                    argc: *argc,
                    targets: targets.into_boxed_slice(),
                });
                Op::InvokeVirtual((vcalls.len() - 1) as u16)
            }
            Instr::InvokeReflect {
                class,
                method,
                has_recv,
                argc,
            } => {
                // Reflective errors quote the *requested* names, not the
                // image's — exactly as the interpreter does.
                let action = match image.class_id(class) {
                    None => CallAction::Fail(ExecError::NoSuchClass(class.clone())),
                    Some(cid) => match image.classes[cid].method_index.get(method) {
                        None => CallAction::Fail(ExecError::NoSuchMethod {
                            class: class.clone(),
                            method: method.clone(),
                        }),
                        Some(&mid) => {
                            let target = &image.methods[mid];
                            if target.params.len() != *argc as usize {
                                CallAction::Fail(ExecError::NoSuchMethod {
                                    class: class.clone(),
                                    method: method.clone(),
                                })
                            } else {
                                CallAction::Goto {
                                    mid: mid as u32,
                                    needs_recv: !target.is_static,
                                }
                            }
                        }
                    },
                };
                rcalls.push(RCall {
                    argc: *argc,
                    pops_recv: *has_recv,
                    action,
                });
                Op::InvokeReflect((rcalls.len() - 1) as u16)
            }
            Instr::New(cid) => {
                if *cid < n_classes {
                    Op::New(*cid as u32)
                } else {
                    Op::HostPanic(BadRef::Class)
                }
            }
            Instr::BoxInt => Op::BoxInt,
            Instr::UnboxInt => Op::UnboxInt,
            Instr::MonitorEnter => Op::MonitorEnter,
            Instr::MonitorExit => Op::MonitorExit,
            Instr::Print => Op::Print,
            Instr::Pop => Op::Pop,
            Instr::Dup => Op::Dup,
            Instr::ReturnV => Op::ReturnV,
            Instr::Return => Op::Return,
        };
        ops.push(op);
    }
    // Fetch sentinel: running past the end (or a wild jump) raises the
    // interpreter's "pc out of range" after fuel/step/cancel accounting but
    // before profiler attribution.
    ops.push(Op::Corrupt(CorruptKind::Pc));
    opcodes.push(NO_OPCODE);

    ThreadedCode {
        ops: ops.into_boxed_slice(),
        opcodes: opcodes.into_boxed_slice(),
        n_locals: code.n_locals,
        // Recompute: hand-built code may understate its own metadata.
        max_stack: Code::compute_max_stack(&code.instrs),
        tables: Arc::new(SideTables {
            fields: fields.into_boxed_slice(),
            calls: calls.into_boxed_slice(),
            vcalls: vcalls.into_boxed_slice(),
            rcalls: rcalls.into_boxed_slice(),
        }),
        inlines: Box::new([]),
        unfused: None,
    }
}

/// Builds the fused body of an unfused lowering: maximal straight-line
/// runs of fetch/arith/compare/store/branch ops collapse into the
/// superinstructions at the tail of [`Op`], one dispatch each, and
/// statically resolved calls to tiny leaves become [`Op::InlineCall`]s.
///
/// Groups never span a branch target (every target starts a group, so
/// remapped jumps stay valid), and only ops already validated by
/// [`lower`] participate — `Corrupt`/`HostPanic` ops are never folded.
fn fuse(image: &Image, unfused: Arc<ThreadedCode>) -> ThreadedCode {
    let ops = &unfused.ops;
    let n = ops.len() - 1; // exclude the pc sentinel
    let mut is_target = vec![false; n + 1];
    for op in ops.iter() {
        match op {
            Op::Jump { target, .. } | Op::JumpIfFalse(target) => {
                is_target[*target as usize] = true;
            }
            _ => {}
        }
    }

    let as_fetch = |op: &Op| -> Option<Src> {
        match op {
            Op::Load(s) => Some(Src::Local(*s)),
            Op::ConstVal(v) => Some(Src::Const(*v)),
            Op::GetStatic(s) => Some(Src::Static(*s)),
            _ => None,
        }
    };
    let as_sink = |op: &Op| -> Option<Sink> {
        match op {
            Op::Store(s) => Some(Sink::Local(*s)),
            Op::PutStatic(s) => Some(Sink::Static(*s)),
            _ => None,
        }
    };
    // Arith/Cmp constituents carry their proven-int flag into the fused
    // op so the superinstruction keeps the tag-free fast path.
    let as_arith = |op: &Op| -> Option<(ArithOp, bool)> {
        match op {
            Op::Arith(o) => Some((*o, false)),
            Op::ArithII(o) => Some((*o, true)),
            _ => None,
        }
    };
    let as_cmp = |op: &Op| -> Option<(CmpOp, bool)> {
        match op {
            Op::Cmp(o) => Some((*o, false)),
            Op::CmpII(o) => Some((*o, true)),
            _ => None,
        }
    };

    let mut fused: Vec<Op> = Vec::with_capacity(n + 1);
    let mut orig_to_fused = vec![u32::MAX; n + 1];
    let mut i = 0usize;
    while i < n {
        orig_to_fused[i] = fused.len() as u32;
        // `free(j)`: op j exists and may be consumed mid-group (nothing
        // jumps into it).
        let free = |j: usize| j < n && !is_target[j];
        let (op, k) = if let Some(f0) = as_fetch(&ops[i]) {
            if !free(i + 1) {
                (ops[i], 1)
            } else if let Some(f1) = as_fetch(&ops[i + 1]) {
                // Two-operator chains first (longest match): left-deep
                // `F F A F A [S]` and right-deep `F F F A A [S]`.
                let chain3 = |f2: Src,
                              op1: ArithOp,
                              ii1: bool,
                              op2: ArithOp,
                              ii2: bool,
                              right: bool,
                              at: usize| match (
                    free(at),
                    as_sink(ops.get(at).unwrap_or(&Op::Return)),
                ) {
                    (true, Some(sink)) => (
                        Op::Chain3 {
                            a: f0,
                            b: f1,
                            c: f2,
                            op1,
                            op2,
                            ii1,
                            ii2,
                            right,
                            sink,
                        },
                        at + 1 - i,
                    ),
                    _ => (
                        Op::Chain3 {
                            a: f0,
                            b: f1,
                            c: f2,
                            op1,
                            op2,
                            ii1,
                            ii2,
                            right,
                            sink: Sink::Push,
                        },
                        at - i,
                    ),
                };
                if !free(i + 2) {
                    (Op::Push2 { a: f0, b: f1 }, 2)
                } else if let Some((op1, ii1)) = as_arith(&ops[i + 2]) {
                    let f2 = free(i + 3).then(|| as_fetch(&ops[i + 3])).flatten();
                    let a2 = free(i + 4)
                        .then(|| ops.get(i + 4))
                        .flatten()
                        .and_then(as_arith);
                    match (f2, a2) {
                        (Some(f2), Some((op2, ii2))) => {
                            chain3(f2, op1, ii1, op2, ii2, false, i + 5)
                        }
                        _ => match (free(i + 3), as_sink(ops.get(i + 3).unwrap_or(&Op::Return))) {
                            (true, Some(sink)) => (
                                Op::Bin {
                                    op: op1,
                                    ii: ii1,
                                    a: f0,
                                    b: f1,
                                    sink,
                                },
                                4,
                            ),
                            _ => (
                                Op::Bin {
                                    op: op1,
                                    ii: ii1,
                                    a: f0,
                                    b: f1,
                                    sink: Sink::Push,
                                },
                                3,
                            ),
                        },
                    }
                } else if let Some((cop, cii)) = as_cmp(&ops[i + 2]) {
                    match (free(i + 3), ops.get(i + 3)) {
                        (true, Some(Op::JumpIfFalse(t))) => (
                            Op::CmpBr {
                                op: cop,
                                ii: cii,
                                a: f0,
                                b: f1,
                                target: *t,
                            },
                            4,
                        ),
                        _ => (Op::Push2 { a: f0, b: f1 }, 2),
                    }
                } else {
                    match (
                        as_fetch(&ops[i + 2]),
                        free(i + 3)
                            .then(|| ops.get(i + 3))
                            .flatten()
                            .and_then(as_arith),
                        free(i + 4)
                            .then(|| ops.get(i + 4))
                            .flatten()
                            .and_then(as_arith),
                    ) {
                        (Some(f2), Some((op1, ii1)), Some((op2, ii2))) => {
                            chain3(f2, op1, ii1, op2, ii2, true, i + 5)
                        }
                        _ => (Op::Push2 { a: f0, b: f1 }, 2),
                    }
                }
            } else {
                // Single fetch: it supplies the *second* operand (the
                // first, if any, is already on the stack).
                if let Some((op, ii)) = as_arith(&ops[i + 1]) {
                    match (free(i + 2), as_sink(ops.get(i + 2).unwrap_or(&Op::Return))) {
                        (true, Some(sink)) => (
                            Op::Bin {
                                op,
                                ii,
                                a: Src::Stack,
                                b: f0,
                                sink,
                            },
                            3,
                        ),
                        _ => (
                            Op::Bin {
                                op,
                                ii,
                                a: Src::Stack,
                                b: f0,
                                sink: Sink::Push,
                            },
                            2,
                        ),
                    }
                } else if let Some((op, ii)) = as_cmp(&ops[i + 1]) {
                    match (free(i + 2), ops.get(i + 2)) {
                        (true, Some(Op::JumpIfFalse(t))) => (
                            Op::CmpBr {
                                op,
                                ii,
                                a: Src::Stack,
                                b: f0,
                                target: *t,
                            },
                            3,
                        ),
                        _ => (ops[i], 1),
                    }
                } else {
                    match &ops[i + 1] {
                        Op::Store(s) => (
                            Op::Move {
                                src: f0,
                                dst: Sink::Local(*s),
                            },
                            2,
                        ),
                        Op::PutStatic(s) => (
                            Op::Move {
                                src: f0,
                                dst: Sink::Static(*s),
                            },
                            2,
                        ),
                        Op::GetField(fi) => match f0 {
                            Src::Local(lsl) => (Op::GetFieldL { slot: lsl, fi: *fi }, 2),
                            _ => (ops[i], 1),
                        },
                        _ => (ops[i], 1),
                    }
                }
            }
        } else if let Some((op, ii)) = as_arith(&ops[i]) {
            // Stack-operand tails of larger expressions.
            if free(i + 1) {
                match as_sink(&ops[i + 1]) {
                    Some(sink) => (
                        Op::Bin {
                            op,
                            ii,
                            a: Src::Stack,
                            b: Src::Stack,
                            sink,
                        },
                        2,
                    ),
                    None => (ops[i], 1),
                }
            } else {
                (ops[i], 1)
            }
        } else if let Some((op, ii)) = as_cmp(&ops[i]) {
            if free(i + 1) {
                match &ops[i + 1] {
                    Op::JumpIfFalse(t) => (
                        Op::CmpBr {
                            op,
                            ii,
                            a: Src::Stack,
                            b: Src::Stack,
                            target: *t,
                        },
                        2,
                    ),
                    _ => (ops[i], 1),
                }
            } else {
                (ops[i], 1)
            }
        } else {
            (ops[i], 1)
        };
        fused.push(op);
        i += k;
    }
    orig_to_fused[n] = fused.len() as u32;
    fused.push(Op::Corrupt(CorruptKind::Pc));

    // Remap branch targets into fused index space. Every target is a
    // group start (the fuser never consumes a targeted op mid-group).
    for op in &mut fused {
        match op {
            Op::Jump { target, .. } | Op::JumpIfFalse(target) | Op::CmpBr { target, .. } => {
                let t = orig_to_fused[*target as usize];
                debug_assert_ne!(t, u32::MAX, "branch into the middle of a fused group");
                *target = t;
            }
            _ => {}
        }
    }

    // Counted-loop latch fusion: an induction step
    // `Bin{Local, Const -> Local}` directly before a backward `Jump`
    // into a fused `CmpBr` collapses into one `IncLatch` dispatch per
    // iteration. Only slot j is rewritten — the `Jump` at j+1 and the
    // `CmpBr` stay in place, so any branch into the middle of the
    // pattern still sees identical semantics.
    for j in 0..fused.len().saturating_sub(1) {
        if let (
            Op::Bin {
                op: iop,
                ii: iop_ii,
                a: Src::Local(islot),
                b: Src::Const(ic),
                sink: Sink::Local(dst),
            },
            Op::Jump {
                target,
                backedge: true,
            },
        ) = (fused[j], fused[j + 1])
        {
            if let Op::CmpBr {
                op: cop,
                ii: cop_ii,
                a: ca,
                b: cb,
                target: exit,
            } = fused[target as usize]
            {
                fused[j] = Op::IncLatch {
                    iop,
                    iop_ii,
                    islot,
                    ic,
                    dst,
                    cop,
                    cop_ii,
                    ca,
                    cb,
                    exit,
                    fall: target + 1,
                };
            }
        }
    }

    // Latch fusion: a backward `Jump` landing on a fused `CmpBr` (the
    // `for`/`while` loop latch returning to its header test) becomes one
    // dispatch per iteration. The `CmpBr` stays in place for loop entry,
    // so this is a pure behavioral copy — even a branch *to* the old
    // `Jump` index sees identical semantics (jump micro, then the test).
    for j in 0..fused.len() {
        if let Op::Jump {
            target,
            backedge: true,
        } = fused[j]
        {
            if let Op::CmpBr {
                op,
                ii,
                a,
                b,
                target: exit,
            } = fused[target as usize]
            {
                fused[j] = Op::JumpCmpBr {
                    op,
                    ii,
                    a,
                    b,
                    exit,
                    fall: target + 1,
                };
            }
        }
    }

    // Leaf-call inlining: a statically resolved `Invoke` of a tiny
    // straight-line callee executes the callee's micro-ops in place —
    // no frame push, no per-call code lookup. Fused bodies only; the
    // unfused twin keeps the plain `Invoke` so profiled runs attribute
    // the callee's opcodes individually. The code-cache key covers the
    // callee fingerprints (see [`lookup_or_lower`]), so `install_code`
    // on the callee invalidates this body.
    let mut inlines: Vec<InlineInfo> = Vec::new();
    for op in &mut fused {
        if let Op::Invoke(ci) = op {
            let info = &unfused.tables.calls[*ci as usize];
            if let CallAction::Goto { mid, needs_recv } = &info.action {
                if info.pops_recv == *needs_recv && inlines.len() < u16::MAX as usize {
                    if let Some(inl) =
                        build_leaf_inline(image, *mid as usize, info.argc, *needs_recv)
                    {
                        inlines.push(inl);
                        *op = Op::InlineCall((inlines.len() - 1) as u16);
                    }
                }
            }
        }
    }

    ThreadedCode {
        ops: fused.into_boxed_slice(),
        opcodes: Box::new([]),
        n_locals: unfused.n_locals,
        max_stack: unfused.max_stack,
        tables: Arc::clone(&unfused.tables),
        inlines: inlines.into_boxed_slice(),
        unfused: Some(unfused),
    }
}

/// Cap on the instruction count of an inlinable leaf body.
const LEAF_INLINE_MAX: usize = 8;

/// Translates a callee into straight-line [`LeafOp`]s if it qualifies:
/// short, free of branches/calls/heap ops, valid local slots, and provably
/// terminated by a `Return`/`ReturnV` (so the executed micro sequence is
/// exactly the prefix up to the first return — no pc-out-of-range tail).
/// The receiver and arguments must fit its locals; otherwise the
/// frame-entry errors would fire and the call site is left alone.
fn build_leaf_inline(image: &Image, mid: usize, argc: u8, recv: bool) -> Option<InlineInfo> {
    let code = &image.methods[mid].code;
    let n_locals = code.n_locals as usize;
    if code.instrs.is_empty()
        || code.instrs.len() > LEAF_INLINE_MAX
        || argc as usize + usize::from(recv) > n_locals
    {
        return None;
    }
    let mut body = Vec::with_capacity(code.instrs.len());
    for instr in &code.instrs {
        let lop = match instr {
            Instr::ConstI(v) => LeafOp::Const(slot::pack(Value::Int(*v))),
            Instr::ConstL(v) => LeafOp::Const(slot::pack(Value::Long(*v))),
            Instr::ConstB(b) => LeafOp::Const(slot::pack(Value::Bool(*b))),
            Instr::ConstNull => LeafOp::Const(NULL),
            Instr::ClassObj(cid) => LeafOp::Const(Slot {
                bits: *cid as u64,
                tag: Tag::Ref,
            }),
            Instr::Load(s) if (*s as usize) < n_locals => LeafOp::Load(*s),
            Instr::Store(s) if (*s as usize) < n_locals => LeafOp::Store(*s),
            Instr::Arith(op) => LeafOp::Arith(*op),
            Instr::Cmp(op) => LeafOp::Cmp(*op),
            Instr::Neg => LeafOp::Neg,
            Instr::Not => LeafOp::Not,
            Instr::Dup => LeafOp::Dup,
            Instr::Pop => LeafOp::Pop,
            Instr::ReturnV => {
                body.push(LeafOp::ReturnV);
                return Some(InlineInfo {
                    mid: mid as u32,
                    argc,
                    recv,
                    n_locals: code.n_locals,
                    max_stack: Code::compute_max_stack(&code.instrs),
                    body: body.into_boxed_slice(),
                });
            }
            Instr::Return => {
                body.push(LeafOp::Return);
                return Some(InlineInfo {
                    mid: mid as u32,
                    argc,
                    recv,
                    n_locals: code.n_locals,
                    max_stack: Code::compute_max_stack(&code.instrs),
                    body: body.into_boxed_slice(),
                });
            }
            _ => return None,
        };
        body.push(lop);
    }
    // Fell off the end without a return: the real callee raises
    // "pc out of range"; don't inline.
    None
}

fn intern_field<'c>(
    image: &'c Image,
    fields: &mut Vec<FieldTable>,
    ids: &mut HashMap<&'c str, u16>,
    name: &str,
) -> u16 {
    if let Some(&id) = ids.get(name) {
        return id;
    }
    let offsets: Vec<u32> = image
        .classes
        .iter()
        .map(|c| c.instance_offset(name).map_or(NO_FIELD, |o| o as u32))
        .collect();
    fields.push(FieldTable {
        name: name.into(),
        offsets: offsets.into_boxed_slice(),
    });
    let id = (fields.len() - 1) as u16;
    // Borrow the name from the image when possible so the map key outlives
    // this call; fall back to leaking nothing by keying on the table we
    // just pushed is not possible with a HashMap<&str>, so only intern
    // names that exist in some class layout (repeats of unknown names are
    // rare and just get duplicate tables).
    for class in &image.classes {
        if let Some(f) = class.instance_fields.iter().find(|f| f.name == name) {
            ids.insert(f.name.as_str(), id);
            break;
        }
    }
    id
}

fn flat_static(image: &Image, base: &[u32], cid: ClassId, off: u16) -> Option<u32> {
    let class = image.classes.get(cid)?;
    if (off as usize) < class.static_fields.len() {
        Some(base[cid] + u32::from(off))
    } else {
        None
    }
}

/// A suspended caller frame: three indices into the register-file arena
/// plus the code handle — no per-frame vectors to save or restore.
struct SavedFrame {
    code: Arc<ThreadedCode>,
    mid: usize,
    pc: usize,
    base: usize,
    floor: usize,
    sp: usize,
}

/// The per-execution register-file arena: every frame's locals and operand
/// stack (and, in a second instance, the flattened statics) live in two
/// parallel arrays — untagged `u64` payloads plus one-byte tags — instead
/// of boxed `Vec<Value>`s. Frames are `(base, floor, sp)` windows into the
/// arena; see [`TMachine::run_from_inner`].
///
/// Accessors skip bounds checks. The indices are validated structurally,
/// not per-access: local slots are bounds-checked at lowering time against
/// `n_locals`, and frame entry reserves `base + n_locals + max_stack`
/// entries; static slots are bounds-checked at lowering time against the
/// image's flattened static count, which the cache key's shape fingerprint
/// pins; stack accesses sit below `sp`, which never exceeds `len` (pushes
/// grow on full). Debug builds assert every access, and the CI `miri`
/// pass executes the dispatch loop under those assertions.
#[derive(Debug, Default)]
struct RegFile {
    bits: Vec<u64>,
    tags: Vec<Tag>,
}

impl RegFile {
    fn with_capacity(n: usize) -> Self {
        RegFile {
            bits: Vec::with_capacity(n),
            tags: Vec::with_capacity(n),
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.bits.len()
    }

    #[inline]
    fn get(&self, i: usize) -> Slot {
        debug_assert!(i < self.bits.len(), "register read out of the arena");
        // SAFETY: see the type docs — `i` is below a lowering-validated
        // bound covered by `reserve_to` at frame entry, or below `sp`.
        unsafe {
            Slot {
                bits: *self.bits.get_unchecked(i),
                tag: *self.tags.get_unchecked(i),
            }
        }
    }

    #[inline]
    fn set(&mut self, i: usize, s: Slot) {
        debug_assert!(i < self.bits.len(), "register write out of the arena");
        // SAFETY: as in `get`.
        unsafe {
            *self.bits.get_unchecked_mut(i) = s.bits;
            *self.tags.get_unchecked_mut(i) = s.tag;
        }
    }

    #[inline]
    fn push(&mut self, s: Slot) {
        self.bits.push(s.bits);
        self.tags.push(s.tag);
    }

    /// Grows the arena to at least `n` entries (zero/`Null` filled).
    /// Never shrinks: returned frames leave their windows allocated for
    /// the next call.
    fn reserve_to(&mut self, n: usize) {
        if n > self.bits.len() {
            self.bits.resize(n, 0);
            self.tags.resize(n, Tag::Null);
        }
    }

    /// Shifts `n` entries starting at `dst + 1` down by one (discarding
    /// the entry at `dst`): frame entry uses this when a static target
    /// was invoked with an explicit receiver.
    fn shift_down(&mut self, dst: usize, n: usize) {
        self.bits.copy_within(dst + 1..dst + 1 + n, dst);
        self.tags.copy_within(dst + 1..dst + 1 + n, dst);
    }
}

struct TMachine<'i> {
    image: &'i Image,
    heap: Heap,
    /// Flattened statics (all classes concatenated in [`ClassId`] order),
    /// packed into slot form once at startup.
    statics: RegFile,
    /// The frame arena: all call frames' locals and operand stacks.
    regs: RegFile,
    fuel: u64,
    max_call_depth: usize,
    stats: ExecStats,
    profile: Profile,
    output: Vec<String>,
    profiler: Option<OpcodeProfiler>,
    /// Per-execution memo of cache lookups (one per method, first call).
    lowered: Vec<Option<Arc<ThreadedCode>>>,
    /// Leaf calls executed inline this run (drained into the thread-local
    /// log for telemetry; never part of the [`Outcome`]).
    inlined: u64,
}

/// Executes `image` from its `main` method on the threaded substrate.
///
/// Observably identical to [`crate::interp::run`] — including telemetry:
/// the same `interp_run` trace span and `InterpRuns`/`InterpSteps`
/// counters, so traced journals are byte-identical across exec modes.
pub fn run(image: &Image, config: &ExecConfig) -> Outcome {
    let _trace = jtelemetry::trace_span("interp_run", Vec::new);
    let mut statics = RegFile::default();
    for class in &image.classes {
        for f in &class.static_fields {
            statics.push(slot::pack(f.init));
        }
    }
    let mut machine = TMachine {
        image,
        heap: Heap::new(),
        statics,
        regs: RegFile::with_capacity(256),
        fuel: config.fuel,
        max_call_depth: config.max_call_depth,
        stats: ExecStats::default(),
        profile: Profile {
            invocations: vec![0; image.methods.len()],
            backedges: vec![0; image.methods.len()],
        },
        output: Vec::new(),
        profiler: jtelemetry::profiling().then(OpcodeProfiler::new),
        lowered: vec![None; image.methods.len()],
        inlined: 0,
    };
    // Class lock objects occupy ids 0..n_classes, so `ClassObj(c)` is
    // `Ref(c)`.
    for cid in 0..image.classes.len() {
        machine.heap.alloc(cid, Vec::new());
    }
    let result = machine.run_from(image.main());
    let mut error = result.err();
    // A clean exit must leave every monitor released; a leaked monitor is
    // the classic symptom of a broken lock optimization.
    if error.is_none() {
        for id in 0..machine.heap.len() {
            if machine.heap.get(id).map_or(0, |o| o.monitor_depth) != 0 {
                error = Some(ExecError::IllegalMonitorState);
                break;
            }
        }
    }
    jtelemetry::count(jtelemetry::Counter::InterpRuns, 1);
    jtelemetry::count(jtelemetry::Counter::InterpSteps, machine.stats.steps);
    INLINE_LOG.with(|c| c.set(c.get() + machine.inlined));
    INLINE_TOTAL.fetch_add(machine.inlined, Ordering::Relaxed);
    if let Some(profiler) = &machine.profiler {
        profiler.flush();
    }
    Outcome {
        output: machine.output,
        error,
        stats: machine.stats,
        profile: machine.profile,
    }
}

impl<'i> TMachine<'i> {
    fn ensure(&mut self, mid: usize) -> Arc<ThreadedCode> {
        if let Some(tc) = &self.lowered[mid] {
            return Arc::clone(tc);
        }
        let tc = lookup_or_lower(self.image, mid);
        // Profiled runs execute the unfused twin: opcode attribution
        // samples individual steps, so every original instruction must
        // dispatch individually. Unprofiled runs get the fused body.
        let tc = if self.profiler.is_some() {
            tc.unfused.clone().unwrap_or(tc)
        } else {
            tc
        };
        self.lowered[mid] = Some(Arc::clone(&tc));
        tc
    }

    fn run_from(&mut self, main: MethodId) -> Result<(), ExecError> {
        // Monomorphize the dispatch loop on "is a profiler attached":
        // the unprofiled instantiation (the fuzzing hot path) carries no
        // per-dispatch profiler check at all.
        if self.profiler.is_some() {
            self.run_from_inner::<true>(main)
        } else {
            self.run_from_inner::<false>(main)
        }
    }

    fn run_from_inner<const PROFILED: bool>(&mut self, main: MethodId) -> Result<(), ExecError> {
        let mut cur_code = self.ensure(main);
        let mut cur_mid = main;
        let mut pc = 0usize;
        // Entry frame: counters bump exactly as the interpreter's
        // `new_frame`, and like there, the entry frame does not update
        // `max_depth`.
        self.profile.invocations[main] += 1;
        self.stats.calls += 1;
        // The frame window: locals at `base..floor`, operand stack at
        // `floor..sp` (sp = next free). Invariants: `floor <= sp <= len`,
        // and `floor + max_stack` is reserved (pushes beyond grow).
        let mut base = 0usize;
        let mut floor = cur_code.n_locals as usize;
        let mut sp = floor;
        self.regs.reserve_to(floor + cur_code.max_stack as usize);
        for i in 0..floor {
            self.regs.set(i, NULL);
        }
        let mut saved: Vec<SavedFrame> = Vec::with_capacity(16);
        // Fuel and step counters live in locals for the whole dispatch
        // loop: routing them through `self` costs a serialized memory
        // round-trip per dispatch. Every exit from the loop (including
        // errors) funnels through the single write-back below; panics
        // (host bugs, watchdog aborts) discard the machine anyway.
        let mut fuel = self.fuel;
        let mut steps = self.stats.steps;

        macro_rules! pop {
            () => {{
                if sp == floor {
                    return Err(ExecError::VmCorrupt("operand stack underflow"));
                }
                sp -= 1;
                self.regs.get(sp)
            }};
        }

        macro_rules! push {
            ($v:expr) => {{
                let v: Slot = $v;
                if sp == self.regs.len() {
                    self.regs.push(v);
                } else {
                    self.regs.set(sp, v);
                }
                sp += 1;
            }};
        }

        /// One additional micro-step inside a superinstruction: exactly
        /// the per-step accounting the unfused loop performs (fuel gate,
        /// step count, watchdog poll cadence), so fused execution is
        /// step-exact. Profiler attribution is absent by construction —
        /// profiled runs execute the unfused twin.
        macro_rules! tick {
            () => {
                if fuel == 0 {
                    return Err(ExecError::OutOfFuel);
                }
                fuel -= 1;
                steps += 1;
                if steps & 0xFFF == 0 {
                    jtelemetry::cancel::check("interpreter");
                }
            };
        }

        /// Batch accounting for a superinstruction's `$rest` micro-steps
        /// beyond the prologue-ticked first one. When the whole group
        /// fits before the next fuel wall *and* the next watchdog poll
        /// boundary, account it in one shot and bind `$fast = true`;
        /// the arm's [`mtick!`] sites then compile to no-ops and any
        /// mid-group error rolls the overshoot back. Otherwise fall back
        /// to per-micro ticking (`$fast = false`), which is bit-exact at
        /// every boundary.
        macro_rules! batched {
            ($rest:expr, $fast:ident) => {
                let rest: u64 = $rest;
                let $fast = fuel >= rest && (steps & 0xFFF) + rest < 0x1000;
                if $fast {
                    fuel -= rest;
                    steps += rest;
                }
            };
        }

        /// A [`tick!`] site inside a [`batched!`] superinstruction arm:
        /// skipped on the batched fast path, exact on the slow path.
        macro_rules! mtick {
            ($fast:ident) => {
                if !$fast {
                    tick!();
                }
            };
        }

        /// Fetches a fused operand. `Stack` pops — underflow raises the
        /// interpreter's exact corruption error.
        macro_rules! fetch {
            ($src:expr) => {
                match $src {
                    Src::Local(s) => self.regs.get(base + *s as usize),
                    Src::Const(v) => *v,
                    Src::Static(s) => self.statics.get(*s as usize),
                    Src::Stack => pop!(),
                }
            };
        }

        /// Slot arithmetic with the lowering-proven `int×int` fast path:
        /// the flag came from [`int_facts`], so debug builds re-check the
        /// tags it promised.
        macro_rules! slot_arith {
            ($op:expr, $ii:expr, $a:expr, $b:expr) => {{
                if $ii {
                    debug_assert!(
                        $a.tag == Tag::Int && $b.tag == Tag::Int,
                        "type recovery proved int operands"
                    );
                    slot::arith_ii($op, $a.bits, $b.bits)
                } else {
                    slot::arith($op, $a, $b)
                }
            }};
        }

        macro_rules! slot_cmp {
            ($op:expr, $ii:expr, $a:expr, $b:expr) => {{
                if $ii {
                    debug_assert!(
                        $a.tag == Tag::Int && $b.tag == Tag::Int,
                        "type recovery proved int operands"
                    );
                    Ok(slot::compare_ii($op, $a.bits, $b.bits))
                } else {
                    slot::compare($op, $a, $b)
                }
            }};
        }

        /// Common frame-entry tail for the three call forms. `$recv` is the
        /// fully resolved receiver (already validated), `$argn` the argument
        /// count, `$pops_recv` whether a receiver slot leaves the stack.
        ///
        /// The receiver (when popped) and arguments already sit
        /// contiguously at the top of the caller's stack window in
        /// callee-local order, so the callee frame starts right on top of
        /// them: no copying, just three index updates.
        macro_rules! enter {
            ($frame:lifetime, $mid:expr, $recv:expr, $argn:expr, $pops_recv:expr) => {{
                let mid: usize = $mid;
                let recv: Option<Slot> = $recv;
                let argn: usize = $argn;
                let pops_recv: bool = $pops_recv;
                if saved.len() + 1 >= self.max_call_depth {
                    return Err(ExecError::StackOverflow);
                }
                let callee = self.ensure(mid);
                self.profile.invocations[mid] += 1;
                self.stats.calls += 1;
                let n_locals = callee.n_locals as usize;
                let has_recv = recv.is_some();
                // A resolved receiver always came off the stack.
                debug_assert!(pops_recv || !has_recv);
                if has_recv && n_locals == 0 {
                    return Err(ExecError::VmCorrupt("no slot for receiver"));
                }
                if argn + usize::from(has_recv) > n_locals {
                    return Err(ExecError::VmCorrupt("no slot for argument"));
                }
                let cbase = sp - argn - usize::from(pops_recv);
                if pops_recv && !has_recv {
                    // Static target invoked with an explicit receiver: the
                    // receiver slot is discarded, arguments shift down one.
                    self.regs.shift_down(cbase, argn);
                }
                let cfloor = cbase + n_locals;
                self.regs.reserve_to(cfloor + callee.max_stack as usize);
                for i in (cbase + argn + usize::from(has_recv))..cfloor {
                    self.regs.set(i, NULL);
                }
                saved.push(SavedFrame {
                    code: std::mem::replace(&mut cur_code, callee),
                    mid: cur_mid,
                    pc: pc + 1,
                    base,
                    floor,
                    sp: cbase,
                });
                cur_mid = mid;
                pc = 0;
                base = cbase;
                floor = cfloor;
                sp = cfloor;
                self.stats.max_depth = self.stats.max_depth.max(saved.len() + 1);
                continue $frame;
            }};
        }

        macro_rules! ret {
            ($frame:lifetime, $v:expr) => {{
                let v: Slot = $v;
                match saved.pop() {
                    Some(f) => {
                        cur_code = f.code;
                        cur_mid = f.mid;
                        pc = f.pc;
                        base = f.base;
                        floor = f.floor;
                        sp = f.sp;
                        push!(v);
                        continue $frame;
                    }
                    None => return Ok(()),
                }
            }};
        }

        /// Per-dispatch prologue of every *plain* (unfused) arm: one
        /// tick plus, in the `PROFILED` instantiation, per-opcode
        /// attribution. Superinstruction arms account their whole width
        /// through [`batched!`] instead and never run profiled (the
        /// profiler executes the unfused twin), so the profiler check
        /// vanishes from the unprofiled instantiation entirely.
        macro_rules! pro {
            () => {
                tick!();
                if PROFILED {
                    if let Some(profiler) = &mut self.profiler {
                        let idx = cur_code.opcodes[pc];
                        if idx != NO_OPCODE {
                            profiler.step(steps, idx as usize);
                        }
                    }
                }
            };
        }

        let mut dispatch = || -> Result<(), ExecError> {
            // The outer loop re-borrows the current method's op array after
            // every frame change (`enter!`/`ret!` reassign `cur_code` and
            // `continue 'frame`); the inner loop then dispatches on a flat
            // slice with the indirection hoisted out.
            'frame: loop {
                let ops: &[Op] = &cur_code.ops;
                loop {
                    debug_assert!(pc < ops.len(), "pc escaped the op array");
                    // SAFETY: `pc` is always in bounds. Lowering clamps every
                    // branch target into `0..=len-1` and appends a diverging
                    // `Corrupt(Pc)` sentinel at `len-1`; the fused remap maps
                    // targets onto group starts and latch `fall` indices onto
                    // `cmpbr+1 <= len-1`; `enter!` sets `pc = 0` (every lowering
                    // is non-empty), `ret!` restores `invoke_pc + 1 <= len-1`
                    // (an `Invoke` is never the sentinel), and sequential
                    // `pc += 1` from a non-sentinel op lands at most on the
                    // sentinel, which returns before the next fetch.
                    let cur_op = unsafe { ops.get_unchecked(pc) };
                    match cur_op {
                        Op::ConstVal(v) => {
                            pro!();
                            push!(*v);
                        }
                        Op::Load(s) => {
                            pro!();
                            let v = self.regs.get(base + *s as usize);
                            push!(v);
                        }
                        Op::Store(s) => {
                            pro!();
                            let v = pop!();
                            self.regs.set(base + *s as usize, v);
                        }
                        Op::GetField(fi) => {
                            pro!();
                            let obj = pop!();
                            match obj.tag {
                                Tag::Null => return Err(ExecError::NullReference),
                                Tag::Ref => {
                                    let object = self
                                        .heap
                                        .get(obj.bits as usize)
                                        .ok_or(ExecError::VmCorrupt("dangling reference"))?;
                                    let table = &cur_code.tables.fields[*fi as usize];
                                    let off = table.offsets[object.class];
                                    if off == NO_FIELD {
                                        return Err(ExecError::NoSuchField {
                                            class: self.image.classes[object.class].name.clone(),
                                            field: table.name.to_string(),
                                        });
                                    }
                                    let v = slot::pack(object.fields[off as usize]);
                                    push!(v);
                                }
                                _ => {
                                    return Err(ExecError::TypeMismatch(
                                        "field access on non-object",
                                    ))
                                }
                            }
                        }
                        Op::PutField(fi) => {
                            pro!();
                            let value = pop!();
                            let obj = pop!();
                            match obj.tag {
                                Tag::Null => return Err(ExecError::NullReference),
                                Tag::Ref => {
                                    let object = self
                                        .heap
                                        .get_mut(obj.bits as usize)
                                        .ok_or(ExecError::VmCorrupt("dangling reference"))?;
                                    let class = object.class;
                                    let table = &cur_code.tables.fields[*fi as usize];
                                    let off = table.offsets[class];
                                    if off == NO_FIELD {
                                        return Err(ExecError::NoSuchField {
                                            class: self.image.classes[class].name.clone(),
                                            field: table.name.to_string(),
                                        });
                                    }
                                    object.fields[off as usize] = slot::unpack(value);
                                }
                                _ => {
                                    return Err(ExecError::TypeMismatch(
                                        "field access on non-object",
                                    ))
                                }
                            }
                        }
                        Op::GetStatic(si) => {
                            pro!();
                            let v = self.statics.get(*si as usize);
                            push!(v);
                        }
                        Op::PutStatic(si) => {
                            pro!();
                            let v = pop!();
                            self.statics.set(*si as usize, v);
                        }
                        Op::Arith(op) => {
                            pro!();
                            let b = pop!();
                            let a = pop!();
                            push!(slot::arith(*op, a, b)?);
                        }
                        Op::ArithII(op) => {
                            pro!();
                            let b = pop!();
                            let a = pop!();
                            push!(slot_arith!(*op, true, a, b)?);
                        }
                        Op::Cmp(op) => {
                            pro!();
                            let b = pop!();
                            let a = pop!();
                            push!(slot::compare(*op, a, b)?);
                        }
                        Op::CmpII(op) => {
                            pro!();
                            let b = pop!();
                            let a = pop!();
                            push!(slot_cmp!(*op, true, a, b)?);
                        }
                        Op::Neg => {
                            pro!();
                            let v = pop!();
                            push!(slot::negate(v)?);
                        }
                        Op::Not => {
                            pro!();
                            let v = pop!();
                            push!(slot::boolean_not(v)?);
                        }
                        Op::Jump { target, backedge } => {
                            pro!();
                            if *backedge {
                                self.profile.backedges[cur_mid] += 1;
                            }
                            pc = *target as usize;
                            continue;
                        }
                        Op::JumpIfFalse(target) => {
                            pro!();
                            let v = pop!();
                            if v.tag != Tag::Bool {
                                return Err(ExecError::TypeMismatch("branch on non-boolean"));
                            }
                            if v.bits == 0 {
                                pc = *target as usize;
                                continue;
                            }
                        }
                        Op::Invoke(ci) => {
                            pro!();
                            let info = &cur_code.tables.calls[*ci as usize];
                            let argn = info.argc as usize;
                            if sp - floor < argn {
                                return Err(ExecError::VmCorrupt("operand stack underflow"));
                            }
                            let recv = if info.pops_recv {
                                if sp - floor < argn + 1 {
                                    return Err(ExecError::VmCorrupt("operand stack underflow"));
                                }
                                Some(require_recv(self.regs.get(sp - argn - 1))?)
                            } else {
                                None
                            };
                            match &info.action {
                                CallAction::Fail(e) => return Err(e.clone()),
                                CallAction::Goto { mid, needs_recv } => {
                                    let recv = if *needs_recv {
                                        Some(recv.ok_or(ExecError::NullReference)?)
                                    } else {
                                        None
                                    };
                                    let (mid, pops_recv) = (*mid as usize, info.pops_recv);
                                    enter!('frame, mid, recv, argn, pops_recv)
                                }
                            }
                        }
                        Op::InvokeVirtual(vi) => {
                            pro!();
                            let vc = &cur_code.tables.vcalls[*vi as usize];
                            let argn = vc.argc as usize;
                            if sp - floor < argn + 1 {
                                return Err(ExecError::VmCorrupt("operand stack underflow"));
                            }
                            let recv = require_recv(self.regs.get(sp - argn - 1))?;
                            let class = self
                                .heap
                                .get(recv.bits as usize)
                                .ok_or(ExecError::VmCorrupt("dangling reference"))?
                                .class;
                            match vc.targets[class] {
                                VTarget::NoMethod | VTarget::Arity => {
                                    return Err(ExecError::NoSuchMethod {
                                        class: self.image.classes[class].name.clone(),
                                        method: vc.name.to_string(),
                                    })
                                }
                                VTarget::Goto { mid, needs_recv } => {
                                    let recv = needs_recv.then_some(recv);
                                    enter!('frame, mid as usize, recv, argn, true)
                                }
                            }
                        }
                        Op::InvokeReflect(ri) => {
                            pro!();
                            self.stats.reflective_calls += 1;
                            let rc = &cur_code.tables.rcalls[*ri as usize];
                            let argn = rc.argc as usize;
                            let pops = argn + usize::from(rc.pops_recv);
                            if sp - floor < pops {
                                return Err(ExecError::VmCorrupt("operand stack underflow"));
                            }
                            let recv_raw = rc.pops_recv.then(|| self.regs.get(sp - argn - 1));
                            match &rc.action {
                                CallAction::Fail(e) => return Err(e.clone()),
                                CallAction::Goto { mid, needs_recv } => {
                                    let recv = if *needs_recv {
                                        match recv_raw {
                                            None => return Err(ExecError::NullReference),
                                            Some(v) => Some(require_recv(v)?),
                                        }
                                    } else {
                                        None
                                    };
                                    let (mid, pops_recv) = (*mid as usize, rc.pops_recv);
                                    enter!('frame, mid, recv, argn, pops_recv)
                                }
                            }
                        }
                        Op::New(cid) => {
                            pro!();
                            self.stats.allocations += 1;
                            let defaults = self.image.classes[*cid as usize].field_defaults();
                            let oid = self.heap.alloc(*cid as usize, defaults);
                            push!(Slot {
                                bits: oid as u64,
                                tag: Tag::Ref,
                            });
                        }
                        Op::BoxInt => {
                            pro!();
                            self.stats.boxes += 1;
                            let v = pop!();
                            match v.tag {
                                Tag::Int => push!(Slot {
                                    bits: v.bits,
                                    tag: Tag::Boxed,
                                }),
                                _ => return Err(ExecError::TypeMismatch("boxing a non-int")),
                            }
                        }
                        Op::UnboxInt => {
                            pro!();
                            self.stats.unboxes += 1;
                            let v = pop!();
                            match v.tag {
                                Tag::Boxed => push!(Slot {
                                    bits: v.bits,
                                    tag: Tag::Int,
                                }),
                                Tag::Null => return Err(ExecError::NullReference),
                                _ => return Err(ExecError::TypeMismatch("unboxing a non-Integer")),
                            }
                        }
                        Op::MonitorEnter => {
                            pro!();
                            self.stats.monitor_enters += 1;
                            let v = pop!();
                            match v.tag {
                                Tag::Ref => {
                                    let obj = self
                                        .heap
                                        .get_mut(v.bits as usize)
                                        .ok_or(ExecError::VmCorrupt("dangling reference"))?;
                                    obj.monitor_depth += 1;
                                }
                                Tag::Null => return Err(ExecError::NullReference),
                                _ => return Err(ExecError::TypeMismatch("monitor on non-object")),
                            }
                        }
                        Op::MonitorExit => {
                            pro!();
                            self.stats.monitor_exits += 1;
                            let v = pop!();
                            match v.tag {
                                Tag::Ref => {
                                    let obj = self
                                        .heap
                                        .get_mut(v.bits as usize)
                                        .ok_or(ExecError::VmCorrupt("dangling reference"))?;
                                    if obj.monitor_depth == 0 {
                                        return Err(ExecError::IllegalMonitorState);
                                    }
                                    obj.monitor_depth -= 1;
                                }
                                Tag::Null => return Err(ExecError::NullReference),
                                _ => return Err(ExecError::TypeMismatch("monitor on non-object")),
                            }
                        }
                        Op::Print => {
                            pro!();
                            self.stats.prints += 1;
                            let v = pop!();
                            self.output.push(slot::unpack(v).to_string());
                        }
                        Op::Pop => {
                            pro!();
                            let _ = pop!();
                        }
                        Op::Dup => {
                            pro!();
                            if sp == floor {
                                return Err(ExecError::VmCorrupt("operand stack underflow"));
                            }
                            let v = self.regs.get(sp - 1);
                            push!(v);
                        }
                        Op::ReturnV => {
                            pro!();
                            let v = pop!();
                            ret!('frame, v)
                        }
                        Op::Return => {
                            pro!();
                            ret!('frame, NULL);
                        }
                        // ---- superinstructions ----
                        //
                        // The prologue above accounted for the group's first
                        // constituent instruction; `tick!` accounts each further
                        // one, interleaved exactly where the unfused loop would
                        // (tick, then execute), so fuel exhaustion, watchdog
                        // polls, and error step counts are bit-identical.
                        Op::Push2 { a, b } => {
                            batched!(2, fast);
                            mtick!(fast);
                            let av = fetch!(a);
                            mtick!(fast);
                            let bv = fetch!(b);
                            push!(av);
                            push!(bv);
                        }
                        Op::Move { src, dst } => {
                            batched!(2, fast);
                            mtick!(fast);
                            let v = fetch!(src);
                            mtick!(fast);
                            match dst {
                                Sink::Local(s) => self.regs.set(base + *s as usize, v),
                                Sink::Static(s) => self.statics.set(*s as usize, v),
                                Sink::Push => push!(v),
                            }
                        }
                        Op::GetFieldL { slot: lsl, fi } => {
                            batched!(2, fast);
                            mtick!(fast);
                            let obj = self.regs.get(base + *lsl as usize);
                            mtick!(fast);
                            match obj.tag {
                                Tag::Null => return Err(ExecError::NullReference),
                                Tag::Ref => {
                                    let object = self
                                        .heap
                                        .get(obj.bits as usize)
                                        .ok_or(ExecError::VmCorrupt("dangling reference"))?;
                                    let table = &cur_code.tables.fields[*fi as usize];
                                    let off = table.offsets[object.class];
                                    if off == NO_FIELD {
                                        return Err(ExecError::NoSuchField {
                                            class: self.image.classes[object.class].name.clone(),
                                            field: table.name.to_string(),
                                        });
                                    }
                                    let v = slot::pack(object.fields[off as usize]);
                                    push!(v);
                                }
                                _ => {
                                    return Err(ExecError::TypeMismatch(
                                        "field access on non-object",
                                    ))
                                }
                            }
                        }
                        Op::Bin { op, ii, a, b, sink } => {
                            // Full micro width: fetches, the arith, and a
                            // non-push sink.
                            let sinkbit = u64::from(!matches!(sink, Sink::Push));
                            let width = match (a, b) {
                                (Src::Stack, Src::Stack) => 1,
                                (Src::Stack, _) => 2,
                                _ => 3,
                            } + sinkbit;
                            batched!(width, fast);
                            mtick!(fast);
                            // Operand order mirrors the unfused sequence: `a`
                            // was fetched (or pushed) first. With a single fused
                            // fetch the stack holds `a` and the fetch is `b`.
                            let (av, bv) = match (a, b) {
                                (Src::Stack, Src::Stack) => {
                                    let bv = pop!();
                                    (pop!(), bv)
                                }
                                (Src::Stack, bsrc) => {
                                    let bv = fetch!(bsrc);
                                    mtick!(fast);
                                    (pop!(), bv)
                                }
                                (asrc, bsrc) => {
                                    let av = fetch!(asrc);
                                    mtick!(fast);
                                    let bv = fetch!(bsrc);
                                    mtick!(fast);
                                    (av, bv)
                                }
                            };
                            let res = match slot_arith!(*op, *ii, av, bv) {
                                Ok(v) => v,
                                Err(e) => {
                                    // Batched accounting overshot the sink micro
                                    // the unfused loop never reaches.
                                    if fast {
                                        fuel += sinkbit;
                                        steps -= sinkbit;
                                    }
                                    return Err(e);
                                }
                            };
                            match sink {
                                Sink::Push => push!(res),
                                Sink::Local(s) => {
                                    mtick!(fast);
                                    self.regs.set(base + *s as usize, res);
                                }
                                Sink::Static(s) => {
                                    mtick!(fast);
                                    self.statics.set(*s as usize, res);
                                }
                            }
                        }
                        Op::CmpBr {
                            op,
                            ii,
                            a,
                            b,
                            target,
                        } => {
                            let width = match (a, b) {
                                (Src::Stack, Src::Stack) => 2,
                                (Src::Stack, _) => 3,
                                _ => 4,
                            };
                            batched!(width, fast);
                            mtick!(fast);
                            let (av, bv) = match (a, b) {
                                (Src::Stack, Src::Stack) => {
                                    let bv = pop!();
                                    (pop!(), bv)
                                }
                                (Src::Stack, bsrc) => {
                                    let bv = fetch!(bsrc);
                                    mtick!(fast);
                                    (pop!(), bv)
                                }
                                (asrc, bsrc) => {
                                    let av = fetch!(asrc);
                                    mtick!(fast);
                                    let bv = fetch!(bsrc);
                                    mtick!(fast);
                                    (av, bv)
                                }
                            };
                            let res = match slot_cmp!(*op, *ii, av, bv) {
                                Ok(v) => v,
                                Err(e) => {
                                    if fast {
                                        fuel += 1;
                                        steps -= 1;
                                    }
                                    return Err(e);
                                }
                            };
                            mtick!(fast);
                            // `compare` only ever yields a boolean.
                            debug_assert_eq!(res.tag, Tag::Bool);
                            if res.bits == 0 {
                                pc = *target as usize;
                                continue;
                            }
                        }
                        Op::JumpCmpBr {
                            op,
                            ii,
                            a,
                            b,
                            exit,
                            fall,
                        } => {
                            // The fused loop latch: the backward `Jump` (the
                            // first micro, which counts the backedge) plus the
                            // `CmpBr` group it lands on.
                            let width = match (a, b) {
                                (Src::Stack, Src::Stack) => 3,
                                (Src::Stack, _) => 4,
                                _ => 5,
                            };
                            batched!(width, fast);
                            mtick!(fast);
                            self.profile.backedges[cur_mid] += 1;
                            let (av, bv) = match (a, b) {
                                (Src::Stack, Src::Stack) => {
                                    mtick!(fast);
                                    let bv = pop!();
                                    (pop!(), bv)
                                }
                                (Src::Stack, bsrc) => {
                                    mtick!(fast);
                                    let bv = fetch!(bsrc);
                                    mtick!(fast);
                                    (pop!(), bv)
                                }
                                (asrc, bsrc) => {
                                    mtick!(fast);
                                    let av = fetch!(asrc);
                                    mtick!(fast);
                                    let bv = fetch!(bsrc);
                                    mtick!(fast);
                                    (av, bv)
                                }
                            };
                            let res = match slot_cmp!(*op, *ii, av, bv) {
                                Ok(v) => v,
                                Err(e) => {
                                    if fast {
                                        fuel += 1;
                                        steps -= 1;
                                    }
                                    return Err(e);
                                }
                            };
                            mtick!(fast);
                            debug_assert_eq!(res.tag, Tag::Bool);
                            pc = if res.bits == 0 {
                                *exit as usize
                            } else {
                                *fall as usize
                            };
                            continue;
                        }
                        Op::Chain3 {
                            a,
                            b,
                            c,
                            op1,
                            op2,
                            ii1,
                            ii2,
                            right,
                            sink,
                        } => {
                            let sinkbit = u64::from(!matches!(sink, Sink::Push));
                            batched!(5 + sinkbit, fast);
                            mtick!(fast);
                            let av = fetch!(a);
                            mtick!(fast);
                            let bv = fetch!(b);
                            let res = if *right {
                                // `a op2 (b op1 c)` — micro order a b c op1 op2.
                                mtick!(fast);
                                let cv = fetch!(c);
                                mtick!(fast);
                                let r1 = match slot_arith!(*op1, *ii1, bv, cv) {
                                    Ok(v) => v,
                                    Err(e) => {
                                        if fast {
                                            fuel += 1 + sinkbit;
                                            steps -= 1 + sinkbit;
                                        }
                                        return Err(e);
                                    }
                                };
                                mtick!(fast);
                                match slot_arith!(*op2, *ii2, av, r1) {
                                    Ok(v) => v,
                                    Err(e) => {
                                        if fast {
                                            fuel += sinkbit;
                                            steps -= sinkbit;
                                        }
                                        return Err(e);
                                    }
                                }
                            } else {
                                // `(a op1 b) op2 c` — micro order a b op1 c op2.
                                mtick!(fast);
                                let r1 = match slot_arith!(*op1, *ii1, av, bv) {
                                    Ok(v) => v,
                                    Err(e) => {
                                        if fast {
                                            fuel += 2 + sinkbit;
                                            steps -= 2 + sinkbit;
                                        }
                                        return Err(e);
                                    }
                                };
                                mtick!(fast);
                                let cv = fetch!(c);
                                mtick!(fast);
                                match slot_arith!(*op2, *ii2, r1, cv) {
                                    Ok(v) => v,
                                    Err(e) => {
                                        if fast {
                                            fuel += sinkbit;
                                            steps -= sinkbit;
                                        }
                                        return Err(e);
                                    }
                                }
                            };
                            match sink {
                                Sink::Push => push!(res),
                                Sink::Local(s) => {
                                    mtick!(fast);
                                    self.regs.set(base + *s as usize, res);
                                }
                                Sink::Static(s) => {
                                    mtick!(fast);
                                    self.statics.set(*s as usize, res);
                                }
                            }
                        }
                        Op::IncLatch {
                            iop,
                            iop_ii,
                            islot,
                            ic,
                            dst,
                            cop,
                            cop_ii,
                            ca,
                            cb,
                            exit,
                            fall,
                        } => {
                            // Micro order: load-islot const arith store jump
                            // [fetch ca] [fetch cb] cmp br.
                            let nf = match (ca, cb) {
                                (Src::Stack, Src::Stack) => 0u64,
                                (Src::Stack, _) => 1,
                                _ => 2,
                            };
                            batched!(7 + nf, fast);
                            mtick!(fast);
                            let av = self.regs.get(base + *islot as usize);
                            mtick!(fast);
                            mtick!(fast);
                            let r = match slot_arith!(*iop, *iop_ii, av, *ic) {
                                Ok(v) => v,
                                Err(e) => {
                                    if fast {
                                        fuel += 4 + nf;
                                        steps -= 4 + nf;
                                    }
                                    return Err(e);
                                }
                            };
                            mtick!(fast);
                            self.regs.set(base + *dst as usize, r);
                            mtick!(fast);
                            self.profile.backedges[cur_mid] += 1;
                            let (cav, cbv) = match (ca, cb) {
                                (Src::Stack, Src::Stack) => {
                                    mtick!(fast);
                                    let bv = pop!();
                                    (pop!(), bv)
                                }
                                (Src::Stack, bsrc) => {
                                    mtick!(fast);
                                    let bv = fetch!(bsrc);
                                    mtick!(fast);
                                    (pop!(), bv)
                                }
                                (asrc, bsrc) => {
                                    mtick!(fast);
                                    let cav = fetch!(asrc);
                                    mtick!(fast);
                                    let cbv = fetch!(bsrc);
                                    mtick!(fast);
                                    (cav, cbv)
                                }
                            };
                            let res = match slot_cmp!(*cop, *cop_ii, cav, cbv) {
                                Ok(v) => v,
                                Err(e) => {
                                    if fast {
                                        fuel += 1;
                                        steps -= 1;
                                    }
                                    return Err(e);
                                }
                            };
                            mtick!(fast);
                            debug_assert_eq!(res.tag, Tag::Bool);
                            pc = if res.bits == 0 {
                                *exit as usize
                            } else {
                                *fall as usize
                            };
                            continue;
                        }
                        Op::InlineCall(ix) => {
                            // The `Invoke` micro (ticked by the prologue),
                            // then the callee's straight-line body with
                            // per-micro accounting — step-identical to the
                            // real call, minus the frame push.
                            pro!();
                            let info = &cur_code.inlines[*ix as usize];
                            let argn = info.argc as usize;
                            let pops = argn + usize::from(info.recv);
                            if sp - floor < pops {
                                return Err(ExecError::VmCorrupt("operand stack underflow"));
                            }
                            if info.recv {
                                require_recv(self.regs.get(sp - argn - 1))?;
                            }
                            if saved.len() + 1 >= self.max_call_depth {
                                return Err(ExecError::StackOverflow);
                            }
                            self.profile.invocations[info.mid as usize] += 1;
                            self.stats.calls += 1;
                            self.inlined += 1;
                            // The callee window sits directly on the popped
                            // receiver + arguments, exactly like `enter!`.
                            let cbase = sp - pops;
                            let cfloor = cbase + info.n_locals as usize;
                            self.regs.reserve_to(cfloor + info.max_stack as usize);
                            for i in (cbase + pops)..cfloor {
                                self.regs.set(i, NULL);
                            }
                            self.stats.max_depth = self.stats.max_depth.max(saved.len() + 2);
                            let body = &info.body;
                            let total = body.len() as u64;
                            batched!(total, fast);
                            let mut done: u64 = 0;
                            let mut csp = cfloor;
                            let mut retv = NULL;
                            /// Mid-body error exit: rolls back the batched
                            /// overshoot for the micros never reached.
                            macro_rules! ierr {
                                ($e:expr) => {{
                                    if fast {
                                        let over = total - done;
                                        fuel += over;
                                        steps -= over;
                                    }
                                    return Err($e);
                                }};
                            }
                            macro_rules! ipop {
                                () => {{
                                    if csp == cfloor {
                                        ierr!(ExecError::VmCorrupt("operand stack underflow"));
                                    }
                                    csp -= 1;
                                    self.regs.get(csp)
                                }};
                            }
                            macro_rules! ipush {
                                ($v:expr) => {{
                                    let v: Slot = $v;
                                    if csp == self.regs.len() {
                                        self.regs.push(v);
                                    } else {
                                        self.regs.set(csp, v);
                                    }
                                    csp += 1;
                                }};
                            }
                            'leaf: for lop in body.iter() {
                                mtick!(fast);
                                done += 1;
                                match lop {
                                    LeafOp::Const(v) => ipush!(*v),
                                    LeafOp::Load(s) => {
                                        let v = self.regs.get(cbase + *s as usize);
                                        ipush!(v);
                                    }
                                    LeafOp::Store(s) => {
                                        let v = ipop!();
                                        self.regs.set(cbase + *s as usize, v);
                                    }
                                    LeafOp::Arith(op) => {
                                        let b = ipop!();
                                        let a = ipop!();
                                        match slot::arith(*op, a, b) {
                                            Ok(v) => ipush!(v),
                                            Err(e) => ierr!(e),
                                        }
                                    }
                                    LeafOp::Cmp(op) => {
                                        let b = ipop!();
                                        let a = ipop!();
                                        match slot::compare(*op, a, b) {
                                            Ok(v) => ipush!(v),
                                            Err(e) => ierr!(e),
                                        }
                                    }
                                    LeafOp::Neg => {
                                        let v = ipop!();
                                        match slot::negate(v) {
                                            Ok(v) => ipush!(v),
                                            Err(e) => ierr!(e),
                                        }
                                    }
                                    LeafOp::Not => {
                                        let v = ipop!();
                                        match slot::boolean_not(v) {
                                            Ok(v) => ipush!(v),
                                            Err(e) => ierr!(e),
                                        }
                                    }
                                    LeafOp::Dup => {
                                        if csp == cfloor {
                                            ierr!(ExecError::VmCorrupt("operand stack underflow"));
                                        }
                                        let v = self.regs.get(csp - 1);
                                        ipush!(v);
                                    }
                                    LeafOp::Pop => {
                                        let _ = ipop!();
                                    }
                                    LeafOp::ReturnV => {
                                        retv = ipop!();
                                        break 'leaf;
                                    }
                                    LeafOp::Return => {
                                        break 'leaf;
                                    }
                                }
                            }
                            sp = cbase;
                            push!(retv);
                        }
                        Op::Corrupt(kind) => {
                            pro!();
                            return Err(ExecError::VmCorrupt(kind.msg()));
                        }
                        Op::HostPanic(what) => {
                            pro!();
                            match what {
                                BadRef::Method => panic!("invalid method id in hand-built code"),
                                BadRef::Class => panic!("invalid class id in hand-built code"),
                            }
                        }
                    }
                    pc += 1;
                }
            }
        };
        let result = dispatch();
        self.fuel = fuel;
        self.stats.steps = steps;
        result
    }
}

fn require_recv(v: Slot) -> Result<Slot, ExecError> {
    match v.tag {
        Tag::Null => Err(ExecError::NullReference),
        Tag::Ref => Ok(v),
        _ => Err(ExecError::TypeMismatch("receiver is not an object")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp;

    /// Interp and threaded agree on the full Outcome (output, error, stats,
    /// profile) for a source program.
    fn assert_equivalent(src: &str) {
        let image = Image::build(&mjava::parse(src).unwrap()).unwrap();
        let config = ExecConfig::default();
        let threaded = run(&image, &config);
        let interp = interp::run(&image, &config);
        assert_eq!(threaded, interp, "substrates diverged on:\n{src}");
    }

    #[test]
    fn matches_interp_on_core_behaviours() {
        for src in [
            "class T { static void main() { System.out.println(2 + 3 * 4); } }",
            "class T { static void main() { int s = 0; for (int i = 0; i < 100; i++) { s = s + i; } System.out.println(s); } }",
            "class T { int f; int bump(int d) { f = f + d; return f; } static void main() { T t = new T(); t.bump(5); System.out.println(t.bump(7)); } }",
            "class T { static int s = 10; static void inc() { s = s + 1; } static void main() { T.inc(); T.inc(); System.out.println(s); } }",
            "class T { static void main() { synchronized (T.class) { synchronized (T.class) { System.out.println(1); } } } }",
            "class T { int f; int get(int d) { return f + d; } static void main() { T t = new T(); t.f = 40; System.out.println(Class.forName(\"T\").getDeclaredMethod(\"get\").invoke(t, 2)); } }",
            "class T { static void main() { System.out.println(Class.forName(\"Nope\").getDeclaredMethod(\"g\").invoke(null)); } }",
            "class T { static void main() { Integer b = Integer.valueOf(20); System.out.println(b.intValue() + 22); } }",
            "class T { static void main() { System.out.println(1 / 0); } }",
            "class T { int f; static void main() { T t = null; System.out.println(t.f); } }",
            "class T { static int down(int n) { return T.down(n + 1); } static void main() { System.out.println(T.down(0)); } }",
            "class T { static int fib(int n) { if (n < 2) { return n; } return T.fib(n - 1) + T.fib(n - 2); } static void main() { System.out.println(T.fib(15)); } }",
            "class T { static void main() { System.out.println(2147483647 + 1); } }",
            "class T { static int g() { synchronized (T.class) { return 5; } } static void main() { System.out.println(T.g()); } }",
            // Representation hazards for the untagged slot encoding: long
            // overflow, int/long width crossings, and values whose low 32
            // bits collide with small ints.
            "class T { static void main() { long a = 9223372036854775807L; System.out.println(a + 1L); } }",
            "class T { static void main() { long a = 4294967296L; System.out.println(a / 2L); } }",
            "class T { static long twice(long x) { return x + x; } static void main() { System.out.println(T.twice(3000000000L)); } }",
            "class T { static void main() { long a = -1L; int b = -1; System.out.println(a == -1L); System.out.println(b == -1); } }",
            "class T { static void main() { System.out.println(9000000000L % 7L); } }",
        ] {
            assert_equivalent(src);
        }
    }

    #[test]
    fn matches_interp_on_all_builtin_seeds() {
        for seed in mjava::samples::all_seeds() {
            let image = Image::build(&seed.program).unwrap();
            let config = ExecConfig::default();
            let threaded = run(&image, &config);
            let interp = interp::run(&image, &config);
            assert_eq!(
                threaded, interp,
                "substrates diverged on seed {}",
                seed.name
            );
            assert!(threaded.is_clean(), "seed {} errored", seed.name);
        }
    }

    #[test]
    fn fuel_exhaustion_is_step_exact() {
        let program =
            mjava::parse("class T { static void main() { while (true) { int x = 1; } } }").unwrap();
        let image = Image::build(&program).unwrap();
        let config = ExecConfig {
            fuel: 10_000,
            ..ExecConfig::default()
        };
        let threaded = run(&image, &config);
        let interp = interp::run(&image, &config);
        assert_eq!(threaded.error, Some(ExecError::OutOfFuel));
        assert_eq!(threaded, interp);
        assert_eq!(threaded.stats.steps, 10_000);
    }

    #[test]
    fn hand_built_dup_pop_and_direct_invoke() {
        use crate::code::{Code, Instr};
        let program =
            mjava::parse("class T { int f; int get() { return f; } static void main() { } }")
                .unwrap();
        let mut image = Image::build(&program).unwrap();
        let get = image.method_id("T", "get").unwrap();
        let main = image.main();
        let code = Code {
            instrs: vec![
                Instr::New(0),
                Instr::Dup,
                Instr::Dup,
                Instr::ConstI(41),
                Instr::PutField("f".into()),
                Instr::Pop,
                Instr::Invoke {
                    method: get,
                    argc: 0,
                    has_recv: true,
                },
                Instr::ConstI(1),
                Instr::Arith(crate::code::ArithOp::Add),
                Instr::Print,
                Instr::Return,
            ],
            n_locals: 0,
            max_stack: 4,
        };
        image.install_code(main, code);
        let threaded = run(&image, &ExecConfig::default());
        let interp = interp::run(&image, &ExecConfig::default());
        assert_eq!(threaded, interp);
        assert_eq!(threaded.output, vec!["42"]);
    }

    #[test]
    fn corrupt_code_matches_interp() {
        use crate::code::{Code, Instr};
        // (code, expected error) pairs exercising lowering-time rejection.
        let cases: Vec<(Vec<Instr>, ExecError)> = vec![
            (
                vec![Instr::Pop, Instr::Return],
                ExecError::VmCorrupt("operand stack underflow"),
            ),
            (
                vec![Instr::Load(9), Instr::Return],
                ExecError::VmCorrupt("local slot out of range"),
            ),
            (
                vec![Instr::ConstI(1), Instr::Store(9), Instr::Return],
                ExecError::VmCorrupt("local slot out of range"),
            ),
            (
                vec![Instr::GetStatic(0, 7), Instr::Return],
                ExecError::VmCorrupt("static slot out of range"),
            ),
            (
                vec![Instr::Jump(99)],
                ExecError::VmCorrupt("pc out of range"),
            ),
            (
                vec![Instr::ConstI(1), Instr::Pop],
                ExecError::VmCorrupt("pc out of range"),
            ),
        ];
        for (instrs, want) in cases {
            let program = mjava::parse("class T { static void main() { } }").unwrap();
            let mut image = Image::build(&program).unwrap();
            let main = image.main();
            let max_stack = Code::compute_max_stack(&instrs);
            image.install_code(
                main,
                Code {
                    instrs,
                    n_locals: 0,
                    max_stack,
                },
            );
            let threaded = run(&image, &ExecConfig::default());
            let interp = interp::run(&image, &ExecConfig::default());
            assert_eq!(threaded.error, Some(want));
            assert_eq!(threaded, interp);
        }
    }

    #[test]
    fn profiler_attribution_matches_interp() {
        let src = r#"
            class T {
                static int f(int i) { return i * 2; }
                static void main() {
                    int s = 0;
                    for (int i = 0; i < 50; i++) { s = s + T.f(i); }
                    System.out.println(s);
                }
            }
        "#;
        let image = Image::build(&mjava::parse(src).unwrap()).unwrap();
        let mut snaps = Vec::new();
        for threaded in [true, false] {
            jtelemetry::install(jtelemetry::Session::from_spec(jtelemetry::SessionSpec {
                manual: true,
                trace: false,
                profile: true,
            }));
            let o = if threaded {
                run(&image, &ExecConfig::default())
            } else {
                interp::run(&image, &ExecConfig::default())
            };
            assert!(o.is_clean());
            let snap = jtelemetry::take().unwrap().snapshot();
            let total: u64 = snap.opcodes.iter().map(|op| op.hits).sum();
            assert_eq!(total, o.stats.steps, "every step lands on one opcode");
            snaps.push(snap.opcodes);
        }
        assert_eq!(snaps[0], snaps[1], "per-opcode tables must be identical");
    }

    #[test]
    fn code_cache_shares_lowering_across_runs() {
        cache_reset();
        let image = Image::build(
            &mjava::parse("class T { static void main() { System.out.println(3); } }").unwrap(),
        )
        .unwrap();
        let _ = take_lookup_log();
        let first = run(&image, &ExecConfig::default());
        let log1 = take_lookup_log();
        let stats1 = cache_stats();
        let second = run(&image, &ExecConfig::default());
        let log2 = take_lookup_log();
        let stats2 = cache_stats();
        assert_eq!(first, second);
        assert_eq!(log1, log2, "lookup keys are a pure function of the run");
        assert_eq!(log1.len(), 1, "only main is ever called");
        assert!(stats2.hits > stats1.hits, "second run hits the cache");
        assert_eq!(stats2.misses, stats1.misses, "second run lowers nothing");
    }

    #[test]
    fn install_code_invalidates_exactly_that_method() {
        use crate::code::{Code, Instr};
        cache_reset();
        let mut image = Image::build(
            &mjava::parse("class T { static void main() { System.out.println(3); } }").unwrap(),
        )
        .unwrap();
        let _ = take_lookup_log();
        let _ = run(&image, &ExecConfig::default());
        let log_before = take_lookup_log();
        image.install_code(
            image.main(),
            Code {
                instrs: vec![Instr::ConstI(9), Instr::Print, Instr::Return],
                n_locals: 0,
                max_stack: 1,
            },
        );
        let o = run(&image, &ExecConfig::default());
        let log_after = take_lookup_log();
        assert_eq!(o.output, vec!["9"]);
        assert_ne!(log_before, log_after, "tier-up must change the cache key");
    }

    /// Leaf inlining must be invisible in the step/fuel accounting: every
    /// fuel budget from zero to "runs to completion" yields exactly the
    /// interpreter's outcome, including mid-inlined-body fuel exhaustion.
    #[test]
    fn leaf_calls_inline_step_exact_under_fuel_sweep() {
        let src = "class T { static int f(int a, int b) { return a * b + 1; } static void main() { int s = 0; for (int i = 0; i < 40; i++) { s = s + T.f(i, 3); } System.out.println(s); } }";
        let image = Image::build(&mjava::parse(src).unwrap()).unwrap();
        let full = interp::run(&image, &ExecConfig::default());
        assert!(full.is_clean());
        let total = full.stats.steps;
        for fuel in (0..=total).step_by(7) {
            let config = ExecConfig {
                fuel,
                ..ExecConfig::default()
            };
            let threaded = run(&image, &config);
            let interp = interp::run(&image, &config);
            assert_eq!(threaded, interp, "diverged at fuel {fuel}");
        }
    }

    /// Inlining actually fires on tiny leaf calls, and installing new code
    /// into the leaf re-lowers its callers (the cache key covers direct
    /// callee fingerprints), so stale inlined bodies never execute.
    #[test]
    fn leaf_inlining_fires_and_is_invalidated_by_install_code() {
        use crate::code::{Code, Instr};
        cache_reset();
        let src = "class T { static int one() { return 1; } static void main() { System.out.println(T.one() + T.one()); } }";
        let mut image = Image::build(&mjava::parse(src).unwrap()).unwrap();
        let one = image.method_id("T", "one").unwrap();
        let _ = take_inline_count();
        let o = run(&image, &ExecConfig::default());
        assert_eq!(o.output, vec!["2"]);
        assert_eq!(take_inline_count(), 2, "both call sites inline");
        assert_eq!(o, interp::run(&image, &ExecConfig::default()));
        image.install_code(
            one,
            Code {
                instrs: vec![Instr::ConstI(9), Instr::ReturnV],
                n_locals: 0,
                max_stack: 1,
            },
        );
        let o2 = run(&image, &ExecConfig::default());
        assert_eq!(o2.output, vec!["18"], "caller re-lowered with new body");
        assert_eq!(o2, interp::run(&image, &ExecConfig::default()));
    }

    /// The lowering-time type recovery only claims int×int when it proved
    /// it on every path; a long operand anywhere must leave the generic op.
    #[test]
    fn int_fact_recovery_is_conservative() {
        use crate::code::{ArithOp, Code, Instr};
        let int_code = Code {
            instrs: vec![
                Instr::ConstI(1),
                Instr::ConstI(2),
                Instr::Arith(ArithOp::Add),
                Instr::Print,
                Instr::Return,
            ],
            n_locals: 0,
            max_stack: 2,
        };
        assert!(int_facts(&int_code)[2], "int+int is provable");
        let long_code = Code {
            instrs: vec![
                Instr::ConstI(1),
                Instr::ConstL(2),
                Instr::Arith(ArithOp::Add),
                Instr::Print,
                Instr::Return,
            ],
            n_locals: 0,
            max_stack: 2,
        };
        assert!(!int_facts(&long_code)[2], "int+long must stay generic");
        let merge_code = Code {
            instrs: vec![
                // A join point where one predecessor carries a long: the
                // merged fact must drop to Any.
                Instr::ConstB(true),
                Instr::JumpIfFalse(4),
                Instr::ConstI(7),
                Instr::Jump(5),
                Instr::ConstL(7),
                Instr::ConstI(1),
                Instr::Arith(ArithOp::Add),
                Instr::Print,
                Instr::Return,
            ],
            n_locals: 0,
            max_stack: 2,
        };
        assert!(
            !int_facts(&merge_code)[6],
            "join of int and long is not int"
        );
    }
}
