//! Executable image: the resolved, loaded form of a program.
//!
//! Building an image performs the work of class loading and verification:
//! duplicate detection, member resolution, and compilation of every method
//! body to bytecode. The JIT tier later *re*-compiles individual methods
//! from their (optimized) ASTs and swaps the code in via
//! [`Image::install_code`].

use crate::code::{Code, MethodId};
use crate::compile::compile_method_ast;
use crate::error::BuildError;
use crate::value::{ClassId, Value};
use std::collections::HashMap;

/// One field in a class layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldLayout {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: mjava::Type,
    /// Initial value (from the literal initializer, or the type default).
    pub init: Value,
}

/// The loaded form of one class.
#[derive(Debug, Clone)]
pub struct ClassImage {
    /// Class name.
    pub name: String,
    /// Instance field layout.
    pub instance_fields: Vec<FieldLayout>,
    /// Static field layout.
    pub static_fields: Vec<FieldLayout>,
    /// Methods by name (MiniJava has no overloading).
    pub method_index: HashMap<String, MethodId>,
}

impl ClassImage {
    /// Offset of an instance field.
    pub fn instance_offset(&self, name: &str) -> Option<usize> {
        self.instance_fields.iter().position(|f| f.name == name)
    }

    /// Offset of a static field.
    pub fn static_offset(&self, name: &str) -> Option<usize> {
        self.static_fields.iter().position(|f| f.name == name)
    }

    /// Default instance field values for allocation.
    pub fn field_defaults(&self) -> Vec<Value> {
        self.instance_fields.iter().map(|f| f.init).collect()
    }
}

/// The loaded form of one method.
#[derive(Debug, Clone)]
pub struct MethodImage {
    /// Owning class.
    pub class: ClassId,
    /// Method name.
    pub name: String,
    /// True for static methods.
    pub is_static: bool,
    /// True for `synchronized` methods.
    pub is_sync: bool,
    /// Parameter types.
    pub params: Vec<mjava::Type>,
    /// Return type.
    pub ret: mjava::Type,
    /// Currently installed executable code (interpreter tier at load time;
    /// the JIT tier replaces this).
    pub code: Code,
    /// The source AST, retained for the JIT.
    pub source: mjava::Method,
    /// True once JIT-compiled code has been installed.
    pub is_compiled: bool,
}

/// A fully resolved, executable program image.
#[derive(Debug, Clone)]
pub struct Image {
    /// Classes; the index is the [`ClassId`].
    pub classes: Vec<ClassImage>,
    /// Global method table; the index is the [`MethodId`].
    pub methods: Vec<MethodImage>,
    class_index: HashMap<String, ClassId>,
    main: MethodId,
}

impl Image {
    /// Resolves and compiles `program` into an executable image.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] for duplicate classes or members, a missing
    /// `static main()`, unresolved names, or ill-formed calls — the
    /// MiniJava analogue of a class-loading/verification failure.
    pub fn build(program: &mjava::Program) -> Result<Image, BuildError> {
        // Pass 1: class and member skeletons.
        let mut class_index = HashMap::new();
        for (ci, class) in program.classes.iter().enumerate() {
            if class_index.insert(class.name.clone(), ci).is_some() {
                return Err(BuildError::DuplicateClass(class.name.clone()));
            }
        }
        let mut classes = Vec::with_capacity(program.classes.len());
        let mut methods: Vec<MethodImage> = Vec::new();
        for (ci, class) in program.classes.iter().enumerate() {
            let mut seen = std::collections::HashSet::new();
            let mut instance_fields = Vec::new();
            let mut static_fields = Vec::new();
            for field in &class.fields {
                if !seen.insert(field.name.clone()) {
                    return Err(BuildError::DuplicateMember {
                        class: class.name.clone(),
                        member: field.name.clone(),
                    });
                }
                let init = match &field.init {
                    Some(mjava::Expr::Int(v)) => Value::Int(*v as i32),
                    Some(mjava::Expr::Long(v)) => Value::Long(*v),
                    Some(mjava::Expr::Bool(b)) => Value::Bool(*b),
                    Some(mjava::Expr::Null) | None => Value::default_of(&field.ty),
                    Some(_) => Value::default_of(&field.ty),
                };
                let layout = FieldLayout {
                    name: field.name.clone(),
                    ty: field.ty.clone(),
                    init,
                };
                if field.is_static {
                    static_fields.push(layout);
                } else {
                    instance_fields.push(layout);
                }
            }
            let mut method_index = HashMap::new();
            for method in &class.methods {
                if !seen.insert(method.name.clone()) {
                    return Err(BuildError::DuplicateMember {
                        class: class.name.clone(),
                        member: method.name.clone(),
                    });
                }
                let mid = methods.len();
                method_index.insert(method.name.clone(), mid);
                methods.push(MethodImage {
                    class: ci,
                    name: method.name.clone(),
                    is_static: method.is_static,
                    is_sync: method.is_sync,
                    params: method.params.iter().map(|p| p.ty.clone()).collect(),
                    ret: method.ret.clone(),
                    code: Code::default(),
                    source: method.clone(),
                    is_compiled: false,
                });
            }
            classes.push(ClassImage {
                name: class.name.clone(),
                instance_fields,
                static_fields,
                method_index,
            });
        }
        let main = program
            .main_method()
            .and_then(|(ci, mi_local)| {
                let class = &program.classes[ci];
                classes[ci].method_index.get(&class.methods[mi_local].name)
            })
            .copied()
            .ok_or(BuildError::NoMain)?;

        let mut image = Image {
            classes,
            methods,
            class_index,
            main,
        };

        // Pass 2: compile every body against the resolved skeletons.
        for mid in 0..image.methods.len() {
            let source = image.methods[mid].source.clone();
            let class = image.methods[mid].class;
            let code = compile_method_ast(&image, class, &source)?;
            image.methods[mid].code = code;
        }
        Ok(image)
    }

    /// Looks up a class id by name.
    pub fn class_id(&self, name: &str) -> Option<ClassId> {
        self.class_index.get(name).copied()
    }

    /// Looks up a method id by class and method name.
    pub fn method_id(&self, class: &str, method: &str) -> Option<MethodId> {
        let cid = self.class_id(class)?;
        self.classes[cid].method_index.get(method).copied()
    }

    /// The entry point (`static main`).
    pub fn main(&self) -> MethodId {
        self.main
    }

    /// Replaces a method's executable code — the tier-up operation the
    /// simulated JIT performs after optimizing the method.
    ///
    /// # Panics
    ///
    /// Panics if `method` is out of range.
    pub fn install_code(&mut self, method: MethodId, code: Code) {
        self.methods[method].code = code;
        self.methods[method].is_compiled = true;
    }

    /// Initial static field values, per class, for interpreter start-up.
    pub fn static_defaults(&self) -> Vec<Vec<Value>> {
        self.classes
            .iter()
            .map(|c| c.static_fields.iter().map(|f| f.init).collect())
            .collect()
    }
}

impl PartialEq for Image {
    fn eq(&self, other: &Self) -> bool {
        // Structural equality over names is enough for tests.
        self.class_index == other.class_index && self.main == other.main
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(src: &str) -> Result<Image, BuildError> {
        Image::build(&mjava::parse(src).unwrap())
    }

    #[test]
    fn builds_simple_program() {
        let image = build(
            "class T { int f; static long s = 9L; static void main() { } int g(int a) { return a; } }",
        )
        .unwrap();
        assert_eq!(image.classes.len(), 1);
        assert_eq!(image.methods.len(), 2);
        assert_eq!(image.methods[image.main()].name, "main");
        let t = &image.classes[0];
        assert_eq!(t.instance_offset("f"), Some(0));
        assert_eq!(t.static_offset("s"), Some(0));
        assert_eq!(t.static_fields[0].init, Value::Long(9));
        assert!(image.method_id("T", "g").is_some());
        assert!(image.method_id("T", "nope").is_none());
    }

    #[test]
    fn rejects_missing_main() {
        assert_eq!(build("class T { }"), err_kind(BuildError::NoMain));
    }

    fn err_kind(e: BuildError) -> Result<Image, BuildError> {
        Err(e)
    }

    #[test]
    fn rejects_duplicate_class() {
        let r = build("class T { static void main() { } } class T { }");
        assert!(matches!(r, Err(BuildError::DuplicateClass(_))));
    }

    #[test]
    fn rejects_duplicate_member() {
        let r = build("class T { int f; int f; static void main() { } }");
        assert!(matches!(r, Err(BuildError::DuplicateMember { .. })));
    }

    #[test]
    fn install_code_marks_compiled() {
        let mut image = build("class T { static void main() { } }").unwrap();
        assert!(!image.methods[0].is_compiled);
        let code = image.methods[0].code.clone();
        image.install_code(0, code);
        assert!(image.methods[0].is_compiled);
    }

    #[test]
    fn static_defaults_cover_all_classes() {
        let image = build(
            "class A { static int x = 4; static void main() { } } class B { static boolean b; }",
        )
        .unwrap();
        let defaults = image.static_defaults();
        assert_eq!(defaults[0], vec![Value::Int(4)]);
        assert_eq!(defaults[1], vec![Value::Bool(false)]);
    }
}
