//! Executable image: the resolved, loaded form of a program.
//!
//! Building an image performs the work of class loading and verification:
//! duplicate detection, member resolution, and compilation of every method
//! body to bytecode. The JIT tier later *re*-compiles individual methods
//! from their (optimized) ASTs and swaps the code in via
//! [`Image::install_code`].

use crate::code::{Code, MethodId};
use crate::compile::compile_method_ast;
use crate::error::BuildError;
use crate::value::{ClassId, Value};
use std::collections::HashMap;

/// One field in a class layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldLayout {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: mjava::Type,
    /// Initial value (from the literal initializer, or the type default).
    pub init: Value,
}

/// The loaded form of one class.
#[derive(Debug, Clone)]
pub struct ClassImage {
    /// Class name.
    pub name: String,
    /// Instance field layout.
    pub instance_fields: Vec<FieldLayout>,
    /// Static field layout.
    pub static_fields: Vec<FieldLayout>,
    /// Methods by name (MiniJava has no overloading).
    pub method_index: HashMap<String, MethodId>,
}

impl ClassImage {
    /// Offset of an instance field.
    pub fn instance_offset(&self, name: &str) -> Option<usize> {
        self.instance_fields.iter().position(|f| f.name == name)
    }

    /// Offset of a static field.
    pub fn static_offset(&self, name: &str) -> Option<usize> {
        self.static_fields.iter().position(|f| f.name == name)
    }

    /// Default instance field values for allocation.
    pub fn field_defaults(&self) -> Vec<Value> {
        self.instance_fields.iter().map(|f| f.init).collect()
    }
}

/// The loaded form of one method.
#[derive(Debug, Clone)]
pub struct MethodImage {
    /// Owning class.
    pub class: ClassId,
    /// Method name.
    pub name: String,
    /// True for static methods.
    pub is_static: bool,
    /// True for `synchronized` methods.
    pub is_sync: bool,
    /// Parameter types.
    pub params: Vec<mjava::Type>,
    /// Return type.
    pub ret: mjava::Type,
    /// Currently installed executable code (interpreter tier at load time;
    /// the JIT tier replaces this).
    pub code: Code,
    /// The source AST, retained for the JIT.
    pub source: mjava::Method,
    /// True once JIT-compiled code has been installed.
    pub is_compiled: bool,
    /// Fingerprint of the currently installed [`Code`], kept in sync by
    /// [`Image::build`] and [`Image::install_code`]. Together with the
    /// image's [`Image::shape_fp`] it keys the threaded-substrate code
    /// cache, so a JIT tier-up invalidates exactly this method's entry.
    pub code_fp: u64,
}

/// A fully resolved, executable program image.
#[derive(Debug, Clone)]
pub struct Image {
    /// Classes; the index is the [`ClassId`].
    pub classes: Vec<ClassImage>,
    /// Global method table; the index is the [`MethodId`].
    pub methods: Vec<MethodImage>,
    class_index: HashMap<String, ClassId>,
    main: MethodId,
    shape_fp: u64,
}

/// 64-bit FNV-1a, the fingerprint primitive for cache keys.
#[derive(Clone, Copy)]
pub(crate) struct Fnv(pub u64);

impl Fnv {
    pub(crate) fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn byte(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    pub(crate) fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    pub(crate) fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        for b in s.as_bytes() {
            self.byte(*b);
        }
    }
}

impl Image {
    /// Resolves and compiles `program` into an executable image.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] for duplicate classes or members, a missing
    /// `static main()`, unresolved names, or ill-formed calls — the
    /// MiniJava analogue of a class-loading/verification failure.
    pub fn build(program: &mjava::Program) -> Result<Image, BuildError> {
        // Pass 1: class and member skeletons.
        let mut class_index = HashMap::new();
        for (ci, class) in program.classes.iter().enumerate() {
            if class_index.insert(class.name.clone(), ci).is_some() {
                return Err(BuildError::DuplicateClass(class.name.clone()));
            }
        }
        let mut classes = Vec::with_capacity(program.classes.len());
        let mut methods: Vec<MethodImage> = Vec::new();
        for (ci, class) in program.classes.iter().enumerate() {
            let mut seen = std::collections::HashSet::new();
            let mut instance_fields = Vec::new();
            let mut static_fields = Vec::new();
            for field in &class.fields {
                if !seen.insert(field.name.clone()) {
                    return Err(BuildError::DuplicateMember {
                        class: class.name.clone(),
                        member: field.name.clone(),
                    });
                }
                let init = match &field.init {
                    Some(mjava::Expr::Int(v)) => Value::Int(*v as i32),
                    Some(mjava::Expr::Long(v)) => Value::Long(*v),
                    Some(mjava::Expr::Bool(b)) => Value::Bool(*b),
                    Some(mjava::Expr::Null) | None => Value::default_of(&field.ty),
                    Some(_) => Value::default_of(&field.ty),
                };
                let layout = FieldLayout {
                    name: field.name.clone(),
                    ty: field.ty.clone(),
                    init,
                };
                if field.is_static {
                    static_fields.push(layout);
                } else {
                    instance_fields.push(layout);
                }
            }
            let mut method_index = HashMap::new();
            for method in &class.methods {
                if !seen.insert(method.name.clone()) {
                    return Err(BuildError::DuplicateMember {
                        class: class.name.clone(),
                        member: method.name.clone(),
                    });
                }
                let mid = methods.len();
                method_index.insert(method.name.clone(), mid);
                methods.push(MethodImage {
                    class: ci,
                    name: method.name.clone(),
                    is_static: method.is_static,
                    is_sync: method.is_sync,
                    params: method.params.iter().map(|p| p.ty.clone()).collect(),
                    ret: method.ret.clone(),
                    code: Code::default(),
                    source: method.clone(),
                    is_compiled: false,
                    code_fp: 0,
                });
            }
            classes.push(ClassImage {
                name: class.name.clone(),
                instance_fields,
                static_fields,
                method_index,
            });
        }
        let main = program
            .main_method()
            .and_then(|(ci, mi_local)| {
                let class = &program.classes[ci];
                classes[ci].method_index.get(&class.methods[mi_local].name)
            })
            .copied()
            .ok_or(BuildError::NoMain)?;

        let mut image = Image {
            classes,
            methods,
            class_index,
            main,
            shape_fp: 0,
        };
        image.shape_fp = image.compute_shape_fp();

        // Pass 2: compile every body against the resolved skeletons.
        for mid in 0..image.methods.len() {
            let source = image.methods[mid].source.clone();
            let class = image.methods[mid].class;
            let code = compile_method_ast(&image, class, &source)?;
            image.methods[mid].code_fp = code_fingerprint(&code);
            image.methods[mid].code = code;
        }
        Ok(image)
    }

    /// Fingerprint of everything the threaded-substrate lowering reads
    /// besides the method's own [`Code`]: class names and layouts, static
    /// layouts, method directories, and method signatures. Two images with
    /// the same shape fingerprint resolve identical bytecode identically,
    /// which is what makes (shape, code) a sound code-cache key.
    pub fn shape_fp(&self) -> u64 {
        self.shape_fp
    }

    fn compute_shape_fp(&self) -> u64 {
        let mut h = Fnv::new();
        h.u64(self.classes.len() as u64);
        for class in &self.classes {
            h.str(&class.name);
            h.u64(class.instance_fields.len() as u64);
            for f in &class.instance_fields {
                h.str(&f.name);
            }
            h.u64(class.static_fields.len() as u64);
            for f in &class.static_fields {
                h.str(&f.name);
            }
            // Method directories, in a deterministic order.
            let mut dir: Vec<(&String, &MethodId)> = class.method_index.iter().collect();
            dir.sort();
            h.u64(dir.len() as u64);
            for (name, mid) in dir {
                h.str(name);
                h.u64(*mid as u64);
            }
        }
        h.u64(self.methods.len() as u64);
        for m in &self.methods {
            h.u64(m.class as u64);
            h.str(&m.name);
            h.byte(u8::from(m.is_static));
            h.u64(m.params.len() as u64);
        }
        h.u64(self.main as u64);
        h.0
    }

    /// Looks up a class id by name.
    pub fn class_id(&self, name: &str) -> Option<ClassId> {
        self.class_index.get(name).copied()
    }

    /// Looks up a method id by class and method name.
    pub fn method_id(&self, class: &str, method: &str) -> Option<MethodId> {
        let cid = self.class_id(class)?;
        self.classes[cid].method_index.get(method).copied()
    }

    /// The entry point (`static main`).
    pub fn main(&self) -> MethodId {
        self.main
    }

    /// Replaces a method's executable code — the tier-up operation the
    /// simulated JIT performs after optimizing the method.
    ///
    /// # Panics
    ///
    /// Panics if `method` is out of range.
    pub fn install_code(&mut self, method: MethodId, code: Code) {
        self.methods[method].code_fp = code_fingerprint(&code);
        self.methods[method].code = code;
        self.methods[method].is_compiled = true;
    }

    /// Initial static field values, per class, for interpreter start-up.
    pub fn static_defaults(&self) -> Vec<Vec<Value>> {
        self.classes
            .iter()
            .map(|c| c.static_fields.iter().map(|f| f.init).collect())
            .collect()
    }
}

/// Content fingerprint of one method's [`Code`] (instructions, operands,
/// and local-slot count). Computed once per install, not per lookup.
pub fn code_fingerprint(code: &Code) -> u64 {
    use crate::code::Instr;
    let mut h = Fnv::new();
    h.u64(code.n_locals as u64);
    h.u64(code.instrs.len() as u64);
    for instr in &code.instrs {
        match instr {
            Instr::ConstI(v) => {
                h.byte(0);
                h.u64(*v as u32 as u64);
            }
            Instr::ConstL(v) => {
                h.byte(1);
                h.u64(*v as u64);
            }
            Instr::ConstB(b) => {
                h.byte(2);
                h.byte(u8::from(*b));
            }
            Instr::ConstNull => h.byte(3),
            Instr::ClassObj(cid) => {
                h.byte(4);
                h.u64(*cid as u64);
            }
            Instr::Load(s) => {
                h.byte(5);
                h.u64(u64::from(*s));
            }
            Instr::Store(s) => {
                h.byte(6);
                h.u64(u64::from(*s));
            }
            Instr::GetField(name) => {
                h.byte(7);
                h.str(name);
            }
            Instr::PutField(name) => {
                h.byte(8);
                h.str(name);
            }
            Instr::GetStatic(cid, off) => {
                h.byte(9);
                h.u64(*cid as u64);
                h.u64(u64::from(*off));
            }
            Instr::PutStatic(cid, off) => {
                h.byte(10);
                h.u64(*cid as u64);
                h.u64(u64::from(*off));
            }
            Instr::Arith(op) => {
                h.byte(11);
                h.byte(*op as u8);
            }
            Instr::Cmp(op) => {
                h.byte(12);
                h.byte(*op as u8);
            }
            Instr::Neg => h.byte(13),
            Instr::Not => h.byte(14),
            Instr::Jump(t) => {
                h.byte(15);
                h.u64(*t as u64);
            }
            Instr::JumpIfFalse(t) => {
                h.byte(16);
                h.u64(*t as u64);
            }
            Instr::Invoke {
                method,
                argc,
                has_recv,
            } => {
                h.byte(17);
                h.u64(*method as u64);
                h.byte(*argc);
                h.byte(u8::from(*has_recv));
            }
            Instr::InvokeVirtual { method, argc } => {
                h.byte(18);
                h.str(method);
                h.byte(*argc);
            }
            Instr::InvokeReflect {
                class,
                method,
                has_recv,
                argc,
            } => {
                h.byte(19);
                h.str(class);
                h.str(method);
                h.byte(u8::from(*has_recv));
                h.byte(*argc);
            }
            Instr::New(cid) => {
                h.byte(20);
                h.u64(*cid as u64);
            }
            Instr::BoxInt => h.byte(21),
            Instr::UnboxInt => h.byte(22),
            Instr::MonitorEnter => h.byte(23),
            Instr::MonitorExit => h.byte(24),
            Instr::Print => h.byte(25),
            Instr::Pop => h.byte(26),
            Instr::Dup => h.byte(27),
            Instr::ReturnV => h.byte(28),
            Instr::Return => h.byte(29),
        }
    }
    h.0
}

impl PartialEq for Image {
    fn eq(&self, other: &Self) -> bool {
        // Structural equality over names is enough for tests.
        self.class_index == other.class_index && self.main == other.main
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(src: &str) -> Result<Image, BuildError> {
        Image::build(&mjava::parse(src).unwrap())
    }

    #[test]
    fn builds_simple_program() {
        let image = build(
            "class T { int f; static long s = 9L; static void main() { } int g(int a) { return a; } }",
        )
        .unwrap();
        assert_eq!(image.classes.len(), 1);
        assert_eq!(image.methods.len(), 2);
        assert_eq!(image.methods[image.main()].name, "main");
        let t = &image.classes[0];
        assert_eq!(t.instance_offset("f"), Some(0));
        assert_eq!(t.static_offset("s"), Some(0));
        assert_eq!(t.static_fields[0].init, Value::Long(9));
        assert!(image.method_id("T", "g").is_some());
        assert!(image.method_id("T", "nope").is_none());
    }

    #[test]
    fn rejects_missing_main() {
        assert_eq!(build("class T { }"), err_kind(BuildError::NoMain));
    }

    fn err_kind(e: BuildError) -> Result<Image, BuildError> {
        Err(e)
    }

    #[test]
    fn rejects_duplicate_class() {
        let r = build("class T { static void main() { } } class T { }");
        assert!(matches!(r, Err(BuildError::DuplicateClass(_))));
    }

    #[test]
    fn rejects_duplicate_member() {
        let r = build("class T { int f; int f; static void main() { } }");
        assert!(matches!(r, Err(BuildError::DuplicateMember { .. })));
    }

    #[test]
    fn install_code_marks_compiled() {
        let mut image = build("class T { static void main() { } }").unwrap();
        assert!(!image.methods[0].is_compiled);
        let code = image.methods[0].code.clone();
        image.install_code(0, code);
        assert!(image.methods[0].is_compiled);
    }

    #[test]
    fn fingerprints_are_stable_and_content_sensitive() {
        let src = "class T { int f; static void main() { } int g(int a) { return a + f; } }";
        let a = build(src).unwrap();
        let b = build(src).unwrap();
        assert_eq!(a.shape_fp(), b.shape_fp());
        for mid in 0..a.methods.len() {
            assert_eq!(a.methods[mid].code_fp, b.methods[mid].code_fp);
            assert_eq!(
                a.methods[mid].code_fp,
                code_fingerprint(&a.methods[mid].code)
            );
        }
        let other =
            build("class T { int f; static void main() { } int g(int a) { return a - f; } }")
                .unwrap();
        let g = a.method_id("T", "g").unwrap();
        assert_ne!(a.methods[g].code_fp, other.methods[g].code_fp);
    }

    #[test]
    fn install_code_refreshes_fingerprint() {
        let mut image = build("class T { static void main() { } }").unwrap();
        let before = image.methods[0].code_fp;
        image.install_code(
            0,
            Code {
                instrs: vec![
                    crate::code::Instr::ConstI(7),
                    crate::code::Instr::Print,
                    crate::code::Instr::Return,
                ],
                n_locals: 0,
                max_stack: 1,
            },
        );
        assert_ne!(image.methods[0].code_fp, before);
        assert_eq!(
            image.methods[0].code_fp,
            code_fingerprint(&image.methods[0].code)
        );
    }

    #[test]
    fn static_defaults_cover_all_classes() {
        let image = build(
            "class A { static int x = 4; static void main() { } } class B { static boolean b; }",
        )
        .unwrap();
        let defaults = image.static_defaults();
        assert_eq!(defaults[0], vec![Value::Int(4)]);
        assert_eq!(defaults[1], vec![Value::Bool(false)]);
    }
}
