//! Error types for image building and execution.

use std::error::Error;
use std::fmt;

/// An error detected while resolving a program into an executable image —
/// the analogue of a class-loading/verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// Two classes share a name.
    DuplicateClass(String),
    /// Two members of one class share a name.
    DuplicateMember { class: String, member: String },
    /// No `static main()` method exists.
    NoMain,
    /// A `Ref` type names a class that does not exist.
    UnknownClass(String),
    /// A static member reference cannot be resolved.
    UnknownStatic { class: String, member: String },
    /// A name used as a variable is not a local, parameter or field.
    UnresolvedName { method: String, name: String },
    /// `this` used in a static method.
    ThisInStatic { method: String },
    /// A statically resolved call passes the wrong number of arguments.
    ArityMismatch { class: String, method: String },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::DuplicateClass(c) => write!(f, "duplicate class {c}"),
            BuildError::DuplicateMember { class, member } => {
                write!(f, "duplicate member {member} in class {class}")
            }
            BuildError::NoMain => write!(f, "no static main() method"),
            BuildError::UnknownClass(c) => write!(f, "unknown class {c}"),
            BuildError::UnknownStatic { class, member } => {
                write!(f, "unknown static member {class}.{member}")
            }
            BuildError::UnresolvedName { method, name } => {
                write!(f, "unresolved name {name} in method {method}")
            }
            BuildError::ThisInStatic { method } => {
                write!(f, "`this` used in static method {method}")
            }
            BuildError::ArityMismatch { class, method } => {
                write!(f, "wrong number of arguments for {class}.{method}")
            }
        }
    }
}

impl Error for BuildError {}

/// A runtime failure. The variants mirror the Java exceptions the paper's
/// test programs can raise plus the VM-internal states that a broken JIT
/// can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// Integer division or remainder by zero (`ArithmeticException`).
    DivisionByZero,
    /// Dereference of `null` (`NullPointerException`).
    NullReference,
    /// `Class.forName` on a missing class (`ClassNotFoundException`).
    NoSuchClass(String),
    /// Reflective lookup of a missing method (`NoSuchMethodException`).
    NoSuchMethod { class: String, method: String },
    /// Access of a missing field (only reachable through VM corruption).
    NoSuchField { class: String, field: String },
    /// Monitor exited more often than entered, or left locked at method
    /// exit (`IllegalMonitorStateException`) — the signature symptom of a
    /// broken lock optimization.
    IllegalMonitorState,
    /// Call stack exceeded the configured limit (`StackOverflowError`).
    StackOverflow,
    /// Execution exceeded the instruction budget; treated as a timeout.
    OutOfFuel,
    /// An operand had the wrong kind — a VM-level verification failure that
    /// well-formed programs cannot reach.
    TypeMismatch(&'static str),
    /// Operand stack or local slot misuse — likewise VM-internal.
    VmCorrupt(&'static str),
}

impl ExecError {
    /// True for errors a conforming JVM surfaces as Java exceptions — these
    /// are deterministic program behaviour, not VM defects.
    pub fn is_program_level(&self) -> bool {
        matches!(
            self,
            ExecError::DivisionByZero
                | ExecError::NullReference
                | ExecError::NoSuchClass(_)
                | ExecError::NoSuchMethod { .. }
                | ExecError::StackOverflow
        )
    }

    /// The Java exception name used when reporting program-level errors in
    /// the output stream.
    pub fn java_name(&self) -> &'static str {
        match self {
            ExecError::DivisionByZero => "java.lang.ArithmeticException",
            ExecError::NullReference => "java.lang.NullPointerException",
            ExecError::NoSuchClass(_) => "java.lang.ClassNotFoundException",
            ExecError::NoSuchMethod { .. } => "java.lang.NoSuchMethodException",
            ExecError::NoSuchField { .. } => "java.lang.NoSuchFieldException",
            ExecError::IllegalMonitorState => "java.lang.IllegalMonitorStateException",
            ExecError::StackOverflow => "java.lang.StackOverflowError",
            ExecError::OutOfFuel => "<timeout>",
            ExecError::TypeMismatch(_) | ExecError::VmCorrupt(_) => "<vm-internal-error>",
        }
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::DivisionByZero => write!(f, "division by zero"),
            ExecError::NullReference => write!(f, "null reference"),
            ExecError::NoSuchClass(c) => write!(f, "class not found: {c}"),
            ExecError::NoSuchMethod { class, method } => {
                write!(f, "no such method: {class}.{method}")
            }
            ExecError::NoSuchField { class, field } => {
                write!(f, "no such field: {class}.{field}")
            }
            ExecError::IllegalMonitorState => write!(f, "illegal monitor state"),
            ExecError::StackOverflow => write!(f, "stack overflow"),
            ExecError::OutOfFuel => write!(f, "instruction budget exhausted"),
            ExecError::TypeMismatch(what) => write!(f, "type mismatch: {what}"),
            ExecError::VmCorrupt(what) => write!(f, "vm corrupt: {what}"),
        }
    }
}

impl Error for ExecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_level_classification() {
        assert!(ExecError::DivisionByZero.is_program_level());
        assert!(ExecError::NullReference.is_program_level());
        assert!(!ExecError::OutOfFuel.is_program_level());
        assert!(!ExecError::IllegalMonitorState.is_program_level());
        assert!(!ExecError::TypeMismatch("x").is_program_level());
    }

    #[test]
    fn java_names_present() {
        assert_eq!(
            ExecError::DivisionByZero.java_name(),
            "java.lang.ArithmeticException"
        );
        assert_eq!(ExecError::OutOfFuel.java_name(), "<timeout>");
    }

    #[test]
    fn displays_are_nonempty() {
        for e in [
            ExecError::DivisionByZero,
            ExecError::NullReference,
            ExecError::NoSuchClass("X".into()),
            ExecError::IllegalMonitorState,
            ExecError::StackOverflow,
            ExecError::OutOfFuel,
        ] {
            assert!(!e.to_string().is_empty());
        }
        assert!(!BuildError::NoMain.to_string().is_empty());
    }
}
