//! The stack-machine bytecode executed by the interpreter.

use crate::value::ClassId;
use std::fmt;

/// Identifier of a method in the global method table of an image.
pub type MethodId = usize;

/// A bytecode instruction. Jump targets are absolute instruction indices
/// within the owning method's code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instr {
    /// Push an `int` constant.
    ConstI(i32),
    /// Push a `long` constant.
    ConstL(i64),
    /// Push a boolean constant.
    ConstB(bool),
    /// Push `null`.
    ConstNull,
    /// Push the per-class lock object of a class (`T.class`).
    ClassObj(ClassId),
    /// Load a local slot.
    Load(u16),
    /// Store into a local slot.
    Store(u16),
    /// Pop an object reference and push the named field's value.
    GetField(String),
    /// Pop a value then an object reference; store into the named field.
    PutField(String),
    /// Push a static field (class id + slot resolved at compile time).
    GetStatic(ClassId, u16),
    /// Pop into a static field.
    PutStatic(ClassId, u16),
    /// Binary arithmetic on the top two stack values.
    Arith(ArithOp),
    /// Comparison of the top two stack values, pushing a boolean.
    Cmp(CmpOp),
    /// Arithmetic negation of the top value.
    Neg,
    /// Boolean negation of the top value.
    Not,
    /// Unconditional jump.
    Jump(usize),
    /// Pop a boolean; jump when false.
    JumpIfFalse(usize),
    /// Call a statically resolved method. The receiver (for instance
    /// methods) sits below the arguments on the stack.
    Invoke {
        /// Target method.
        method: MethodId,
        /// Number of declared parameters (excluding the receiver).
        argc: u8,
        /// Whether a receiver must be popped below the arguments.
        has_recv: bool,
    },
    /// Call a method by dynamic name lookup on the receiver's class.
    InvokeVirtual {
        /// Method name, resolved against the runtime class of the receiver.
        method: String,
        /// Number of declared parameters.
        argc: u8,
    },
    /// Reflective call: `Class.forName(class).getDeclaredMethod(method)
    /// .invoke(recv, args..)`; class and method resolve at runtime.
    InvokeReflect {
        /// Class name string.
        class: String,
        /// Method name string.
        method: String,
        /// Whether a receiver is passed (instance target).
        has_recv: bool,
        /// Number of arguments (excluding the receiver).
        argc: u8,
    },
    /// Allocate an instance of a class.
    New(ClassId),
    /// Box the top `int` into an `Integer`.
    BoxInt,
    /// Unbox the top `Integer` into an `int`.
    UnboxInt,
    /// Pop an object reference and enter its monitor.
    MonitorEnter,
    /// Pop an object reference and exit its monitor.
    MonitorExit,
    /// Pop a value and append its textual form to the program output.
    Print,
    /// Discard the top of stack.
    Pop,
    /// Duplicate the top of stack.
    Dup,
    /// Return with the top of stack as value.
    ReturnV,
    /// Return without a value.
    Return,
}

/// Arithmetic opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArithOp::Add => "add",
            ArithOp::Sub => "sub",
            ArithOp::Mul => "mul",
            ArithOp::Div => "div",
            ArithOp::Rem => "rem",
            ArithOp::And => "and",
            ArithOp::Or => "or",
            ArithOp::Xor => "xor",
            ArithOp::Shl => "shl",
            ArithOp::Shr => "shr",
        };
        write!(f, "{s}")
    }
}

/// Comparison opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
        };
        write!(f, "{s}")
    }
}

/// Compiled code of one method.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Code {
    /// Instruction sequence.
    pub instrs: Vec<Instr>,
    /// Number of local slots (parameters included).
    pub n_locals: u16,
    /// Upper bound on operand-stack depth, computed by
    /// [`Code::compute_max_stack`] at lowering time. Both execution
    /// substrates preallocate frame stacks to this size; correctness never
    /// depends on it (stacks still grow), so an understated value in
    /// hand-built code is merely a missed preallocation.
    pub max_stack: u16,
}

impl Code {
    /// Computes the operand-stack bound for an instruction sequence by a
    /// linear scan over per-instruction stack effects. For compiler-emitted
    /// code (structured control flow, depth 0 at statement boundaries) the
    /// bound is exact; for arbitrary hand-built code it is a best-effort
    /// estimate clamped at zero.
    pub fn compute_max_stack(instrs: &[Instr]) -> u16 {
        let mut cur: i64 = 0;
        let mut max: i64 = 0;
        for instr in instrs {
            let delta: i64 = match instr {
                Instr::ConstI(_)
                | Instr::ConstL(_)
                | Instr::ConstB(_)
                | Instr::ConstNull
                | Instr::ClassObj(_)
                | Instr::Load(_)
                | Instr::GetStatic(..)
                | Instr::New(_)
                | Instr::Dup => 1,
                Instr::GetField(_)
                | Instr::Neg
                | Instr::Not
                | Instr::BoxInt
                | Instr::UnboxInt
                | Instr::Jump(_)
                | Instr::Return => 0,
                Instr::Store(_)
                | Instr::PutStatic(..)
                | Instr::Arith(_)
                | Instr::Cmp(_)
                | Instr::JumpIfFalse(_)
                | Instr::MonitorEnter
                | Instr::MonitorExit
                | Instr::Print
                | Instr::Pop
                | Instr::ReturnV => -1,
                Instr::PutField(_) => -2,
                Instr::Invoke { argc, has_recv, .. } => 1 - i64::from(*argc) - i64::from(*has_recv),
                Instr::InvokeVirtual { argc, .. } => -i64::from(*argc),
                Instr::InvokeReflect { argc, has_recv, .. } => {
                    1 - i64::from(*argc) - i64::from(*has_recv)
                }
            };
            cur = (cur + delta).max(0);
            max = max.max(cur);
        }
        max.min(u16::MAX as i64) as u16
    }
    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True when the method has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Renders a human-readable listing, one instruction per line.
    pub fn listing(&self) -> String {
        let mut out = String::new();
        for (i, instr) in self.instrs.iter().enumerate() {
            out.push_str(&format!("{i:4}: {instr:?}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listing_numbers_instructions() {
        let code = Code {
            instrs: vec![Instr::ConstI(1), Instr::Print, Instr::Return],
            n_locals: 0,
            max_stack: 1,
        };
        let listing = code.listing();
        assert!(listing.contains("0: ConstI(1)"));
        assert!(listing.contains("2: Return"));
        assert_eq!(code.len(), 3);
        assert!(!code.is_empty());
    }

    #[test]
    fn op_displays() {
        assert_eq!(ArithOp::Add.to_string(), "add");
        assert_eq!(CmpOp::Ne.to_string(), "ne");
    }

    #[test]
    fn max_stack_tracks_expression_depth() {
        // 1 + 2 * 3 → ConstI ConstI ConstI Arith Arith: peak 3.
        let instrs = vec![
            Instr::ConstI(1),
            Instr::ConstI(2),
            Instr::ConstI(3),
            Instr::Arith(ArithOp::Mul),
            Instr::Arith(ArithOp::Add),
            Instr::Print,
            Instr::Return,
        ];
        assert_eq!(Code::compute_max_stack(&instrs), 3);
        // Calls net one value from their args + receiver.
        let call = vec![
            Instr::New(0),
            Instr::ConstI(1),
            Instr::ConstI(2),
            Instr::InvokeVirtual {
                method: "m".into(),
                argc: 2,
            },
            Instr::Pop,
            Instr::Return,
        ];
        assert_eq!(Code::compute_max_stack(&call), 3);
        // Underflowing hand-built code clamps at zero instead of wrapping.
        assert_eq!(Code::compute_max_stack(&[Instr::Pop, Instr::Return]), 0);
    }
}
