//! The untagged 64-bit slot representation used by the threaded substrate's
//! register file.
//!
//! [`crate::value::Value`] is a 16-byte tagged enum; the threaded dispatch
//! loop instead keeps every operand as a raw `u64` payload plus a one-byte
//! [`Tag`], stored in the two parallel arrays of the register-file arena
//! (`threaded::RegFile`). A [`Slot`] is the in-register pairing of the two
//! while a value is being operated on.
//!
//! Packing is canonical so that identical values have identical bit
//! patterns (slot equality on `(bits, tag)` is value equality):
//!
//! * `Int`/`Boxed` zero-extend their `i32` payload into the low 32 bits
//!   (the high 32 bits are always zero);
//! * `Long` is the raw two's-complement `i64`;
//! * `Bool` is `0`/`1`;
//! * `Ref` is the object id; `Null` is `0`.
//!
//! The operator functions here mirror [`crate::ops`] exactly — same
//! results, same error values, same error priority. Every case that is not
//! a hand-written fast path falls back to unpacking and calling the shared
//! [`crate::ops`] implementation, so a semantic divergence is only possible
//! in the fast paths, which the unit tests below sweep differentially
//! against `ops` over the representation's hazard corners (`i32::MIN / -1`,
//! wrap boundaries, sign extension across the `u64` packing, `Int(-1)` vs
//! `Long(0xFFFF_FFFF)` bit collisions, masked shifts, `Null` vs `Ref(0)`).

use crate::code::{ArithOp, CmpOp};
use crate::error::ExecError;
use crate::value::Value;

/// Runtime type of a register-file slot. Lives in the arena's tag array,
/// parallel to the `u64` payload array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub(crate) enum Tag {
    /// 32-bit integer; payload zero-extended into the low 32 bits.
    Int = 0,
    /// 64-bit integer; payload is the raw two's-complement bits.
    Long = 1,
    /// Boolean; payload is 0 or 1.
    Bool = 2,
    /// Boxed integer; payload packed like `Int`.
    Boxed = 3,
    /// Heap reference; payload is the object id.
    Ref = 4,
    /// Null reference; payload is 0.
    Null = 5,
}

/// A register-file slot loaded into locals: raw payload + tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Slot {
    pub bits: u64,
    pub tag: Tag,
}

/// The canonical `Null` slot (also the fill value for fresh locals).
pub(crate) const NULL: Slot = Slot {
    bits: 0,
    tag: Tag::Null,
};

#[inline]
pub(crate) fn pack(v: Value) -> Slot {
    match v {
        Value::Int(x) => Slot {
            bits: x as u32 as u64,
            tag: Tag::Int,
        },
        Value::Long(x) => Slot {
            bits: x as u64,
            tag: Tag::Long,
        },
        Value::Bool(b) => Slot {
            bits: u64::from(b),
            tag: Tag::Bool,
        },
        Value::Boxed(x) => Slot {
            bits: x as u32 as u64,
            tag: Tag::Boxed,
        },
        Value::Ref(id) => Slot {
            bits: id as u64,
            tag: Tag::Ref,
        },
        Value::Null => NULL,
    }
}

#[inline]
pub(crate) fn unpack(s: Slot) -> Value {
    match s.tag {
        Tag::Int => Value::Int(s.bits as u32 as i32),
        Tag::Long => Value::Long(s.bits as i64),
        Tag::Bool => Value::Bool(s.bits != 0),
        Tag::Boxed => Value::Boxed(s.bits as u32 as i32),
        Tag::Ref => Value::Ref(s.bits as usize),
        Tag::Null => Value::Null,
    }
}

/// `Int` payload accessor: the canonical packing keeps the high 32 bits
/// zero, so truncation recovers the exact `i32`.
#[inline]
pub(crate) fn as_i32(bits: u64) -> i32 {
    bits as u32 as i32
}

#[inline]
fn pack_i32(x: i32) -> Slot {
    Slot {
        bits: x as u32 as u64,
        tag: Tag::Int,
    }
}

#[inline]
fn pack_i64(x: i64) -> Slot {
    Slot {
        bits: x as u64,
        tag: Tag::Long,
    }
}

#[inline]
fn pack_bool(b: bool) -> Slot {
    Slot {
        bits: u64::from(b),
        tag: Tag::Bool,
    }
}

/// Typed accessor for operands statically proven `int` by the lowering-time
/// type recovery: no tag dispatch at all, straight `i32` arithmetic on the
/// raw payloads. Semantics identical to [`crate::ops::arith`] on
/// `(Int, Int)`.
#[inline]
pub(crate) fn arith_ii(op: ArithOp, a: u64, b: u64) -> Result<Slot, ExecError> {
    let (x, y) = (as_i32(a), as_i32(b));
    let v = match op {
        ArithOp::Add => x.wrapping_add(y),
        ArithOp::Sub => x.wrapping_sub(y),
        ArithOp::Mul => x.wrapping_mul(y),
        ArithOp::Div => {
            if y == 0 {
                return Err(ExecError::DivisionByZero);
            }
            x.wrapping_div(y)
        }
        ArithOp::Rem => {
            if y == 0 {
                return Err(ExecError::DivisionByZero);
            }
            x.wrapping_rem(y)
        }
        ArithOp::And => x & y,
        ArithOp::Or => x | y,
        ArithOp::Xor => x ^ y,
        ArithOp::Shl => x.wrapping_shl((y & 31) as u32),
        ArithOp::Shr => x.wrapping_shr((y & 31) as u32),
    };
    Ok(pack_i32(v))
}

/// Typed accessor for comparisons statically proven `(int, int)`.
#[inline]
pub(crate) fn compare_ii(op: CmpOp, a: u64, b: u64) -> Slot {
    let (x, y) = (as_i32(a), as_i32(b));
    let r = match op {
        CmpOp::Lt => x < y,
        CmpOp::Le => x <= y,
        CmpOp::Gt => x > y,
        CmpOp::Ge => x >= y,
        CmpOp::Eq => x == y,
        CmpOp::Ne => x != y,
    };
    pack_bool(r)
}

#[inline]
fn arith_ll(op: ArithOp, x: i64, y: i64) -> Result<Slot, ExecError> {
    let v = match op {
        ArithOp::Add => x.wrapping_add(y),
        ArithOp::Sub => x.wrapping_sub(y),
        ArithOp::Mul => x.wrapping_mul(y),
        ArithOp::Div => {
            if y == 0 {
                return Err(ExecError::DivisionByZero);
            }
            x.wrapping_div(y)
        }
        ArithOp::Rem => {
            if y == 0 {
                return Err(ExecError::DivisionByZero);
            }
            x.wrapping_rem(y)
        }
        ArithOp::And => x & y,
        ArithOp::Or => x | y,
        ArithOp::Xor => x ^ y,
        ArithOp::Shl => x.wrapping_shl((y & 63) as u32),
        ArithOp::Shr => x.wrapping_shr((y & 63) as u32),
    };
    Ok(pack_i64(v))
}

/// Slot-level [`crate::ops::arith`]: tag-dispatched fast paths for the
/// numeric cases, shared-`ops` fallback for everything else (including all
/// error cases, so error values and priority can never drift).
#[inline]
pub(crate) fn arith(op: ArithOp, a: Slot, b: Slot) -> Result<Slot, ExecError> {
    match (a.tag, b.tag) {
        (Tag::Int, Tag::Int) => arith_ii(op, a.bits, b.bits),
        (Tag::Long, Tag::Long) => arith_ll(op, a.bits as i64, b.bits as i64),
        (Tag::Long, Tag::Int) => arith_ll(op, a.bits as i64, i64::from(as_i32(b.bits))),
        (Tag::Int, Tag::Long) => arith_ll(op, i64::from(as_i32(a.bits)), b.bits as i64),
        _ => crate::ops::arith(op, unpack(a), unpack(b)).map(pack),
    }
}

/// Slot-level [`crate::ops::compare`]: fast paths for numeric ordering and
/// same-kind equality (canonical packing makes bit equality value
/// equality), fallback for the rest.
#[inline]
pub(crate) fn compare(op: CmpOp, a: Slot, b: Slot) -> Result<Slot, ExecError> {
    let numeric = |s: Slot| -> Option<i64> {
        match s.tag {
            Tag::Int => Some(i64::from(as_i32(s.bits))),
            Tag::Long => Some(s.bits as i64),
            _ => None,
        }
    };
    if let (Some(x), Some(y)) = (numeric(a), numeric(b)) {
        let r = match op {
            CmpOp::Lt => x < y,
            CmpOp::Le => x <= y,
            CmpOp::Gt => x > y,
            CmpOp::Ge => x >= y,
            CmpOp::Eq => x == y,
            CmpOp::Ne => x != y,
        };
        return Ok(pack_bool(r));
    }
    crate::ops::compare(op, unpack(a), unpack(b)).map(pack)
}

/// Slot-level [`crate::ops::negate`].
#[inline]
pub(crate) fn negate(v: Slot) -> Result<Slot, ExecError> {
    match v.tag {
        Tag::Int => Ok(pack_i32(as_i32(v.bits).wrapping_neg())),
        Tag::Long => Ok(pack_i64((v.bits as i64).wrapping_neg())),
        _ => Err(ExecError::TypeMismatch("negation operand kind")),
    }
}

/// Slot-level [`crate::ops::boolean_not`].
#[inline]
pub(crate) fn boolean_not(v: Slot) -> Result<Slot, ExecError> {
    match v.tag {
        Tag::Bool => Ok(pack_bool(v.bits == 0)),
        _ => Err(ExecError::TypeMismatch("not operand kind")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    /// The hazard corners of the packed representation: values whose bit
    /// patterns collide or sit on wrap/sign boundaries.
    fn hazard_values() -> Vec<Value> {
        let ints = [
            0i32,
            1,
            -1,
            2,
            -2,
            31,
            32,
            33,
            63,
            64,
            65,
            i32::MIN,
            i32::MIN + 1,
            i32::MAX,
            i32::MAX - 1,
        ];
        let longs = [
            0i64,
            1,
            -1,
            i64::MIN,
            i64::MIN + 1,
            i64::MAX,
            // Bit-collision hazards: as u64 payloads these equal the
            // packings of Int(-1), Int(i32::MIN) and Ref(0)/Null.
            0xFFFF_FFFFi64,
            i64::from(i32::MIN as u32),
            i64::from(i32::MIN),
            i64::from(i32::MAX) + 1,
        ];
        let mut vs = Vec::new();
        vs.extend(ints.iter().map(|&x| Value::Int(x)));
        vs.extend(longs.iter().map(|&x| Value::Long(x)));
        vs.extend(ints.iter().take(4).map(|&x| Value::Boxed(x)));
        vs.push(Value::Boxed(i32::MIN));
        vs.push(Value::Bool(false));
        vs.push(Value::Bool(true));
        vs.push(Value::Ref(0));
        vs.push(Value::Ref(1));
        vs.push(Value::Ref(usize::MAX >> 1));
        vs.push(Value::Null);
        vs
    }

    const ARITH_OPS: [ArithOp; 10] = [
        ArithOp::Add,
        ArithOp::Sub,
        ArithOp::Mul,
        ArithOp::Div,
        ArithOp::Rem,
        ArithOp::And,
        ArithOp::Or,
        ArithOp::Xor,
        ArithOp::Shl,
        ArithOp::Shr,
    ];
    const CMP_OPS: [CmpOp; 6] = [
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
        CmpOp::Eq,
        CmpOp::Ne,
    ];

    #[test]
    fn pack_unpack_roundtrips() {
        for v in hazard_values() {
            assert_eq!(unpack(pack(v)), v, "roundtrip of {v:?}");
        }
    }

    #[test]
    fn packing_is_canonical() {
        // Equal values pack to equal (bits, tag); the dispatch loop's
        // same-tag equality fast path depends on this.
        for a in hazard_values() {
            for b in hazard_values() {
                assert_eq!(a == b, pack(a) == pack(b), "canonical packing {a:?} {b:?}");
            }
        }
    }

    #[test]
    fn arith_matches_ops_exhaustively() {
        for a in hazard_values() {
            for b in hazard_values() {
                for op in ARITH_OPS {
                    let want = ops::arith(op, a, b);
                    let got = arith(op, pack(a), pack(b)).map(unpack);
                    assert_eq!(got, want, "{op:?} {a:?} {b:?}");
                }
            }
        }
    }

    #[test]
    fn compare_matches_ops_exhaustively() {
        for a in hazard_values() {
            for b in hazard_values() {
                for op in CMP_OPS {
                    let want = ops::compare(op, a, b);
                    let got = compare(op, pack(a), pack(b)).map(unpack);
                    assert_eq!(got, want, "{op:?} {a:?} {b:?}");
                }
            }
        }
    }

    #[test]
    fn unary_matches_ops() {
        for v in hazard_values() {
            assert_eq!(negate(pack(v)).map(unpack), ops::negate(v), "neg {v:?}");
            assert_eq!(
                boolean_not(pack(v)).map(unpack),
                ops::boolean_not(v),
                "not {v:?}"
            );
        }
    }

    #[test]
    fn typed_int_accessors_match_generic() {
        let ints = [0, 1, -1, 2, -7, 31, 33, i32::MIN, i32::MAX];
        for &x in &ints {
            for &y in &ints {
                let (a, b) = (pack(Value::Int(x)), pack(Value::Int(y)));
                for op in ARITH_OPS {
                    assert_eq!(
                        arith_ii(op, a.bits, b.bits),
                        arith(op, a, b),
                        "{op:?} {x} {y}"
                    );
                }
                for op in CMP_OPS {
                    assert_eq!(
                        Ok(compare_ii(op, a.bits, b.bits)),
                        compare(op, a, b),
                        "{op:?} {x} {y}"
                    );
                }
            }
        }
    }

    #[test]
    fn bit_collisions_do_not_confuse_tags() {
        // Int(-1) and Long(0xFFFF_FFFF) share low bits but not a tag; the
        // untagged payload alone must never decide semantics.
        let a = pack(Value::Int(-1));
        let b = pack(Value::Long(0xFFFF_FFFF));
        assert_eq!(a.bits, b.bits);
        assert_eq!(
            compare(CmpOp::Eq, a, b).map(unpack),
            Ok(Value::Bool(false)),
            "-1 != 4294967295 after promotion"
        );
        // Null and Ref(0) share payload 0 but differ by tag.
        let n = pack(Value::Null);
        let r = pack(Value::Ref(0));
        assert_eq!(n.bits, r.bits);
        assert_eq!(compare(CmpOp::Eq, n, r).map(unpack), Ok(Value::Bool(false)));
        // Bool(false) vs Int(0): arithmetic must reject, not coerce.
        assert!(arith(ArithOp::Add, pack(Value::Bool(false)), pack(Value::Int(0))).is_err());
    }
}
