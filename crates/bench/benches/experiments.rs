//! One Criterion benchmark per paper table/figure: each measures a
//! scaled-down instance of the experiment the corresponding
//! `cargo run -p bench --bin …` binary runs at full size. These keep the
//! regeneration code exercised and timed under `cargo bench`.

use baselines::{tool_campaign, Tool, ToolCampaignConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use mopfuzzer::{fuzz, run_campaign, CampaignConfig, FuzzConfig, Variant};
use std::hint::black_box;

fn seeds() -> Vec<mopfuzzer::Seed> {
    mopfuzzer::corpus::builtin()
}

fn tiny_campaign_config() -> CampaignConfig {
    CampaignConfig {
        iterations_per_seed: 8,
        rounds: 2,
        ..CampaignConfig::new(0)
    }
}

fn tiny_tool_config() -> ToolCampaignConfig {
    ToolCampaignConfig {
        max_executions: 40,
        mop_iterations: 8,
        jitfuzz_rounds: 8,
        ..ToolCampaignConfig::with_budget(0)
    }
}

/// Tables 2–4 are slices of the same campaign; one measurement covers
/// their shared engine.
fn bench_tables_2_3_4(c: &mut Criterion) {
    let seeds = seeds();
    let config = tiny_campaign_config();
    let mut group = c.benchmark_group("tables");
    group.sample_size(10);
    group.bench_function("table2_3_4_campaign_slice", |b| {
        b.iter(|| run_campaign(black_box(&seeds), &config))
    });
    group.finish();
}

fn bench_table5(c: &mut Criterion) {
    let seeds = seeds();
    let config = tiny_campaign_config();
    let mut group = c.benchmark_group("tables");
    group.sample_size(10);
    group.bench_function("table5_mutator_ratio_slice", |b| {
        b.iter(|| {
            let result = run_campaign(&seeds, &config);
            (
                mopfuzzer::stats::mutator_ratios(&result.bugs),
                mopfuzzer::stats::pair_ratios(&result.bugs),
            )
        })
    });
    group.finish();
}

fn bench_table6(c: &mut Criterion) {
    let seeds = seeds();
    let config = tiny_tool_config();
    let mut group = c.benchmark_group("tables");
    group.sample_size(10);
    group.bench_function("table6_three_tool_slice", |b| {
        b.iter(|| {
            for tool in [Tool::MopFuzzer(Variant::Full), Tool::Artemis, Tool::JitFuzz] {
                black_box(tool_campaign(tool, &seeds, &config));
            }
        })
    });
    group.finish();
}

fn bench_fig1(c: &mut Criterion) {
    let seed = mjava::samples::listing2().program;
    let config = FuzzConfig {
        max_iterations: 10,
        variant: Variant::Full,
        guidance: jvmsim::JvmSpec::hotspur(jvmsim::Version::Mainline),
        rng_seed: 31,
        weight_scheme: Default::default(),
        banned: Vec::new(),
        fault: None,
    };
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig1_trajectory_slice", |b| {
        b.iter(|| {
            let outcome = fuzz(black_box(&seed), &config);
            mopfuzzer::stats::trajectory(&outcome.seed_obv, &outcome.records)
        })
    });
    group.finish();
}

fn bench_fig2_coverage(c: &mut Criterion) {
    let seeds = seeds();
    let config = tiny_tool_config();
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig2_coverage_slice", |b| {
        b.iter(|| {
            let result = tool_campaign(Tool::MopFuzzer(Variant::Full), &seeds, &config);
            jvmsim::Area::ALL.map(|a| result.coverage.percent(a))
        })
    });
    group.finish();
}

fn bench_fig3_fig4_deltas(c: &mut Criterion) {
    let seeds = seeds();
    let config = tiny_tool_config();
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig3_fig4_delta_slice", |b| {
        b.iter(|| {
            let mut medians = Vec::new();
            for variant in Variant::ALL {
                let r = tool_campaign(Tool::MopFuzzer(variant), &seeds, &config);
                medians.push(r.median_delta());
            }
            medians
        })
    });
    group.finish();
}

fn bench_fig5_overlap(c: &mut Criterion) {
    let seeds = seeds();
    let config = tiny_tool_config();
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig5_overlap_slice", |b| {
        b.iter(|| {
            let full = tool_campaign(Tool::MopFuzzer(Variant::Full), &seeds, &config);
            let g = tool_campaign(Tool::MopFuzzer(Variant::NoGuidance), &seeds, &config);
            (full.bugs.len(), g.bugs.len())
        })
    });
    group.finish();
}

criterion_group!(
    experiments,
    bench_tables_2_3_4,
    bench_table5,
    bench_table6,
    bench_fig1,
    bench_fig2_coverage,
    bench_fig3_fig4_deltas,
    bench_fig5_overlap,
);
criterion_main!(experiments);
