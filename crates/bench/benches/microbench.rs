//! Micro-benchmarks of the substrate: parsing, execution, JIT pipeline,
//! mutation, and profile-data scraping.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng as _;
use std::hint::black_box;

fn bench_parse_print(c: &mut Criterion) {
    let src = mjava::print(&mjava::samples::listing2().program);
    c.bench_function("parse_listing2", |b| {
        b.iter(|| mjava::parse(black_box(&src)).unwrap())
    });
    let program = mjava::samples::listing2().program;
    c.bench_function("print_listing2", |b| {
        b.iter(|| mjava::print(black_box(&program)))
    });
}

fn bench_interpreter(c: &mut Criterion) {
    let program = mjava::samples::arith_loop().program;
    let image = jexec::Image::build(&program).unwrap();
    let config = jexec::ExecConfig::default();
    c.bench_function("interpret_arith_loop", |b| {
        b.iter(|| jexec::run(black_box(&image), &config))
    });
}

fn bench_jit_pipeline(c: &mut Criterion) {
    let program = mjava::samples::sync_counter().program;
    c.bench_function("optimize_sync_counter_main", |b| {
        b.iter(|| {
            jopt::optimize(
                black_box(&program),
                "C",
                "main",
                &jopt::PhaseId::DEFAULT_ORDER,
                jopt::OptLimits::default(),
                &jopt::FlagSet::all(),
            )
            .unwrap()
        })
    });
}

fn bench_tiered_run(c: &mut Criterion) {
    let program = mjava::samples::call_chain().program;
    let spec = jvmsim::JvmSpec::hotspur(jvmsim::Version::V17).without_bugs();
    let options = jvmsim::RunOptions::fuzzing();
    c.bench_function("tiered_run_call_chain", |b| {
        b.iter(|| jvmsim::run_jvm(black_box(&program), &spec, &options))
    });
}

fn bench_mutation(c: &mut Criterion) {
    let program = mjava::samples::listing2().program;
    let mutators = mopfuzzer::all_mutators();
    let paths = mjava::path::all_paths(&program);
    c.bench_function("apply_all_applicable_mutators", |b| {
        b.iter(|| {
            let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
            let mut count = 0;
            for mp in &paths {
                for m in &mutators {
                    if m.is_applicable(&program, mp) {
                        if let Some(mu) = m.apply(&program, mp, &mut rng) {
                            count += mu.program.stmt_count();
                        }
                    }
                }
            }
            count
        })
    });
}

fn bench_obv_scrape(c: &mut Criterion) {
    let program = mjava::samples::sync_counter().program;
    let spec = jvmsim::JvmSpec::hotspur(jvmsim::Version::V17).without_bugs();
    let run = jvmsim::run_jvm(&program, &spec, &jvmsim::RunOptions::fuzzing());
    c.bench_function("obv_from_log", |b| {
        b.iter(|| jprofile::Obv::from_log(black_box(&run.log)))
    });
}

fn bench_fuzz_iteration(c: &mut Criterion) {
    let seed = mjava::samples::listing2().program;
    let config = mopfuzzer::FuzzConfig {
        max_iterations: 3,
        variant: mopfuzzer::Variant::Full,
        guidance: jvmsim::JvmSpec::hotspur(jvmsim::Version::V17).without_bugs(),
        rng_seed: 7,
        weight_scheme: Default::default(),
        banned: Vec::new(),
        fault: None,
    };
    let mut group = c.benchmark_group("fuzz");
    group.sample_size(10);
    group.bench_function("three_iterations_listing2", |b| {
        b.iter(|| mopfuzzer::fuzz(black_box(&seed), &config))
    });
    group.finish();
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    // The jtelemetry "zero overhead when disabled" claim, measurable: the
    // same tiered run with no session installed (every hook is one branch
    // on a thread-local cell) vs. with a live session accumulating spans,
    // counters and flight events.
    let program = mjava::samples::call_chain().program;
    let spec = jvmsim::JvmSpec::hotspur(jvmsim::Version::V17).without_bugs();
    let options = jvmsim::RunOptions::fuzzing();
    let mut group = c.benchmark_group("telemetry");
    group.bench_function("tiered_run_telemetry_off", |b| {
        assert!(!jtelemetry::enabled());
        b.iter(|| jvmsim::run_jvm(black_box(&program), &spec, &options))
    });
    group.bench_function("tiered_run_telemetry_on", |b| {
        jtelemetry::install(jtelemetry::Session::new());
        b.iter(|| jvmsim::run_jvm(black_box(&program), &spec, &options));
        jtelemetry::take();
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_parse_print,
    bench_interpreter,
    bench_jit_pipeline,
    bench_tiered_run,
    bench_mutation,
    bench_obv_scrape,
    bench_fuzz_iteration,
    bench_telemetry_overhead,
);
criterion_main!(benches);
