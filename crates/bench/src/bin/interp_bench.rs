//! Single-core execution-substrate throughput: `--exec-mode interp` vs
//! `--exec-mode threaded`.
//!
//! Builds the standard campaign workload (each experiment seed fuzzed
//! briefly, so the programs are optimization-heavy mutants rather than
//! cold seeds), then times pure `jexec::run` sweeps over the prebuilt
//! images on one thread for each substrate, and writes
//! `BENCH_interp.json` (execs/s, steps/s, speedup, code/pipeline cache
//! hit rates, host metadata).
//!
//! Both substrates are bit-equivalent (`tests/exec_equivalence.rs`), so
//! the bench asserts outcome equality across modes as a smoke check —
//! any divergence here is a correctness bug, not a perf regression.
//!
//! A second, smaller sweep times the full differential oracle (8
//! simulated JVMs per program, serial) per mode, which additionally
//! exercises the shared code cache across the pool and the `jopt`
//! pipeline memo — the campaign-level view of the same speedup.
//!
//! Flags:
//!   --smoke       tiny repeat count (CI smoke mode)
//!   --out PATH    output path (default BENCH_interp.json)
//!   --repeats N   override the execution sweep count

use bench::{experiment_seeds, render_table};
use jexec::{ExecConfig, ExecMode, Image};
use jvmsim::{JvmSpec, RunOptions};
use mopfuzzer::{differential_jobs, fuzz, FuzzConfig};
use std::fmt::Write as _;
use std::time::Instant;

const MODES: [ExecMode; 2] = [ExecMode::Interp, ExecMode::Threaded];

struct Row {
    mode: ExecMode,
    seconds: f64,
    execs: u64,
    steps: u64,
}

impl Row {
    fn execs_per_sec(&self) -> f64 {
        self.execs as f64 / self.seconds
    }
}

fn mode_name(mode: ExecMode) -> &'static str {
    match mode {
        ExecMode::Interp => "interp",
        ExecMode::Threaded => "threaded",
    }
}

fn main() {
    let metrics = bench::metrics::start();
    run();
    bench::metrics::finish(metrics.as_deref());
}

fn run() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let out_path = flag("--out")
        .cloned()
        .unwrap_or_else(|| "BENCH_interp.json".into());
    let repeats: usize = match flag("--repeats") {
        Some(s) => s.parse().expect("--repeats takes a number"),
        None if smoke => 2,
        None => 40,
    };
    let diff_repeats = if smoke { 1 } else { 4 };
    let pool = JvmSpec::differential_pool();

    // The workload: optimization-heavy mutants of the experiment seeds
    // (the same construction as oracle_bench), compiled to images once.
    let programs: Vec<mjava::Program> = experiment_seeds(6)
        .iter()
        .enumerate()
        .map(|(i, seed)| {
            let config = FuzzConfig {
                max_iterations: 20,
                rng_seed: i as u64,
                ..FuzzConfig::new(pool[i % pool.len()].clone())
            };
            fuzz(&seed.program, &config).final_mutant
        })
        .collect();
    let images: Vec<Image> = programs
        .iter()
        .map(|p| Image::build(p).expect("mutant builds"))
        .collect();

    // Pure-execution sweep: one thread, prebuilt images, per-substrate
    // timing. The first threaded repeat pays for lowering; the cache
    // amortizes it exactly as campaigns do.
    let mut rows: Vec<Row> = Vec::new();
    let mut baseline_outcomes: Option<Vec<jexec::Outcome>> = None;
    let mut leaf_inlined = 0u64;
    for mode in MODES {
        jexec::threaded::cache_reset();
        let _ = jexec::threaded::take_inline_count();
        let config = ExecConfig {
            mode,
            ..ExecConfig::default()
        };
        eprintln!(
            "running {repeats} sweep(s) over {} image(s) at --exec-mode {} ...",
            images.len(),
            mode_name(mode)
        );
        let mut execs = 0u64;
        let mut steps = 0u64;
        let mut outcomes = Vec::new();
        let start = Instant::now();
        for rep in 0..repeats {
            for image in &images {
                let outcome = jexec::run(image, &config);
                execs += 1;
                steps += outcome.stats.steps;
                if rep == 0 {
                    outcomes.push(outcome);
                }
            }
        }
        let seconds = start.elapsed().as_secs_f64().max(1e-9);
        match &baseline_outcomes {
            None => baseline_outcomes = Some(outcomes),
            Some(b) => assert_eq!(
                b,
                &outcomes,
                "--exec-mode {} diverged from interp: substrate equivalence is broken",
                mode_name(mode)
            ),
        }
        if mode == ExecMode::Threaded {
            leaf_inlined = jexec::threaded::take_inline_count();
        }
        rows.push(Row {
            mode,
            seconds,
            execs,
            steps,
        });
    }
    let code_cache = jexec::threaded::cache_stats();

    // Campaign-level sweep: the serial differential oracle (8 JVMs per
    // program) per mode, with fresh caches — this is where the shared
    // code cache and the pipeline memo actually earn their keep.
    let mut diff_rows: Vec<Row> = Vec::new();
    let options = RunOptions::fuzzing();
    let mut pipeline_cache = jopt::pipeline::cache_stats();
    for mode in MODES {
        jexec::threaded::cache_reset();
        jopt::pipeline::cache_reset();
        jexec::set_default_exec_mode(mode);
        eprintln!(
            "running {diff_repeats} differential sweep(s) at --exec-mode {} ...",
            mode_name(mode)
        );
        let mut execs = 0u64;
        let start = Instant::now();
        for _ in 0..diff_repeats {
            for program in &programs {
                let diff = differential_jobs(program, &pool, &options, 1);
                execs += diff.executions;
            }
        }
        let seconds = start.elapsed().as_secs_f64().max(1e-9);
        diff_rows.push(Row {
            mode,
            seconds,
            execs,
            steps: 0,
        });
        if mode == ExecMode::Threaded {
            pipeline_cache = jopt::pipeline::cache_stats();
        }
    }
    jexec::set_default_exec_mode(ExecMode::Threaded);

    let serial = rows[0].execs_per_sec();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                mode_name(r.mode).into(),
                format!("{:.3}", r.seconds),
                format!("{:.0}", r.execs_per_sec()),
                format!("{:.2e}", r.steps as f64 / r.seconds),
                format!("{:.2}x", r.execs_per_sec() / serial),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &format!(
                "Execution-substrate throughput, {repeats} sweep(s) x {} mutant(s), single core",
                images.len()
            ),
            &["exec-mode", "seconds", "execs/s", "steps/s", "speedup"],
            &table
        )
    );
    let diff_serial = diff_rows[0].execs_per_sec();
    let diff_table: Vec<Vec<String>> = diff_rows
        .iter()
        .map(|r| {
            vec![
                mode_name(r.mode).into(),
                format!("{:.3}", r.seconds),
                format!("{:.0}", r.execs_per_sec()),
                format!("{:.2}x", r.execs_per_sec() / diff_serial),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &format!(
                "Differential-oracle throughput (8 JVMs/program, serial), {diff_repeats} sweep(s)"
            ),
            &["exec-mode", "seconds", "execs/s", "speedup"],
            &diff_table
        )
    );
    let hit_rate = |h: u64, m: u64| {
        let total = h + m;
        if total == 0 {
            0.0
        } else {
            h as f64 / total as f64
        }
    };
    println!(
        "code cache: {} entries, {} hits / {} misses ({:.1}% hit rate)",
        code_cache.entries,
        code_cache.hits,
        code_cache.misses,
        100.0 * hit_rate(code_cache.hits, code_cache.misses)
    );
    println!(
        "pipeline memo: {} entries, {} hits / {} misses ({:.1}% hit rate)",
        pipeline_cache.entries,
        pipeline_cache.hits,
        pipeline_cache.misses,
        100.0 * hit_rate(pipeline_cache.hits, pipeline_cache.misses)
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"type\": \"mopfuzzer-interp-bench\",");
    let _ = writeln!(json, "  \"version\": 2,");
    let _ = writeln!(json, "  \"host\": {},", bench::host_meta_json());
    let _ = writeln!(json, "  \"programs\": {},", programs.len());
    let _ = writeln!(json, "  \"repeats\": {repeats},");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"leaf_calls_inlined\": {leaf_inlined},");
    let _ = writeln!(json, "  \"execution\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"mode\": \"{}\", \"seconds\": {:.6}, \"execs\": {}, \
             \"execs_per_sec\": {:.3}, \"steps_per_sec\": {:.0}, \"speedup\": {:.3}}}{comma}",
            mode_name(r.mode),
            r.seconds,
            r.execs,
            r.execs_per_sec(),
            r.steps as f64 / r.seconds,
            r.execs_per_sec() / serial,
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"differential\": [");
    for (i, r) in diff_rows.iter().enumerate() {
        let comma = if i + 1 < diff_rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"mode\": \"{}\", \"seconds\": {:.6}, \"execs\": {}, \
             \"execs_per_sec\": {:.3}, \"speedup\": {:.3}}}{comma}",
            mode_name(r.mode),
            r.seconds,
            r.execs,
            r.execs_per_sec(),
            r.execs_per_sec() / diff_serial,
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"code_cache\": {{\"entries\": {}, \"hits\": {}, \"misses\": {}, \"hit_rate\": {:.4}}},",
        code_cache.entries,
        code_cache.hits,
        code_cache.misses,
        hit_rate(code_cache.hits, code_cache.misses)
    );
    let _ = writeln!(
        json,
        "  \"pipeline_cache\": {{\"entries\": {}, \"hits\": {}, \"misses\": {}, \
         \"hit_rate\": {:.4}}}",
        pipeline_cache.entries,
        pipeline_cache.hits,
        pipeline_cache.misses,
        hit_rate(pipeline_cache.hits, pipeline_cache.misses)
    );
    let _ = writeln!(json, "}}");
    std::fs::write(&out_path, json).expect("write bench output");
    eprintln!("wrote {out_path}");
}
