//! Table 5 — the top mutators and mutator pairs involved in
//! bug-triggering test cases.
//!
//! Paper reference: LoopUnroll. 30.5%, LockElim. 25.4%, DeReflect. 22.0%,
//! LoopUnswitch. 16.9%, EscapeAnalys. 16.9%; top pair
//! LoopUnroll.+LockElim. 13.6%.

use bench::{experiment_seeds, render_table, scale_from_args};
use mopfuzzer::stats::{mutator_ratios, pair_ratios};

fn main() {
    let metrics = bench::metrics::start();
    run();
    bench::metrics::finish(metrics.as_deref());
}

fn run() {
    let scale = scale_from_args();
    let seeds = experiment_seeds(8);
    let rounds = (50 * scale) as usize;
    eprintln!("running one campaign per JVM family: {rounds} rounds each ...");
    let result = bench::dual_family_campaign(&seeds, rounds);
    if result.bugs.is_empty() {
        println!("no bugs found at this budget; increase the scale argument");
        return;
    }

    let top_mutators = mutator_ratios(&result.bugs);
    let rows: Vec<Vec<String>> = top_mutators
        .iter()
        .take(5)
        .map(|(k, r)| vec![k.label().to_string(), format!("{:.1}%", r * 100.0)])
        .collect();
    println!(
        "{}",
        render_table(
            "Table 5 (left): top mutators in bug-triggering cases",
            &["Top Mutators", "Ratio"],
            &rows
        )
    );

    let top_pairs = pair_ratios(&result.bugs);
    let rows: Vec<Vec<String>> = top_pairs
        .iter()
        .take(5)
        .map(|((a, b), r)| {
            vec![
                format!("{} + {}", a.label(), b.label()),
                format!("{:.1}%", r * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Table 5 (right): top mutator pairs",
            &["Top Mutator Pairs", "Ratio"],
            &rows
        )
    );
    println!(
        "basis: {} bug-triggering cases from 2x{} rounds ({} executions)",
        result.bugs.len(),
        rounds,
        result.executions
    );
    println!("paper reference: LoopUnroll 30.5%, LockElim 25.4%, DeReflect 22.0%; top pair LoopUnroll+LockElim 13.6%");
}
