//! Table 3 — distribution of the detected bugs across OpenJDK LTS and
//! mainline versions (one bug may affect several versions).

use bench::{experiment_seeds, render_table, scale_from_args};
use jvmsim::{Family, ReportStatus, Version};

fn main() {
    let metrics = bench::metrics::start();
    run();
    bench::metrics::finish(metrics.as_deref());
}

fn run() {
    let scale = scale_from_args();
    let seeds = experiment_seeds(6);
    let rounds = (40 * scale) as usize;
    eprintln!("running one campaign per JVM family: {rounds} rounds each ...");
    let result = bench::dual_family_campaign(&seeds, rounds);
    let library = jvmsim::bugs::library();
    let found_ids: std::collections::HashSet<&str> =
        result.bugs.iter().map(|b| b.id.as_str()).collect();

    let hotspur = |v: Version| {
        library
            .iter()
            .filter(move |b| b.family == Family::HotSpur && b.affected.contains(&v))
    };
    let mut header = vec!["Affected Version"];
    let mut bugs_row = vec!["#Bugs (paper)".to_string()];
    let mut nb_row = vec!["#Not Backportable (paper)".to_string()];
    let mut found_row = vec!["#found (this campaign)".to_string()];
    for v in Version::ALL {
        header.push(match v {
            Version::V8 => "JDK-8",
            Version::V11 => "JDK-11",
            Version::V17 => "JDK-17",
            Version::V21 => "JDK-21",
            Version::Mainline => "Mainline",
        });
        bugs_row.push(hotspur(v).count().to_string());
        // The paper counts each not-backportable bug once, at the highest
        // version it affects (12 at JDK-8, 2 at JDK-11).
        nb_row.push(
            hotspur(v)
                .filter(|b| b.status == ReportStatus::NotBackportable)
                .filter(|b| b.affected.iter().max() == Some(&v))
                .count()
                .to_string(),
        );
        found_row.push(
            hotspur(v)
                .filter(|b| found_ids.contains(b.id))
                .count()
                .to_string(),
        );
    }
    println!(
        "{}",
        render_table(
            "Table 3: Bug distribution across OpenJDK versions",
            &header,
            &[bugs_row, nb_row, found_row]
        )
    );
    println!("campaign executions: {}", result.executions);
}
