//! Figure 2 — line (block) coverage per JVM area (C1, C2, Runtime, GC,
//! Summary) for MopFuzzer, JITFuzz and Artemis within an equal budget.
//!
//! Paper reference shape: differences are small (~1–2 pp); MopFuzzer
//! leads on C1 and C2, JITFuzz leads on GC, summary 63.7 / 62.0 / 62.8.

use baselines::{tool_campaign, Tool, ToolCampaignConfig};
use bench::{experiment_seeds, render_table, scale_from_args};
use jvmsim::Area;
use mopfuzzer::Variant;

fn main() {
    let metrics = bench::metrics::start();
    run();
    bench::metrics::finish(metrics.as_deref());
}

fn run() {
    let scale = scale_from_args();
    let seeds = experiment_seeds(8);
    let config = ToolCampaignConfig::with_budget(1_500 * scale);
    let tools = [Tool::MopFuzzer(Variant::Full), Tool::JitFuzz, Tool::Artemis];
    let mut rows: Vec<Vec<String>> = Vec::new();
    for tool in tools {
        eprintln!("running {tool} ...");
        let result = tool_campaign(tool, &seeds, &config);
        let mut row = vec![tool.to_string()];
        for area in Area::ALL {
            row.push(format!("{:.1}%", result.coverage.percent(area)));
        }
        row.push(format!("{:.1}%", result.coverage.summary_percent()));
        rows.push(row);
    }
    println!(
        "{}",
        render_table(
            "Figure 2: block coverage per JVM area (equal execution budget)",
            &["Tool", "C1", "C2", "Runtime", "GC", "Summary"],
            &rows
        )
    );
    println!("paper reference: summary MopFuzzer 63.7%, JITFuzz 62.0%, Artemis 62.8%; MopFuzzer ahead on C1/C2, JITFuzz ahead on GC");
}
