//! Fleet-service throughput: concurrent tenants and store flush costs.
//!
//! Two measurements, written to `BENCH_service.json`:
//!
//!  1. **Fleet campaign throughput.** N identical campaigns are driven
//!     through the `mopfuzzerd` registry — the daemon's scheduler, minus
//!     the HTTP skin — at tenants ∈ {1, 2, 4}; the table reports
//!     campaigns/hour and aggregate execs/sec. Tenants multiplex onto
//!     one process-wide work pool, so on a single-core host expect
//!     ~flat execs/sec (the scheduler's point is that co-tenancy is
//!     *safe*, not that it beats the hardware).
//!
//!  2. **Store flush throughput, flat vs sharded.** T tenant threads
//!     share one corpus store; each repeatedly dirties a single entry's
//!     stats and flushes. A flat save rewrites every source plus the
//!     whole manifest under one store-wide lock; a sharded save rewrites
//!     only the dirty shard under that shard's lock. That is strictly
//!     less work and strictly less contention, so the bench **asserts
//!     sharded ≥ flat whenever tenants ≥ 2** — on any host, cores or
//!     not.
//!
//! Flags:
//!   --smoke       tiny iteration counts (CI smoke mode)
//!   --out PATH    output path (default BENCH_service.json)

use jcorpus::{EntryStats, Provenance, Store};
use mopfuzzerd::{CampaignSpec, Registry, State};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

const TENANTS: [usize; 3] = [1, 2, 4];
const SHARDS: usize = 8;

fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("service-bench-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

struct FleetRow {
    tenants: usize,
    seconds: f64,
    campaigns_per_hour: f64,
    execs_per_sec: f64,
    executions: u64,
}

struct FlushRow {
    tenants: usize,
    flat_per_sec: f64,
    sharded_per_sec: f64,
}

fn main() {
    let metrics = bench::metrics::start();
    run();
    bench::metrics::finish(metrics.as_deref());
}

fn run() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let out_path = flag("--out")
        .cloned()
        .unwrap_or_else(|| "BENCH_service.json".into());
    let rounds: usize = if smoke { 2 } else { 8 };
    let iterations: usize = if smoke { 4 } else { 12 };
    let flushes: usize = if smoke { 8 } else { 32 };
    let hw = std::thread::available_parallelism().map_or(1, usize::from);

    let fleet = fleet_rows(rounds, iterations);
    let flush = flush_rows(flushes);

    let fleet_table: Vec<Vec<String>> = fleet
        .iter()
        .map(|r| {
            vec![
                r.tenants.to_string(),
                format!("{:.3}", r.seconds),
                format!("{:.1}", r.campaigns_per_hour),
                format!("{:.0}", r.execs_per_sec),
            ]
        })
        .collect();
    println!("{}", render_fleet(rounds, hw, &fleet_table));

    let flush_table: Vec<Vec<String>> = flush
        .iter()
        .map(|r| {
            vec![
                r.tenants.to_string(),
                format!("{:.1}", r.flat_per_sec),
                format!("{:.1}", r.sharded_per_sec),
                format!("{:.2}x", r.sharded_per_sec / r.flat_per_sec),
            ]
        })
        .collect();
    println!(
        "{}",
        bench::render_table(
            &format!("Store flush throughput, {SHARDS} shards, {flushes} flushes/tenant"),
            &["tenants", "flat/s", "sharded/s", "sharded gain"],
            &flush_table
        )
    );

    for r in &flush {
        if r.tenants >= 2 {
            assert!(
                r.sharded_per_sec >= r.flat_per_sec,
                "sharded flush throughput regressed below flat at {} tenants \
                 ({:.1}/s < {:.1}/s): dirty-shard saves should always do less \
                 work than whole-store rewrites",
                r.tenants,
                r.sharded_per_sec,
                r.flat_per_sec,
            );
        }
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"type\": \"mopfuzzer-service-bench\",");
    let _ = writeln!(json, "  \"version\": 1,");
    let _ = writeln!(json, "  \"host\": {},", bench::host_meta_json());
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(
        json,
        "  \"fleet\": {{\"rounds\": {rounds}, \"iterations\": {iterations}, \"results\": ["
    );
    for (i, r) in fleet.iter().enumerate() {
        let comma = if i + 1 < fleet.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"tenants\": {}, \"seconds\": {:.6}, \"campaigns_per_hour\": {:.3}, \
             \"execs_per_sec\": {:.3}, \"executions\": {}}}{comma}",
            r.tenants, r.seconds, r.campaigns_per_hour, r.execs_per_sec, r.executions,
        );
    }
    let _ = writeln!(json, "  ]}},");
    let _ = writeln!(
        json,
        "  \"flush\": {{\"shards\": {SHARDS}, \"flushes_per_tenant\": {flushes}, \"results\": ["
    );
    for (i, r) in flush.iter().enumerate() {
        let comma = if i + 1 < flush.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"tenants\": {}, \"flat_flushes_per_sec\": {:.3}, \
             \"sharded_flushes_per_sec\": {:.3}, \"sharded_gain\": {:.3}}}{comma}",
            r.tenants,
            r.flat_per_sec,
            r.sharded_per_sec,
            r.sharded_per_sec / r.flat_per_sec,
        );
    }
    let _ = writeln!(json, "  ]}}");
    let _ = writeln!(json, "}}");
    std::fs::write(&out_path, json).expect("write bench output");
    eprintln!("wrote {out_path}");
}

fn render_fleet(rounds: usize, hw: usize, table: &[Vec<String>]) -> String {
    bench::render_table(
        &format!("Fleet throughput, {rounds} rounds/campaign, {hw} hardware thread(s)"),
        &["tenants", "seconds", "campaigns/h", "execs/s"],
        table,
    )
}

/// Drives `tenants` identical campaigns through the registry and times
/// the whole fleet to completion.
fn fleet_rows(rounds: usize, iterations: usize) -> Vec<FleetRow> {
    TENANTS
        .iter()
        .map(|&tenants| {
            eprintln!("running {tenants} concurrent tenant(s), {rounds} rounds each ...");
            let data_dir = temp_dir("fleet");
            let registry = Registry::open(&data_dir, tenants, false).expect("open registry");
            let start = Instant::now();
            for t in 0..tenants {
                let spec = CampaignSpec::from_json(&format!(
                    "{{\"rounds\": {rounds}, \"seed\": {}, \"iterations\": {iterations}, \
                     \"jobs\": 1, \"oracle_jobs\": 1}}",
                    100 + t as u64,
                ))
                .expect("parse spec");
                registry.submit(spec).expect("submit campaign");
            }
            registry.join();
            let seconds = start.elapsed().as_secs_f64().max(1e-9);
            let statuses = registry.statuses();
            assert_eq!(statuses.len(), tenants);
            let mut executions = 0;
            for s in &statuses {
                assert_eq!(s.state, State::Done, "tenant {} did not finish", s.id);
                executions += s.executions;
            }
            let _ = std::fs::remove_dir_all(&data_dir);
            FleetRow {
                tenants,
                seconds,
                campaigns_per_hour: tenants as f64 * 3600.0 / seconds,
                execs_per_sec: executions as f64 / seconds,
                executions,
            }
        })
        .collect()
}

/// T tenant threads hammer one store with dirty-one-entry flushes; the
/// same workload runs against a flat and a sharded copy.
fn flush_rows(flushes: usize) -> Vec<FlushRow> {
    let seeds = mopfuzzer::corpus::corpus(24, 1);
    TENANTS
        .iter()
        .map(|&tenants| {
            let flat = flush_run(&seeds, tenants, flushes, None);
            let sharded = flush_run(&seeds, tenants, flushes, Some(SHARDS));
            FlushRow {
                tenants,
                flat_per_sec: flat,
                sharded_per_sec: sharded,
            }
        })
        .collect()
}

fn flush_run(
    seeds: &[mopfuzzer::Seed],
    tenants: usize,
    flushes: usize,
    shards: Option<usize>,
) -> f64 {
    let layout = if shards.is_some() { "sharded" } else { "flat" };
    eprintln!("flushing {layout} store, {tenants} tenant(s) x {flushes} flushes ...");
    let dir = temp_dir(layout);
    let store_dir = dir.join("store");
    let mut store = match shards {
        Some(n) => Store::init_sharded(&store_dir, n).expect("init sharded store"),
        None => Store::init(&store_dir).expect("init store"),
    };
    mopfuzzer::import_seeds(&mut store, seeds, Provenance::Builtin).expect("import seeds");
    store.save().expect("seed the store");
    let names: Vec<String> = store.entries().iter().map(|e| e.name.clone()).collect();
    drop(store);

    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..tenants {
            let store_dir = store_dir.clone();
            let names = &names;
            scope.spawn(move || {
                let mut store = Store::open(&store_dir).expect("open store");
                // Each tenant walks its own slice of the entry list, so
                // concurrent flushes dirty mostly-disjoint shards.
                let mine: Vec<&String> = names.iter().skip(t).step_by(tenants).collect();
                for i in 0..flushes {
                    let name = mine[i % mine.len()];
                    let stats = EntryStats {
                        schedules: i as u64 + 1,
                        yield_sum: i as f64,
                        faults: 0,
                        bugs: 0,
                    };
                    store.set_stats(name, stats).expect("set stats");
                    store.save().expect("flush store");
                }
            });
        }
    });
    let seconds = start.elapsed().as_secs_f64().max(1e-9);
    let _ = std::fs::remove_dir_all(&dir);
    tenants as f64 * flushes as f64 / seconds
}
