//! Figure 4 — the ablation: final-mutant Δ distribution for MopFuzzer vs
//! its variants MopFuzzer_g (no guidance) and MopFuzzer_r (random MP).
//!
//! Paper reference: removing guidance degrades the median by 19.9%
//! (3881 → 3107); removing the fixed mutation point by 65.1%
//! (3881 → 1353).

use baselines::{tool_campaign, Tool, ToolCampaignConfig};
use bench::{experiment_seeds, format_box, render_table, scale_from_args};
use mopfuzzer::Variant;

fn main() {
    let metrics = bench::metrics::start();
    run();
    bench::metrics::finish(metrics.as_deref());
}

fn run() {
    let scale = scale_from_args();
    let seeds = experiment_seeds(8);
    let config = ToolCampaignConfig::with_budget(1_500 * scale);
    let mut rows = Vec::new();
    let mut medians = Vec::new();
    for variant in Variant::ALL {
        eprintln!("running {variant} ...");
        let result = tool_campaign(Tool::MopFuzzer(variant), &seeds, &config);
        rows.push(format_box(&variant.to_string(), &result.final_deltas));
        medians.push((variant, result.median_delta()));
    }
    println!(
        "{}",
        render_table(
            "Figure 4: final-mutant Δ distribution per variant (box plot numbers)",
            &["Variant", "min", "q1", "median", "q3", "max", "n"],
            &rows
        )
    );
    let full = medians[0].1.max(f64::EPSILON);
    for (variant, median) in &medians {
        println!(
            "median {variant}: {median:.1} ({:+.1}% vs full)",
            (median - full) / full * 100.0
        );
    }
    println!("paper reference: MopFuzzer_g −19.9%, MopFuzzer_r −65.1% vs full");
}
