//! Figure 5 — (a) bugs detected over (simulated) time per variant;
//! (b) overlap of the bug sets across variants.
//!
//! Paper reference: the full system finds the most bugs and nearly
//! subsumes both variants; MopFuzzer_g finds ~5/6 of MopFuzzer's bugs
//! with one extra of its own; MopFuzzer_r finds few.

use baselines::{tool_campaign, Tool, ToolCampaignConfig};
use bench::{experiment_seeds, render_table, scale_from_args};
use mopfuzzer::Variant;
use std::collections::HashSet;

fn main() {
    let metrics = bench::metrics::start();
    run();
    bench::metrics::finish(metrics.as_deref());
}

fn run() {
    let scale = scale_from_args();
    let seeds = experiment_seeds(8);
    let config = ToolCampaignConfig::with_budget(1_500 * scale);
    let mut per_variant: Vec<(Variant, Vec<(u64, String)>)> = Vec::new();
    for variant in Variant::ALL {
        eprintln!("running {variant} ...");
        let result = tool_campaign(Tool::MopFuzzer(variant), &seeds, &config);
        per_variant.push((
            variant,
            result
                .bugs
                .iter()
                .map(|b| (b.at_steps, b.id.clone()))
                .collect(),
        ));
    }

    // (a) bugs over time: cumulative counts at deciles of the budget.
    println!("== Figure 5a: bugs detected over simulated time ==");
    let max_steps = per_variant
        .iter()
        .flat_map(|(_, bugs)| bugs.iter().map(|(t, _)| *t))
        .max()
        .unwrap_or(1);
    let mut rows = Vec::new();
    for (variant, bugs) in &per_variant {
        let mut row = vec![variant.to_string()];
        for decile in 1..=10u64 {
            let cutoff = max_steps * decile / 10;
            row.push(
                bugs.iter()
                    .filter(|(t, _)| *t <= cutoff)
                    .count()
                    .to_string(),
            );
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(
            "cumulative bug count at each tenth of the time budget",
            &["Variant", "10%", "20%", "30%", "40%", "50%", "60%", "70%", "80%", "90%", "100%"],
            &rows
        )
    );

    // (b) overlap.
    println!("== Figure 5b: overlap of detected bugs ==");
    let sets: Vec<(Variant, HashSet<&String>)> = per_variant
        .iter()
        .map(|(v, bugs)| (*v, bugs.iter().map(|(_, id)| id).collect()))
        .collect();
    for (v, set) in &sets {
        println!("{v}: {} bugs", set.len());
    }
    let full = &sets[0].1;
    for (v, set) in &sets[1..] {
        let shared = set.intersection(full).count();
        let only = set.difference(full).count();
        println!(
            "{v}: {shared} shared with MopFuzzer, {only} unique to {v}, {} unique to MopFuzzer",
            full.difference(set).count()
        );
    }
    println!("paper reference: MopFuzzer finds nearly all bugs of both variants; one bug is unique to MopFuzzer_g");
}
