//! Table 6 — bug detection comparison on OpenJDK-17 within an equal
//! budget: MopFuzzer vs Artemis vs JITFuzz, per HotSpot component.
//!
//! Paper reference: MopFuzzer 6 (GVN 2, IdealLoop 1, MacroExp 1,
//! CondConstProp 1, Runtime 1), Artemis 4, JITFuzz 2 — every find unique
//! to its tool.

use baselines::{tool_campaign, Tool, ToolCampaignConfig};
use bench::{experiment_seeds, render_table, scale_from_args};
use jvmsim::{Component, JvmSpec, Version};
use mopfuzzer::Variant;
use std::collections::{BTreeMap, HashSet};

fn main() {
    let metrics = bench::metrics::start();
    run();
    bench::metrics::finish(metrics.as_deref());
}

fn run() {
    let scale = scale_from_args();
    let seeds = experiment_seeds(8);
    // The 24h-on-JDK17 setting: guidance and differential restricted to
    // version-17 JVMs of both families.
    let pool = vec![JvmSpec::hotspur(Version::V17), JvmSpec::j9(Version::V17)];
    let config = ToolCampaignConfig {
        max_executions: 1_500 * scale,
        pool,
        ..ToolCampaignConfig::with_budget(0)
    };
    let tools = [Tool::MopFuzzer(Variant::Full), Tool::Artemis, Tool::JitFuzz];
    let mut per_tool: Vec<(String, BTreeMap<Component, Vec<String>>)> = Vec::new();
    for tool in tools {
        eprintln!(
            "running {tool} (budget {} executions) ...",
            config.max_executions
        );
        let result = tool_campaign(tool, &seeds, &config);
        let mut by_component: BTreeMap<Component, Vec<String>> = BTreeMap::new();
        for bug in &result.bugs {
            by_component
                .entry(bug.component)
                .or_default()
                .push(bug.id.clone());
        }
        per_tool.push((tool.to_string(), by_component));
    }

    // Uniqueness: a bug id found by exactly one tool.
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for (_, by_component) in &per_tool {
        let ids: HashSet<&String> = by_component.values().flatten().collect();
        for id in ids {
            *counts.entry(id.as_str()).or_insert(0) += 1;
        }
    }

    let components: Vec<Component> = {
        let mut set: Vec<Component> = per_tool
            .iter()
            .flat_map(|(_, m)| m.keys().copied())
            .collect();
        set.sort();
        set.dedup();
        set
    };
    let mut rows: Vec<Vec<String>> = Vec::new();
    for component in &components {
        let mut row = vec![component.label().to_string()];
        for (_, by_component) in &per_tool {
            let ids = by_component.get(component).cloned().unwrap_or_default();
            let unique = ids
                .iter()
                .filter(|id| counts.get(id.as_str()) == Some(&1))
                .count();
            row.push(format!("{} ({})", ids.len(), unique));
        }
        rows.push(row);
    }
    let mut totals = vec!["Total".to_string()];
    for (_, by_component) in &per_tool {
        let all: Vec<&String> = by_component.values().flatten().collect();
        let unique = all
            .iter()
            .filter(|id| counts.get(id.as_str()) == Some(&1))
            .count();
        totals.push(format!("{} ({})", all.len(), unique));
    }
    rows.push(totals);
    println!(
        "{}",
        render_table(
            "Table 6: bugs per component within an equal budget on version-17 JVMs (unique finds in parentheses)",
            &["Components", "MopFuzzer", "Artemis", "JITFuzz"],
            &rows
        )
    );
    println!("paper reference: MopFuzzer 6 (6), Artemis 4 (4), JITFuzz 2 (2)");
}
