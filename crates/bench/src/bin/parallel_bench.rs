//! Campaign throughput across worker counts (`--jobs`).
//!
//! Runs the same campaign at jobs ∈ {1, 2, 4, 8}, times each run, and
//! writes `BENCH_parallel.json` (rounds/sec, execs/sec, speedup over the
//! serial run). Because the parallel engine is bit-deterministic, every
//! run must produce an identical `CampaignResult` — the bench asserts
//! this, so it doubles as an equivalence smoke test.
//!
//! Speedup is bounded by the host: the recorded `host` block says what
//! OS/arch and how many hardware threads the numbers were taken on. On a
//! single-core machine expect ~1.0× (the engine's point is that extra
//! workers are *free*, never that they are always faster).
//!
//! Flags:
//!   --smoke       tiny round count (CI smoke mode)
//!   --out PATH    output path (default BENCH_parallel.json)
//!   --rounds N    override the round count

use bench::{experiment_seeds, render_table};
use mopfuzzer::{run_campaign, CampaignConfig, CampaignResult};
use std::fmt::Write as _;
use std::time::Instant;

const JOBS: [usize; 4] = [1, 2, 4, 8];

struct Row {
    jobs: usize,
    seconds: f64,
    rounds_per_sec: f64,
    execs_per_sec: f64,
    executions: u64,
}

fn main() {
    let metrics = bench::metrics::start();
    run();
    bench::metrics::finish(metrics.as_deref());
}

fn run() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let out_path = flag("--out")
        .cloned()
        .unwrap_or_else(|| "BENCH_parallel.json".into());
    let rounds: usize = match flag("--rounds") {
        Some(s) => s.parse().expect("--rounds takes a number"),
        None if smoke => 8,
        None => 48,
    };
    let hw = std::thread::available_parallelism().map_or(1, usize::from);
    let seeds = experiment_seeds(6);
    let config = |jobs: usize| CampaignConfig {
        iterations_per_seed: 30,
        rounds,
        jobs,
        ..CampaignConfig::new(rounds)
    };

    // Warm up allocators and code paths so jobs=1 isn't penalized for
    // going first.
    run_campaign(&seeds, &config(1));

    let mut rows: Vec<Row> = Vec::new();
    let mut baseline: Option<CampaignResult> = None;
    for jobs in JOBS {
        eprintln!("running {rounds} rounds at --jobs {jobs} ...");
        let start = Instant::now();
        let result = run_campaign(&seeds, &config(jobs));
        let seconds = start.elapsed().as_secs_f64().max(1e-9);
        match &baseline {
            None => baseline = Some(result.clone()),
            Some(b) => assert_eq!(
                b, &result,
                "--jobs {jobs} diverged from --jobs 1: the parallel engine is broken"
            ),
        }
        rows.push(Row {
            jobs,
            seconds,
            rounds_per_sec: rounds as f64 / seconds,
            execs_per_sec: result.executions as f64 / seconds,
            executions: result.executions,
        });
    }

    let serial = rows[0].rounds_per_sec;
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.jobs.to_string(),
                format!("{:.3}", r.seconds),
                format!("{:.1}", r.rounds_per_sec),
                format!("{:.0}", r.execs_per_sec),
                format!("{:.2}x", r.rounds_per_sec / serial),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &format!("Campaign throughput, {rounds} rounds, {hw} hardware thread(s)"),
            &["jobs", "seconds", "rounds/s", "execs/s", "speedup"],
            &table
        )
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"type\": \"mopfuzzer-parallel-bench\",");
    let _ = writeln!(json, "  \"version\": 2,");
    let _ = writeln!(json, "  \"host\": {},", bench::host_meta_json());
    let _ = writeln!(json, "  \"rounds\": {rounds},");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"results\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"jobs\": {}, \"seconds\": {:.6}, \"rounds_per_sec\": {:.3}, \
             \"execs_per_sec\": {:.3}, \"executions\": {}, \"speedup\": {:.3}}}{comma}",
            r.jobs,
            r.seconds,
            r.rounds_per_sec,
            r.execs_per_sec,
            r.executions,
            r.rounds_per_sec / serial,
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    std::fs::write(&out_path, json).expect("write bench output");
    eprintln!("wrote {out_path}");
}
