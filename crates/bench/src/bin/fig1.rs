//! Figure 1 — the Euclidean-distance trajectory of a bug-triggering run:
//! Δ(OBVᵢ, OBV_seed) per iteration, with "large jump" iterations marked.
//!
//! The paper's case study (JDK-8312741) crashes at the 48th mutant after
//! a rising, jumpy curve. This binary searches RNG seeds for a run that
//! ends in a crash and prints its curve.

use bench::{scale_from_args, sparkline};
use mopfuzzer::stats::{large_jumps, trajectory};
use mopfuzzer::{fuzz, FuzzConfig, Variant};

fn main() {
    let metrics = bench::metrics::start();
    run();
    bench::metrics::finish(metrics.as_deref());
}

fn run() {
    let scale = scale_from_args();
    let seeds = bench::experiment_seeds(4);
    let pool = jvmsim::JvmSpec::differential_pool();
    let mut chosen = None;
    'search: for round in 0..(200 * scale) {
        let seed = &seeds[round as usize % seeds.len()];
        let guidance = pool[round as usize % pool.len()].clone();
        let config = FuzzConfig {
            max_iterations: 50,
            variant: Variant::Full,
            guidance,
            rng_seed: 31 + round,
            weight_scheme: Default::default(),
            banned: Vec::new(),
            fault: None,
        };
        let outcome = fuzz(&seed.program, &config);
        if outcome.crash.is_some() && outcome.records.len() >= 10 {
            chosen = Some((seed.name.clone(), config, outcome));
            break 'search;
        }
    }
    let Some((seed_name, config, outcome)) = chosen else {
        println!("no crashing run found at this scale; rerun with a larger scale argument");
        return;
    };
    let crash = outcome.crash.as_ref().expect("crashing run selected");
    let curve = trajectory(&outcome.seed_obv, &outcome.records);
    let jumps = large_jumps(&curve, 4.0);

    println!("== Figure 1: Δ(OBV_i, OBV_seed) per iteration ==");
    println!(
        "seed: {seed_name}, guidance JVM: {}, crash at mutant {}: {} ({})",
        config.guidance.name(),
        outcome.records.len(),
        crash.bug_id,
        crash.component.label()
    );
    println!("{}", sparkline(&curve));
    println!("iter, delta, mutator, jump");
    for (i, record) in outcome.records.iter().enumerate() {
        println!(
            "{:4}, {:8.2}, {:24}, {}",
            record.iteration,
            curve[i],
            record.mutator.label(),
            if jumps.contains(&i) { "JUMP" } else { "" }
        );
    }
    println!(
        "shape check: starts at {:.1}, ends at {:.1}, {} large jumps — paper: low start, high end, several jumps, crash after accumulation",
        curve.first().copied().unwrap_or(0.0),
        curve.last().copied().unwrap_or(0.0),
        jumps.len()
    );
}
