//! Differential-oracle throughput across worker counts (`--oracle-jobs`).
//!
//! Builds a set of optimization-heavy mutants (one short fuzzing run per
//! experiment seed), then replays the full differential oracle over them
//! at oracle-jobs ∈ {1, 2, 4, 8}, timing each sweep, and writes
//! `BENCH_oracle.json` (execs/sec, speedup over the serial oracle).
//! Because the parallel oracle is bit-deterministic, every worker count
//! must produce `DifferentialResult`s identical to the serial loop's —
//! the bench asserts this, so it doubles as an equivalence smoke test.
//!
//! Speedup is bounded by the host: the recorded `host` block says what
//! OS/arch and how many hardware threads the numbers were taken on. The
//! oracle's fan-out is also bounded by the pool size (8 simulated JVMs),
//! so oracle-jobs 8 is the natural ceiling.
//!
//! Flags:
//!   --smoke       tiny repeat count (CI smoke mode)
//!   --out PATH    output path (default BENCH_oracle.json)
//!   --repeats N   override the sweep count

use bench::{experiment_seeds, render_table};
use jvmsim::{JvmSpec, RunOptions};
use mopfuzzer::{differential_jobs, fuzz, DifferentialResult, FuzzConfig};
use std::fmt::Write as _;
use std::time::Instant;

const ORACLE_JOBS: [usize; 4] = [1, 2, 4, 8];

struct Row {
    oracle_jobs: usize,
    seconds: f64,
    execs_per_sec: f64,
    executions: u64,
}

fn main() {
    let metrics = bench::metrics::start();
    run();
    bench::metrics::finish(metrics.as_deref());
}

fn run() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let out_path = flag("--out")
        .cloned()
        .unwrap_or_else(|| "BENCH_oracle.json".into());
    let repeats: usize = match flag("--repeats") {
        Some(s) => s.parse().expect("--repeats takes a number"),
        None if smoke => 4,
        None => 24,
    };
    let hw = std::thread::available_parallelism().map_or(1, usize::from);
    let pool = JvmSpec::differential_pool();

    // The workload: each experiment seed fuzzed briefly so the oracle
    // sees realistic optimization-heavy mutants, not cold seeds. This
    // also warms allocators and code paths before any timed sweep.
    let programs: Vec<mjava::Program> = experiment_seeds(6)
        .iter()
        .enumerate()
        .map(|(i, seed)| {
            let config = FuzzConfig {
                max_iterations: 20,
                rng_seed: i as u64,
                ..FuzzConfig::new(pool[i % pool.len()].clone())
            };
            fuzz(&seed.program, &config).final_mutant
        })
        .collect();
    let options = RunOptions::fuzzing();

    let mut rows: Vec<Row> = Vec::new();
    let mut baseline: Option<Vec<DifferentialResult>> = None;
    for oracle_jobs in ORACLE_JOBS {
        eprintln!(
            "running {repeats} oracle sweep(s) over {} mutant(s) at --oracle-jobs {oracle_jobs} ...",
            programs.len()
        );
        let mut executions = 0u64;
        let mut sweep: Vec<DifferentialResult> = Vec::new();
        let start = Instant::now();
        for rep in 0..repeats {
            for program in &programs {
                let diff = differential_jobs(program, &pool, &options, oracle_jobs);
                executions += diff.executions;
                if rep == 0 {
                    sweep.push(diff);
                }
            }
        }
        let seconds = start.elapsed().as_secs_f64().max(1e-9);
        match &baseline {
            None => baseline = Some(sweep),
            Some(b) => assert_eq!(
                b, &sweep,
                "--oracle-jobs {oracle_jobs} diverged from the serial oracle: \
                 the parallel merge is broken"
            ),
        }
        rows.push(Row {
            oracle_jobs,
            seconds,
            execs_per_sec: executions as f64 / seconds,
            executions,
        });
    }

    let serial = rows[0].execs_per_sec;
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.oracle_jobs.to_string(),
                format!("{:.3}", r.seconds),
                format!("{:.0}", r.execs_per_sec),
                format!("{:.2}x", r.execs_per_sec / serial),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &format!(
                "Differential-oracle throughput, {repeats} sweep(s) x {} mutant(s) x {} JVMs, \
                 {hw} hardware thread(s)",
                programs.len(),
                pool.len()
            ),
            &["oracle-jobs", "seconds", "execs/s", "speedup"],
            &table
        )
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"type\": \"mopfuzzer-oracle-bench\",");
    let _ = writeln!(json, "  \"version\": 2,");
    let _ = writeln!(json, "  \"host\": {},", bench::host_meta_json());
    let _ = writeln!(json, "  \"programs\": {},", programs.len());
    let _ = writeln!(json, "  \"pool\": {},", pool.len());
    let _ = writeln!(json, "  \"repeats\": {repeats},");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"results\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"oracle_jobs\": {}, \"seconds\": {:.6}, \"execs_per_sec\": {:.3}, \
             \"executions\": {}, \"speedup\": {:.3}}}{comma}",
            r.oracle_jobs,
            r.seconds,
            r.execs_per_sec,
            r.executions,
            r.execs_per_sec / serial,
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    std::fs::write(&out_path, json).expect("write bench output");
    eprintln!("wrote {out_path}");
}
