//! Figure 3 — distribution of the final-mutant Euclidean distance
//! (Δ between the final mutant's OBV and the seed's) per tool.
//!
//! Paper reference: medians MopFuzzer 3881, JITFuzz 1192, Artemis in
//! between — absolute values depend on the substrate; the ordering is
//! the reproducible shape.

use baselines::{tool_campaign, Tool, ToolCampaignConfig};
use bench::{experiment_seeds, format_box, render_table, scale_from_args};
use mopfuzzer::Variant;

fn main() {
    let metrics = bench::metrics::start();
    run();
    bench::metrics::finish(metrics.as_deref());
}

fn run() {
    let scale = scale_from_args();
    let seeds = experiment_seeds(8);
    let config = ToolCampaignConfig::with_budget(1_500 * scale);
    let tools = [Tool::MopFuzzer(Variant::Full), Tool::JitFuzz, Tool::Artemis];
    let mut rows = Vec::new();
    let mut medians = Vec::new();
    for tool in tools {
        eprintln!("running {tool} ...");
        let result = tool_campaign(tool, &seeds, &config);
        rows.push(format_box(&tool.to_string(), &result.final_deltas));
        medians.push((tool.to_string(), result.median_delta()));
    }
    println!(
        "{}",
        render_table(
            "Figure 3: final-mutant Δ distribution per tool (box plot numbers)",
            &["Tool", "min", "q1", "median", "q3", "max", "n"],
            &rows
        )
    );
    for (tool, median) in &medians {
        println!("median {tool}: {median:.1}");
    }
    println!("paper reference ordering: MopFuzzer > Artemis > JITFuzz (medians 3881 / – / 1192)");
}
