//! Table 2 — status of the reported bugs.
//!
//! The injected-bug library *is* the paper's reported-bug population, so
//! the "paper" column regenerates exactly; the "found" column shows how
//! much of it a budget-limited campaign rediscovers.

use bench::{dual_family_campaign, experiment_seeds, render_table, scale_from_args};
use jvmsim::{BugKind, Family, ReportStatus};

type BugPred = Box<dyn Fn(&jvmsim::InjectedBug) -> bool>;

fn main() {
    let metrics = bench::metrics::start();
    run();
    bench::metrics::finish(metrics.as_deref());
}

fn run() {
    let scale = scale_from_args();
    let seeds = experiment_seeds(6);
    let rounds = (40 * scale) as usize;
    eprintln!(
        "running one campaign per JVM family: {rounds} rounds each over {} seeds ...",
        seeds.len()
    );
    let result = dual_family_campaign(&seeds, rounds);

    let library = jvmsim::bugs::library();
    let in_library = |id: &str| library.iter().any(|b| b.id == id);
    let found: Vec<_> = result.bugs.iter().filter(|b| in_library(&b.id)).collect();
    let found_ids: std::collections::HashSet<&str> = found.iter().map(|b| b.id.as_str()).collect();

    let count = |family: Family, pred: &dyn Fn(&jvmsim::InjectedBug) -> bool| {
        library
            .iter()
            .filter(|b| b.family == family && pred(b))
            .count()
    };
    let found_count = |family: Family, pred: &dyn Fn(&jvmsim::InjectedBug) -> bool| {
        library
            .iter()
            .filter(|b| b.family == family && pred(b) && found_ids.contains(b.id))
            .count()
    };

    let mut rows: Vec<Vec<String>> = Vec::new();
    let statuses: [(&str, BugPred); 5] = [
        ("Confirmed", Box::new(|_| true)),
        (
            "In Progress",
            Box::new(|b| b.status == ReportStatus::InProgress),
        ),
        ("Fixed", Box::new(|b| b.status == ReportStatus::Fixed)),
        (
            "Duplicate",
            Box::new(|b| b.status == ReportStatus::Duplicate),
        ),
        (
            "Not Backportable",
            Box::new(|b| b.status == ReportStatus::NotBackportable),
        ),
    ];
    for (label, pred) in &statuses {
        rows.push(vec![
            label.to_string(),
            count(Family::HotSpur, pred).to_string(),
            count(Family::J9, pred).to_string(),
            (count(Family::HotSpur, pred) + count(Family::J9, pred)).to_string(),
            format!(
                "{}+{}",
                found_count(Family::HotSpur, pred),
                found_count(Family::J9, pred)
            ),
        ]);
    }
    rows.push(vec![
        "--- types ---".into(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
    ]);
    let kinds: [(&str, BugPred); 2] = [
        ("Crash", Box::new(|b| matches!(b.kind, BugKind::Crash))),
        (
            "Miscompilation",
            Box::new(|b| matches!(b.kind, BugKind::Miscompile(_))),
        ),
    ];
    for (label, pred) in &kinds {
        rows.push(vec![
            label.to_string(),
            count(Family::HotSpur, pred).to_string(),
            count(Family::J9, pred).to_string(),
            (count(Family::HotSpur, pred) + count(Family::J9, pred)).to_string(),
            format!(
                "{}+{}",
                found_count(Family::HotSpur, pred),
                found_count(Family::J9, pred)
            ),
        ]);
    }
    println!(
        "{}",
        render_table(
            "Table 2: Status of the reported bugs (paper columns regenerate from the bug library; 'found' = rediscovered in this campaign)",
            &["Category", "OpenJDK", "OpenJ9", "Total", "found"],
            &rows
        )
    );
    println!(
        "campaign: 2×{} rounds, {} executions, {} unique bugs found ({} crash / {} miscompile)",
        rounds,
        result.executions,
        found.len(),
        found.iter().filter(|b| b.is_crash).count(),
        found.iter().filter(|b| !b.is_crash).count(),
    );
}
