//! Table 4 — distribution of the affected JIT components
//! (HotSpot-analogue on the left, OpenJ9-analogue on the right).

use bench::{experiment_seeds, render_table, scale_from_args};
use jvmsim::{Component, Family};
use std::collections::HashSet;

fn main() {
    let metrics = bench::metrics::start();
    run();
    bench::metrics::finish(metrics.as_deref());
}

fn run() {
    let scale = scale_from_args();
    let seeds = experiment_seeds(6);
    let rounds = (40 * scale) as usize;
    eprintln!("running one campaign per JVM family: {rounds} rounds each ...");
    let result = bench::dual_family_campaign(&seeds, rounds);
    let library = jvmsim::bugs::library();
    let found_ids: HashSet<&str> = result.bugs.iter().map(|b| b.id.as_str()).collect();

    let rows_for = |family: Family| -> Vec<Vec<String>> {
        let mut per: Vec<(Component, usize, usize)> = Vec::new();
        for bug in library.iter().filter(|b| b.family == family) {
            match per.iter_mut().find(|(c, _, _)| *c == bug.component) {
                Some(entry) => {
                    entry.1 += 1;
                    entry.2 += usize::from(found_ids.contains(bug.id));
                }
                None => per.push((bug.component, 1, usize::from(found_ids.contains(bug.id)))),
            }
        }
        per.sort_by_key(|(_, n, _)| std::cmp::Reverse(*n));
        per.into_iter()
            .map(|(c, n, f)| vec![c.label().to_string(), n.to_string(), f.to_string()])
            .collect()
    };

    println!(
        "{}",
        render_table(
            "Table 4 (left): HotSpot components",
            &["HotSpot Component", "# (paper)", "# found"],
            &rows_for(Family::HotSpur)
        )
    );
    println!(
        "{}",
        render_table(
            "Table 4 (right): OpenJ9 components",
            &["OpenJ9 Component", "# (paper)", "# found"],
            &rows_for(Family::J9)
        )
    );
    println!("campaign executions: {}", result.executions);
}
