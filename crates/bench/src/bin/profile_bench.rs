//! Execution profile of one campaign: where the execs/s go.
//!
//! Runs a serial campaign with the causal trace layer and the opcode
//! profiler enabled (real clock), then attributes the wall time:
//! optimizer-phase self-times, interpreter time, and the hottest
//! opcodes, written to `BENCH_profile.json`. Companion to the
//! `jtelemetry-trace` binary, which answers the same question offline
//! from a `--trace-out` file.
//!
//! The timings are wall-clock and therefore host-dependent (see the
//! recorded `host` block); the *hit counts* are deterministic and must
//! not change across runs or machines.
//!
//! Flags:
//!   --smoke       tiny round count (CI smoke mode)
//!   --out PATH    output path (default BENCH_profile.json)
//!   --rounds N    override the round count

use bench::{experiment_seeds, render_table};
use mopfuzzer::{run_campaign, CampaignConfig};
use std::fmt::Write as _;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let out_path = flag("--out")
        .cloned()
        .unwrap_or_else(|| "BENCH_profile.json".into());
    let rounds: usize = match flag("--rounds") {
        Some(s) => s.parse().expect("--rounds takes a number"),
        None if smoke => 8,
        None => 48,
    };
    let seeds = experiment_seeds(6);
    let config = CampaignConfig {
        iterations_per_seed: 30,
        rounds,
        jobs: 1,
        ..CampaignConfig::new(rounds)
    };

    // Warm up allocators and code paths before the timed, profiled run.
    run_campaign(&seeds, &config);

    jtelemetry::install(jtelemetry::Session::new().with_trace().with_profile());
    eprintln!("running {rounds} profiled round(s) ...");
    let start = Instant::now();
    let result = run_campaign(&seeds, &config);
    let seconds = start.elapsed().as_secs_f64().max(1e-9);
    let session = jtelemetry::take().expect("session installed");
    // Each trace event object opens with its name — count them without
    // a JSON parser.
    let trace_events = jtelemetry::export::trace_json(&session, &[])
        .map_or(0, |json| json.matches("{\"name\"").count());
    let snap = session.snapshot();

    let execs = result.executions + result.wasted_execs;
    let wall_ns = seconds * 1e9;
    let mut spans = snap.spans.clone();
    spans.sort_by_key(|s| std::cmp::Reverse(s.self_nanos));
    let mut opcodes = snap.opcodes.clone();
    opcodes.sort_by(|a, b| b.nanos.cmp(&a.nanos).then(b.hits.cmp(&a.hits)));

    let span_rows: Vec<Vec<String>> = spans
        .iter()
        .take(12)
        .map(|s| {
            vec![
                s.name.clone(),
                s.count.to_string(),
                format!("{:.1}", s.self_nanos as f64 / 1e6),
                format!("{:.1}%", 100.0 * s.self_nanos as f64 / wall_ns),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &format!(
                "Self-time by span, {rounds} round(s), {:.0} execs/s",
                execs as f64 / seconds
            ),
            &["span", "count", "self ms", "% wall"],
            &span_rows
        )
    );
    let opcode_rows: Vec<Vec<String>> = opcodes
        .iter()
        .take(10)
        .map(|o| {
            vec![
                o.name.clone(),
                o.hits.to_string(),
                format!("{:.1}", o.nanos as f64 / 1e6),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Top opcodes by sampled time",
            &["opcode", "hits", "sampled ms"],
            &opcode_rows
        )
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"type\": \"mopfuzzer-profile-bench\",");
    let _ = writeln!(json, "  \"version\": 1,");
    let _ = writeln!(json, "  \"host\": {},", bench::host_meta_json());
    let _ = writeln!(json, "  \"rounds\": {rounds},");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"seconds\": {seconds:.6},");
    let _ = writeln!(json, "  \"executions\": {execs},");
    let _ = writeln!(json, "  \"execs_per_sec\": {:.3},", execs as f64 / seconds);
    let _ = writeln!(json, "  \"trace_events\": {trace_events},");
    let _ = writeln!(json, "  \"spans\": [");
    for (i, s) in spans.iter().take(12).enumerate() {
        let comma = if i + 1 < spans.len().min(12) { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"count\": {}, \"self_nanos\": {}, \
             \"total_nanos\": {}}}{comma}",
            s.name, s.count, s.self_nanos, s.total_nanos,
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"opcodes\": [");
    for (i, o) in opcodes.iter().take(10).enumerate() {
        let comma = if i + 1 < opcodes.len().min(10) {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"hits\": {}, \"nanos\": {}}}{comma}",
            o.name, o.hits, o.nanos,
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    std::fs::write(&out_path, json).expect("write bench output");
    eprintln!("wrote {out_path}");
}
