//! Ablation of the weighting scheme (paper §3.4, "Rationale Behind the
//! Weighting Scheme"): the paper's normalized Euclidean update (Eq. 3)
//! versus the rejected raw-sum alternative, which high-frequency
//! behaviours (inlining) dominate.
//!
//! The claim to check: under the raw-sum scheme, mutator weights collapse
//! onto whichever mutator touches frequent behaviours, and final mutants
//! trigger *fewer distinct* behaviours even when their raw counts are
//! similar.

use bench::{experiment_seeds, render_table, scale_from_args};
use mopfuzzer::{fuzz, FuzzConfig, MutatorKind, Variant, WeightScheme};

fn main() {
    let metrics = bench::metrics::start();
    run();
    bench::metrics::finish(metrics.as_deref());
}

fn run() {
    let scale = scale_from_args();
    let seeds = experiment_seeds(6);
    let pool = jvmsim::JvmSpec::differential_pool();
    let runs = (24 * scale) as u64;

    let mut rows = Vec::new();
    for (label, scheme) in [
        ("Eq. 3 (normalized Δ)", WeightScheme::NormalizedDelta),
        ("raw sum (rejected)", WeightScheme::RawSum),
    ] {
        eprintln!("running {label} ...");
        let mut deltas = Vec::new();
        let mut distinct = Vec::new();
        let mut concentration = Vec::new();
        for round in 0..runs {
            let seed = &seeds[round as usize % seeds.len()];
            let config = FuzzConfig {
                max_iterations: 30,
                variant: Variant::Full,
                guidance: pool[round as usize % pool.len()].clone().without_bugs(),
                rng_seed: 17 + round,
                weight_scheme: scheme,
                banned: Vec::new(),
                fault: None,
            };
            let outcome = fuzz(&seed.program, &config);
            deltas.push(outcome.final_delta());
            distinct.push(outcome.records.last().map_or(0, |r| r.obv.distinct()) as f64);
            // Weight concentration: share of total weight held by the
            // single heaviest mutator (1/13 ≈ 0.077 = uniform).
            let total: f64 = outcome.weights.values().sum();
            let max = outcome.weights.values().cloned().fold(0.0f64, f64::max);
            concentration.push(max / total.max(f64::MIN_POSITIVE));
        }
        rows.push(vec![
            label.to_string(),
            format!("{:.1}", mopfuzzer::stats::median(&deltas)),
            format!("{:.1}", mopfuzzer::stats::median(&distinct)),
            format!("{:.2}", mopfuzzer::stats::median(&concentration)),
        ]);
    }
    println!(
        "{}",
        render_table(
            "Weighting-scheme ablation (medians over runs)",
            &[
                "Scheme",
                "final Δ",
                "distinct behaviours",
                "weight concentration",
            ],
            &rows
        )
    );
    println!(
        "expected shape: the raw-sum scheme concentrates weight on one mutator \
         (concentration → 1.0) and triggers fewer distinct behaviours; there are {} mutators, \
         so uniform concentration is {:.2}",
        MutatorKind::ALL.len(),
        1.0 / MutatorKind::ALL.len() as f64
    );
}
