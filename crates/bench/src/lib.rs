//! # bench — the experiment harness
//!
//! One binary per table and figure of the paper's evaluation (§4), plus
//! Criterion micro-benchmarks (`benches/`). Run e.g.:
//!
//! ```text
//! cargo run --release -p bench --bin table2
//! cargo run --release -p bench --bin fig3
//! ```
//!
//! Every experiment accepts an optional positional *scale* argument
//! (default 1): larger scales run longer campaigns and tighten the
//! statistics. Results are printed as paper-style text tables with the
//! paper's reference numbers alongside, and recorded in EXPERIMENTS.md.

use jvmsim::{Family, JvmSpec, Version};
use mopfuzzer::campaign::FoundBug;
use mopfuzzer::corpus::{self, Seed};
use mopfuzzer::{run_campaign, CampaignConfig, Variant};
use std::fmt::Write as _;

/// Telemetry wiring for the experiment binaries: every `bench` binary
/// brackets its run with [`metrics::start`]/[`metrics::finish`], so
/// setting `BENCH_METRICS_OUT=FILE` makes a tool-comparison run emit the
/// same JSONL-snapshot + Prometheus exports as `mopfuzzer --metrics-out`
/// — directly comparable telemetry across the CLI, the baselines, and
/// the benchmarks (one shared `jtelemetry` session per process).
pub mod metrics {
    use std::path::{Path, PathBuf};

    /// Installs a process-wide telemetry session when `BENCH_METRICS_OUT`
    /// names a file; returns that path. Without the variable this is a
    /// no-op and all telemetry calls stay disabled (zero overhead).
    pub fn start() -> Option<PathBuf> {
        let path = std::env::var_os("BENCH_METRICS_OUT")?;
        jtelemetry::install(jtelemetry::Session::new());
        Some(PathBuf::from(path))
    }

    /// Consumes the session and writes the final snapshot: one JSONL line
    /// appended to `out` plus a Prometheus text export at `out.prom`,
    /// matching the CLI's `--metrics-out` formats byte for byte.
    pub fn finish(out: Option<&Path>) {
        let Some(session) = jtelemetry::take() else {
            return;
        };
        let Some(out) = out else {
            return;
        };
        let snap = session.snapshot();
        let mut prom = out.as_os_str().to_owned();
        prom.push(".prom");
        let jsonl = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(out)
            .and_then(|mut f| {
                use std::io::Write as _;
                writeln!(f, "{}", jtelemetry::export::jsonl_line(&snap))
            });
        if let Err(e) = jsonl {
            eprintln!("warning: metrics write failed: {e}");
        }
        if let Err(e) = std::fs::write(&prom, jtelemetry::export::prometheus(&snap)) {
            eprintln!("warning: metrics write failed: {e}");
        }
        eprintln!(
            "metrics: {} (+ {})",
            out.display(),
            Path::new(&prom).display()
        );
    }
}

/// Host metadata rendered as a JSON object, embedded as the `"host"`
/// field of every `BENCH_*.json` so recorded numbers can be compared
/// like-for-like across machines. `clock` names the session time
/// source: bench bins always time against the host monotonic clock
/// (tests are what install a `ManualClock`).
pub fn host_meta_json() -> String {
    let hw = std::thread::available_parallelism().map_or(1, usize::from);
    format!(
        "{{\"os\": \"{}\", \"arch\": \"{}\", \"family\": \"{}\", \
         \"pointer_width\": {}, \"available_parallelism\": {hw}, \
         \"debug_assertions\": {}, \"clock\": \"monotonic\"}}",
        std::env::consts::OS,
        std::env::consts::ARCH,
        std::env::consts::FAMILY,
        usize::BITS,
        cfg!(debug_assertions)
    )
}

/// The two per-family differential pools. The paper runs its campaigns
/// against OpenJDK and OpenJ9 *separately* (§4.1); pooling both families
/// would let HotSpur crash bugs mask J9 miscompilations, because a crash
/// preempts the output comparison.
pub fn family_pools() -> (Vec<JvmSpec>, Vec<JvmSpec>) {
    let hotspur = Version::ALL.iter().map(|&v| JvmSpec::hotspur(v)).collect();
    let j9 = [Version::V8, Version::V11, Version::V17]
        .into_iter()
        .map(JvmSpec::j9)
        .collect();
    (hotspur, j9)
}

/// The merged outcome of the two per-family campaigns.
#[derive(Debug, Clone, Default)]
pub struct DualResult {
    /// Deduplicated bugs across both campaigns.
    pub bugs: Vec<FoundBug>,
    /// Total JVM executions.
    pub executions: u64,
}

/// Runs one campaign per family (paper §4.1's setup) and merges the
/// findings.
pub fn dual_family_campaign(seeds: &[Seed], rounds_per_family: usize) -> DualResult {
    let (hotspur, j9) = family_pools();
    let mut merged = DualResult::default();
    let mut seen = std::collections::HashSet::new();
    for (pool, salt) in [(hotspur, 1u64), (j9, 2u64)] {
        let config = CampaignConfig {
            iterations_per_seed: 50,
            variant: Variant::Full,
            rounds: rounds_per_family,
            pool,
            rng_seed: 2024 + salt,
            supervisor: Default::default(),
            fault: None,
            jobs: 1,
            oracle_jobs: 1,
        };
        let result = run_campaign(seeds, &config);
        merged.executions += result.executions;
        for bug in result.bugs {
            if seen.insert(bug.id.clone()) {
                merged.bugs.push(bug);
            }
        }
    }
    merged
}

/// Count of merged bugs belonging to a family's population.
pub fn found_in_family(result: &DualResult, family: Family) -> usize {
    let library = jvmsim::bugs::library();
    result
        .bugs
        .iter()
        .filter(|b| {
            library
                .iter()
                .any(|lib| lib.id == b.id && lib.family == family)
        })
        .count()
}

/// Parses the scale factor from argv (default 1, clamped to 1..=100).
pub fn scale_from_args() -> u64 {
    std::env::args()
        .nth(1)
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(1)
        .clamp(1, 100)
}

/// The experiment seed corpus: the built-in seeds plus generated ones.
pub fn experiment_seeds(extra: usize) -> Vec<Seed> {
    corpus::corpus(extra, 0xC0FFEE)
}

/// Renders a simple aligned text table.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let line = |out: &mut String, cells: &[String]| {
        let mut s = String::new();
        for (i, cell) in cells.iter().enumerate() {
            let _ = write!(s, "{:<width$}  ", cell, width = widths[i]);
        }
        let _ = writeln!(out, "{}", s.trim_end());
    };
    line(
        &mut out,
        &header.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    let _ = writeln!(out, "{}", "-".repeat(total));
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// A crude ASCII sparkline for figure binaries.
pub fn sparkline(values: &[f64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().cloned().fold(f64::EPSILON, f64::max);
    values
        .iter()
        .map(|v| {
            let idx = ((v / max) * (GLYPHS.len() - 1) as f64).round() as usize;
            GLYPHS[idx.min(GLYPHS.len() - 1)]
        })
        .collect()
}

/// Formats a boxplot five-number summary.
pub fn format_box(label: &str, values: &[f64]) -> Vec<String> {
    let [min, q1, med, q3, max] = mopfuzzer::stats::five_numbers(values);
    vec![
        label.to_string(),
        format!("{:.1}", min),
        format!("{:.1}", q1),
        format!("{:.1}", med),
        format!("{:.1}", q3),
        format!("{:.1}", max),
        format!("{}", values.len()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering_aligns() {
        let t = render_table(
            "T",
            &["a", "bb"],
            &[
                vec!["x".into(), "y".into()],
                vec!["long".into(), "z".into()],
            ],
        );
        assert!(t.contains("== T =="));
        assert!(t.contains("long"));
    }

    #[test]
    fn sparkline_monotone_heights() {
        let s = sparkline(&[0.0, 1.0, 2.0, 4.0]);
        assert_eq!(s.chars().count(), 4);
    }

    #[test]
    fn experiment_seeds_extend() {
        assert_eq!(experiment_seeds(2).len(), 12);
    }

    #[test]
    fn host_meta_is_a_json_object() {
        let host = host_meta_json();
        assert!(host.starts_with('{') && host.ends_with('}'), "{host}");
        assert!(host.contains("\"os\""), "{host}");
        assert!(host.contains("\"arch\""), "{host}");
        assert!(host.contains("\"available_parallelism\""), "{host}");
        assert!(host.contains("\"clock\": \"monotonic\""), "{host}");
    }
}
