//! # jopt — the simulated JIT optimizer
//!
//! The reproduction's analogue of HotSpot's C2: a pipeline of optimization
//! phases over method ASTs, run for several rounds so that phases interact
//! (the paper's central subject). Each phase is a semantics-preserving
//! rewrite that emits [`OptEvent`]s; events render to HotSpot-style trace
//! lines under the 15 [`TraceFlag`]s, which is the *profile data* MopFuzzer
//! consumes as guidance.
//!
//! Phases (10 modules implementing 14 behaviours): inlining (with
//! synchronized-callee handling), escape analysis + scalar replacement,
//! lock elimination/coarsening/nesting, loop unswitch/peel/unroll, GVN +
//! constant folding + algebraic simplification, redundant-store
//! elimination, autobox elimination, dead code elimination, de-reflection,
//! and uncommon-trap placement.
//!
//! # Examples
//!
//! ```
//! use jopt::{optimize, FlagSet, OptLimits, PhaseId};
//!
//! let program = mjava::parse(r#"
//!     class T {
//!         static void main() {
//!             int s = 0;
//!             for (int i = 0; i < 4; i++) { s = s + i; }
//!             System.out.println(s);
//!         }
//!     }
//! "#).unwrap();
//! let out = optimize(
//!     &program, "T", "main",
//!     &PhaseId::DEFAULT_ORDER, OptLimits::default(), &FlagSet::all(),
//! ).unwrap();
//! assert!(out.log.iter().any(|line| line.starts_with("Unroll")));
//! ```

pub mod analysis;
pub mod event;
pub mod phases;
pub mod pipeline;

pub use event::{FlagSet, OptEvent, OptEventKind, TraceFlag};
pub use phases::escape::EscapeState;
pub use pipeline::{
    optimize, optimize_memo, source_fingerprint, OptCx, OptLimits, OptOutcome, PhaseId,
};
