//! Optimization events, trace flags and log-line rendering.
//!
//! The paper's guidance signal is *profile data*: text printed by JVM flags
//! such as `-XX:+TraceLoopOpts`, scraped back out with regular-expression
//! rules (paper §3.4, Listing 4). This module reproduces that loop
//! faithfully: phases emit [`OptEvent`]s, each event renders to a HotSpot-
//! style log line *only if* its governing [`TraceFlag`] is enabled, and the
//! `jprofile` crate recovers behaviour counts from the text.

use std::fmt;

/// The kinds of optimization behaviour the simulated JIT can perform.
///
/// Nineteen of these are observable through trace flags and form the
/// dimensions of the Optimization Behavior Vector; [`Dereflect`] is
/// intentionally *not* logged by any flag, mirroring the paper's remark
/// that the JVM offers no flag for de-reflection (§5.1).
///
/// [`Dereflect`]: OptEventKind::Dereflect
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OptEventKind {
    /// A call site was inlined.
    Inline,
    /// Inlining was considered and rejected (depth/size).
    InlineReject,
    /// A loop was unrolled.
    Unroll,
    /// A loop's first iteration was peeled.
    Peel,
    /// A loop-invariant branch was unswitched out of a loop.
    Unswitch,
    /// A monitor was proven thread-local and removed.
    LockEliminate,
    /// Two adjacent monitor regions were merged.
    LockCoarsen,
    /// A nested monitor region was analysed.
    NestedLock,
    /// Escape analysis proved an allocation non-escaping.
    EaNoEscape,
    /// Escape analysis found an allocation escaping through an argument.
    EaArgEscape,
    /// A non-escaping allocation was replaced by scalars.
    ScalarReplace,
    /// Dead code was removed.
    DceRemove,
    /// Global value numbering commoned an expression.
    GvnHit,
    /// An algebraic identity was simplified.
    AlgebraicSimplify,
    /// A constant expression was folded.
    ConstFold,
    /// A box/unbox round-trip was eliminated.
    AutoboxEliminate,
    /// A redundant store was eliminated.
    StoreEliminate,
    /// An uncommon trap was placed on a rarely taken branch.
    UncommonTrap,
    /// The compiler planned a deoptimization point.
    Deopt,
    /// A reflective call was devirtualized to a direct call (not logged).
    Dereflect,
}

impl OptEventKind {
    /// All kinds, in a stable order.
    pub const ALL: [OptEventKind; 20] = [
        OptEventKind::Inline,
        OptEventKind::InlineReject,
        OptEventKind::Unroll,
        OptEventKind::Peel,
        OptEventKind::Unswitch,
        OptEventKind::LockEliminate,
        OptEventKind::LockCoarsen,
        OptEventKind::NestedLock,
        OptEventKind::EaNoEscape,
        OptEventKind::EaArgEscape,
        OptEventKind::ScalarReplace,
        OptEventKind::DceRemove,
        OptEventKind::GvnHit,
        OptEventKind::AlgebraicSimplify,
        OptEventKind::ConstFold,
        OptEventKind::AutoboxEliminate,
        OptEventKind::StoreEliminate,
        OptEventKind::UncommonTrap,
        OptEventKind::Deopt,
        OptEventKind::Dereflect,
    ];

    /// The 19 kinds observable through trace flags (everything except
    /// de-reflection).
    pub fn observable() -> impl Iterator<Item = OptEventKind> {
        Self::ALL
            .into_iter()
            .filter(|k| !matches!(k, OptEventKind::Dereflect))
    }

    /// The flag whose output records this behaviour, if any.
    pub fn flag(&self) -> Option<TraceFlag> {
        use OptEventKind::*;
        Some(match self {
            Unroll | Peel | Unswitch => TraceFlag::TraceLoopOpts,
            Inline | InlineReject => TraceFlag::PrintInlining,
            LockEliminate | LockCoarsen => TraceFlag::PrintEliminateLocks,
            NestedLock => TraceFlag::TraceMonitorNesting,
            EaNoEscape | EaArgEscape => TraceFlag::PrintEscapeAnalysis,
            ScalarReplace => TraceFlag::PrintEliminateAllocations,
            DceRemove => TraceFlag::TraceDeadCodeElimination,
            GvnHit => TraceFlag::PrintOptoStatistics,
            AlgebraicSimplify => TraceFlag::PrintIdeal,
            ConstFold => TraceFlag::TraceIterativeGvn,
            AutoboxEliminate => TraceFlag::PrintEliminateAutobox,
            StoreEliminate => TraceFlag::TraceRedundantStores,
            UncommonTrap => TraceFlag::TraceUncommonTraps,
            Deopt => TraceFlag::TraceDeoptimization,
            Dereflect => return None,
        })
    }

    /// Stable snake_case name (used in reports).
    pub fn name(&self) -> &'static str {
        use OptEventKind::*;
        match self {
            Inline => "inline",
            InlineReject => "inline_reject",
            Unroll => "unroll",
            Peel => "peel",
            Unswitch => "unswitch",
            LockEliminate => "lock_eliminate",
            LockCoarsen => "lock_coarsen",
            NestedLock => "nested_lock",
            EaNoEscape => "ea_no_escape",
            EaArgEscape => "ea_arg_escape",
            ScalarReplace => "scalar_replace",
            DceRemove => "dce_remove",
            GvnHit => "gvn_hit",
            AlgebraicSimplify => "algebraic_simplify",
            ConstFold => "const_fold",
            AutoboxEliminate => "autobox_eliminate",
            StoreEliminate => "store_eliminate",
            UncommonTrap => "uncommon_trap",
            Deopt => "deopt",
            Dereflect => "dereflect",
        }
    }
}

impl fmt::Display for OptEventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// The 15 diagnostic print flags the simulated JVMs support — the analogue
/// of `-XX:+Trace...`/`-XX:+Print...` options (paper §2.2, §3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TraceFlag {
    TraceLoopOpts,
    PrintInlining,
    PrintEliminateLocks,
    TraceMonitorNesting,
    PrintEscapeAnalysis,
    PrintEliminateAllocations,
    TraceDeadCodeElimination,
    PrintOptoStatistics,
    PrintIdeal,
    TraceIterativeGvn,
    PrintEliminateAutobox,
    TraceRedundantStores,
    TraceUncommonTraps,
    TraceDeoptimization,
    /// Per-method compilation banner; carries no OBV dimension but scopes
    /// the log.
    PrintCompilation,
}

impl TraceFlag {
    /// All 15 flags.
    pub const ALL: [TraceFlag; 15] = [
        TraceFlag::TraceLoopOpts,
        TraceFlag::PrintInlining,
        TraceFlag::PrintEliminateLocks,
        TraceFlag::TraceMonitorNesting,
        TraceFlag::PrintEscapeAnalysis,
        TraceFlag::PrintEliminateAllocations,
        TraceFlag::TraceDeadCodeElimination,
        TraceFlag::PrintOptoStatistics,
        TraceFlag::PrintIdeal,
        TraceFlag::TraceIterativeGvn,
        TraceFlag::PrintEliminateAutobox,
        TraceFlag::TraceRedundantStores,
        TraceFlag::TraceUncommonTraps,
        TraceFlag::TraceDeoptimization,
        TraceFlag::PrintCompilation,
    ];

    /// The `-XX:+Name` spelling.
    pub fn option_name(&self) -> &'static str {
        match self {
            TraceFlag::TraceLoopOpts => "TraceLoopOpts",
            TraceFlag::PrintInlining => "PrintInlining",
            TraceFlag::PrintEliminateLocks => "PrintEliminateLocks",
            TraceFlag::TraceMonitorNesting => "TraceMonitorNesting",
            TraceFlag::PrintEscapeAnalysis => "PrintEscapeAnalysis",
            TraceFlag::PrintEliminateAllocations => "PrintEliminateAllocations",
            TraceFlag::TraceDeadCodeElimination => "TraceDeadCodeElimination",
            TraceFlag::PrintOptoStatistics => "PrintOptoStatistics",
            TraceFlag::PrintIdeal => "PrintIdeal",
            TraceFlag::TraceIterativeGvn => "TraceIterativeGVN",
            TraceFlag::PrintEliminateAutobox => "PrintEliminateAutobox",
            TraceFlag::TraceRedundantStores => "TraceRedundantStores",
            TraceFlag::TraceUncommonTraps => "TraceUncommonTraps",
            TraceFlag::TraceDeoptimization => "TraceDeoptimization",
            TraceFlag::PrintCompilation => "PrintCompilation",
        }
    }

    fn bit(&self) -> u16 {
        1 << (Self::ALL.iter().position(|f| f == self).expect("in ALL") as u16)
    }
}

impl fmt::Display for TraceFlag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "-XX:+{}", self.option_name())
    }
}

/// A set of enabled trace flags.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct FlagSet(u16);

impl FlagSet {
    /// No flags enabled.
    pub fn none() -> FlagSet {
        FlagSet(0)
    }

    /// All 15 flags enabled — the configuration MopFuzzer runs with.
    pub fn all() -> FlagSet {
        let mut s = FlagSet(0);
        for f in TraceFlag::ALL {
            s.enable(f);
        }
        s
    }

    /// Enables one flag.
    pub fn enable(&mut self, flag: TraceFlag) {
        self.0 |= flag.bit();
    }

    /// Disables one flag.
    pub fn disable(&mut self, flag: TraceFlag) {
        self.0 &= !flag.bit();
    }

    /// Tests one flag.
    pub fn contains(&self, flag: TraceFlag) -> bool {
        self.0 & flag.bit() != 0
    }

    /// Number of enabled flags.
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// True when no flag is enabled.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }
}

impl FromIterator<TraceFlag> for FlagSet {
    fn from_iter<I: IntoIterator<Item = TraceFlag>>(iter: I) -> FlagSet {
        let mut s = FlagSet::none();
        for f in iter {
            s.enable(f);
        }
        s
    }
}

/// One optimization behaviour performed by the JIT on a method.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptEvent {
    /// What happened.
    pub kind: OptEventKind,
    /// `Class::method` the behaviour applied to.
    pub method: String,
    /// Free-form detail (count, names), embedded in the log line.
    pub detail: String,
}

impl OptEvent {
    /// Renders the HotSpot-style log line for this event, if its governing
    /// flag is in `flags`. De-reflection renders nothing under any flags.
    pub fn log_line(&self, flags: &FlagSet) -> Option<String> {
        let flag = self.kind.flag()?;
        if !flags.contains(flag) {
            return None;
        }
        use OptEventKind::*;
        let line = match self.kind {
            Unroll => format!("Unroll {}", self.detail),
            Peel => format!("Peel {}", self.detail),
            Unswitch => format!("Unswitch {}", self.detail),
            Inline => format!("@ inlined {} ({})", self.method, self.detail),
            InlineReject => format!("@ {} failed to inline: {}", self.method, self.detail),
            LockEliminate => format!("++++ Eliminated: Lock ({})", self.detail),
            LockCoarsen => format!("Coarsened {} locks in {}", self.detail, self.method),
            NestedLock => format!("NestedLock depth {} in {}", self.detail, self.method),
            EaNoEscape => format!("{} is NoEscape", self.detail),
            EaArgEscape => format!("{} is ArgEscape", self.detail),
            ScalarReplace => format!("Scalar replaced allocation {}", self.detail),
            DceRemove => format!("DCE removed {} nodes", self.detail),
            GvnHit => format!("GVN hit {}", self.detail),
            AlgebraicSimplify => format!("Simplified {}", self.detail),
            ConstFold => format!("IGVN folded constant {}", self.detail),
            AutoboxEliminate => format!("EliminateAutobox {}", self.detail),
            StoreEliminate => format!("RedundantStore eliminated {}", self.detail),
            UncommonTrap => format!("uncommon_trap reason={} in {}", self.detail, self.method),
            Deopt => format!("Deoptimize method {} reason {}", self.method, self.detail),
            Dereflect => unreachable!("dereflect has no flag"),
        };
        Some(line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nineteen_observable_kinds() {
        assert_eq!(OptEventKind::observable().count(), 19);
        assert_eq!(OptEventKind::ALL.len(), 20);
    }

    #[test]
    fn fifteen_flags() {
        assert_eq!(TraceFlag::ALL.len(), 15);
        assert_eq!(FlagSet::all().len(), 15);
    }

    #[test]
    fn every_observable_kind_has_a_flag() {
        for kind in OptEventKind::observable() {
            assert!(kind.flag().is_some(), "{kind} lacks a flag");
        }
        assert!(OptEventKind::Dereflect.flag().is_none());
    }

    #[test]
    fn flagset_enable_disable() {
        let mut s = FlagSet::none();
        assert!(s.is_empty());
        s.enable(TraceFlag::TraceLoopOpts);
        assert!(s.contains(TraceFlag::TraceLoopOpts));
        assert!(!s.contains(TraceFlag::PrintInlining));
        s.disable(TraceFlag::TraceLoopOpts);
        assert!(s.is_empty());
    }

    #[test]
    fn flagset_from_iterator() {
        let s: FlagSet = [TraceFlag::PrintInlining, TraceFlag::PrintIdeal]
            .into_iter()
            .collect();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn log_lines_gated_by_flags() {
        let e = OptEvent {
            kind: OptEventKind::Unroll,
            method: "T::foo".into(),
            detail: "4".into(),
        };
        assert_eq!(e.log_line(&FlagSet::all()).unwrap(), "Unroll 4");
        assert_eq!(e.log_line(&FlagSet::none()), None);
        let only_inline: FlagSet = [TraceFlag::PrintInlining].into_iter().collect();
        assert_eq!(e.log_line(&only_inline), None);
    }

    #[test]
    fn dereflect_never_logs() {
        let e = OptEvent {
            kind: OptEventKind::Dereflect,
            method: "T::foo".into(),
            detail: "T::g".into(),
        };
        assert_eq!(e.log_line(&FlagSet::all()), None);
    }

    #[test]
    fn option_names_match_display() {
        assert_eq!(TraceFlag::TraceLoopOpts.to_string(), "-XX:+TraceLoopOpts");
    }
}
