//! Shared static analyses and AST-rewriting utilities used by the phases.

use mjava::{BinOp, Block, Class, Expr, LValue, Stmt};
use std::collections::{HashMap, HashSet};

/// Returns true if evaluating `e` has no side effects and cannot raise —
/// the condition for removing or duplicating it.
///
/// Conservative: calls, allocations, reflective operations, possibly-null
/// field accesses, unboxing (may NPE) and divisions with non-constant
/// divisors are all impure.
pub fn expr_is_pure(e: &Expr) -> bool {
    match e {
        Expr::Int(_) | Expr::Long(_) | Expr::Bool(_) | Expr::Null | Expr::This => true,
        Expr::Var(_) | Expr::StaticField(..) | Expr::ClassLit(_) => true,
        Expr::Unary(_, inner) | Expr::BoxInt(inner) => expr_is_pure(inner),
        Expr::UnboxInt(inner) => matches!(inner.as_ref(), Expr::BoxInt(b) if expr_is_pure(b)),
        Expr::Binary(op, lhs, rhs) => {
            let operands_pure = expr_is_pure(lhs) && expr_is_pure(rhs);
            match op {
                BinOp::Div | BinOp::Rem => {
                    operands_pure
                        && (matches!(rhs.as_ref(), Expr::Int(v) if *v != 0)
                            || matches!(rhs.as_ref(), Expr::Long(v) if *v != 0))
                }
                _ => operands_pure,
            }
        }
        // `this.f` cannot NPE; any other receiver might.
        Expr::Field(obj, _) => matches!(obj.as_ref(), Expr::This),
        Expr::Call(_) | Expr::Reflect(_) | Expr::New(_) => false,
    }
}

/// Collects the names of all variables *assigned* (not declared) anywhere
/// in the block, including nested blocks and loop headers.
pub fn assigned_vars(block: &Block) -> HashSet<String> {
    let mut out = HashSet::new();
    collect_assigned(block, &mut out);
    out
}

fn collect_assigned(block: &Block, out: &mut HashSet<String>) {
    for stmt in &block.0 {
        collect_assigned_stmt(stmt, out);
    }
}

fn collect_assigned_stmt(stmt: &Stmt, out: &mut HashSet<String>) {
    match stmt {
        Stmt::Assign {
            target: LValue::Var(name),
            ..
        } => {
            out.insert(name.clone());
        }
        Stmt::Assign { .. } => {}
        Stmt::If { then_b, else_b, .. } => {
            collect_assigned(then_b, out);
            if let Some(e) = else_b {
                collect_assigned(e, out);
            }
        }
        Stmt::While { body, .. } | Stmt::Sync { body, .. } => collect_assigned(body, out),
        Stmt::For {
            init, update, body, ..
        } => {
            if let Some(i) = init {
                collect_assigned_stmt(i, out);
            }
            if let Some(u) = update {
                collect_assigned_stmt(u, out);
            }
            collect_assigned(body, out);
        }
        Stmt::Block(b) => collect_assigned(b, out),
        _ => {}
    }
}

/// Collects the names declared anywhere inside the block (all nesting
/// levels, including `for` headers).
pub fn declared_names(block: &Block) -> HashSet<String> {
    let mut out = HashSet::new();
    collect_declared(block, &mut out);
    out
}

fn collect_declared(block: &Block, out: &mut HashSet<String>) {
    for stmt in &block.0 {
        collect_declared_stmt(stmt, out);
    }
}

fn collect_declared_stmt(stmt: &Stmt, out: &mut HashSet<String>) {
    match stmt {
        Stmt::Decl { name, .. } => {
            out.insert(name.clone());
        }
        Stmt::If { then_b, else_b, .. } => {
            collect_declared(then_b, out);
            if let Some(e) = else_b {
                collect_declared(e, out);
            }
        }
        Stmt::While { body, .. } | Stmt::Sync { body, .. } => collect_declared(body, out),
        Stmt::For {
            init, update, body, ..
        } => {
            if let Some(i) = init {
                collect_declared_stmt(i, out);
            }
            if let Some(u) = update {
                collect_declared_stmt(u, out);
            }
            collect_declared(body, out);
        }
        Stmt::Block(b) => collect_declared(b, out),
        _ => {}
    }
}

/// Counts the variable reads of `name` in the block (all nesting levels).
/// Writes to `name` do not count.
pub fn count_reads(block: &Block, name: &str) -> usize {
    let mut n = 0;
    map_exprs_in_block_ref(block, &mut |e| {
        if matches!(e, Expr::Var(v) if v == name) {
            n += 1;
        }
    });
    n
}

/// Applies `f` to every expression node in the block, post-order (children
/// before parents), at every nesting level. Assignment-target *names* are
/// not expressions, but receiver objects of field targets are visited.
pub fn map_exprs_in_block(block: &mut Block, f: &mut impl FnMut(&mut Expr)) {
    for stmt in &mut block.0 {
        map_exprs_in_stmt(stmt, f);
    }
}

/// Statement-level counterpart of [`map_exprs_in_block`].
pub fn map_exprs_in_stmt(stmt: &mut Stmt, f: &mut impl FnMut(&mut Expr)) {
    match stmt {
        Stmt::Decl { init, .. } => {
            if let Some(e) = init {
                map_expr(e, f);
            }
        }
        Stmt::Assign { target, value } => {
            if let LValue::Field(obj, _) = target {
                map_expr(obj, f);
            }
            map_expr(value, f);
        }
        Stmt::Expr(e) | Stmt::Print(e) => map_expr(e, f),
        Stmt::If {
            cond,
            then_b,
            else_b,
        } => {
            map_expr(cond, f);
            map_exprs_in_block(then_b, f);
            if let Some(e) = else_b {
                map_exprs_in_block(e, f);
            }
        }
        Stmt::While { cond, body } => {
            map_expr(cond, f);
            map_exprs_in_block(body, f);
        }
        Stmt::For {
            init,
            cond,
            update,
            body,
        } => {
            if let Some(i) = init {
                map_exprs_in_stmt(i, f);
            }
            map_expr(cond, f);
            if let Some(u) = update {
                map_exprs_in_stmt(u, f);
            }
            map_exprs_in_block(body, f);
        }
        Stmt::Sync { lock, body } => {
            map_expr(lock, f);
            map_exprs_in_block(body, f);
        }
        Stmt::Block(b) => map_exprs_in_block(b, f),
        Stmt::Return(Some(e)) => map_expr(e, f),
        Stmt::Return(None) => {}
    }
}

fn map_expr(e: &mut Expr, f: &mut impl FnMut(&mut Expr)) {
    match e {
        Expr::Unary(_, inner) | Expr::BoxInt(inner) | Expr::UnboxInt(inner) => map_expr(inner, f),
        Expr::Binary(_, lhs, rhs) => {
            map_expr(lhs, f);
            map_expr(rhs, f);
        }
        Expr::Call(call) => {
            if let mjava::CallTarget::Instance(recv) = &mut call.target {
                map_expr(recv, f);
            }
            for a in &mut call.args {
                map_expr(a, f);
            }
        }
        Expr::Reflect(r) => {
            if let Some(recv) = &mut r.receiver {
                map_expr(recv, f);
            }
            for a in &mut r.args {
                map_expr(a, f);
            }
        }
        Expr::Field(obj, _) => map_expr(obj, f),
        _ => {}
    }
    f(e);
}

/// Read-only traversal over every expression at every nesting level.
pub fn map_exprs_in_block_ref(block: &Block, f: &mut impl FnMut(&Expr)) {
    // Reuse the mutable walker on a clone-free path would need duplication;
    // a lightweight recursive reader keeps it allocation-free.
    for stmt in &block.0 {
        read_stmt(stmt, f);
    }
}

fn read_stmt(stmt: &Stmt, f: &mut impl FnMut(&Expr)) {
    match stmt {
        Stmt::Decl { init, .. } => {
            if let Some(e) = init {
                read_expr(e, f);
            }
        }
        Stmt::Assign { target, value } => {
            if let LValue::Field(obj, _) = target {
                read_expr(obj, f);
            }
            read_expr(value, f);
        }
        Stmt::Expr(e) | Stmt::Print(e) => read_expr(e, f),
        Stmt::If {
            cond,
            then_b,
            else_b,
        } => {
            read_expr(cond, f);
            map_exprs_in_block_ref(then_b, f);
            if let Some(e) = else_b {
                map_exprs_in_block_ref(e, f);
            }
        }
        Stmt::While { cond, body } => {
            read_expr(cond, f);
            map_exprs_in_block_ref(body, f);
        }
        Stmt::For {
            init,
            cond,
            update,
            body,
        } => {
            if let Some(i) = init {
                read_stmt(i, f);
            }
            read_expr(cond, f);
            if let Some(u) = update {
                read_stmt(u, f);
            }
            map_exprs_in_block_ref(body, f);
        }
        Stmt::Sync { lock, body } => {
            read_expr(lock, f);
            map_exprs_in_block_ref(body, f);
        }
        Stmt::Block(b) => map_exprs_in_block_ref(b, f),
        Stmt::Return(Some(e)) => read_expr(e, f),
        Stmt::Return(None) => {}
    }
}

fn read_expr(e: &Expr, f: &mut impl FnMut(&Expr)) {
    match e {
        Expr::Unary(_, inner) | Expr::BoxInt(inner) | Expr::UnboxInt(inner) => read_expr(inner, f),
        Expr::Binary(_, lhs, rhs) => {
            read_expr(lhs, f);
            read_expr(rhs, f);
        }
        Expr::Call(call) => {
            if let mjava::CallTarget::Instance(recv) = &call.target {
                read_expr(recv, f);
            }
            for a in &call.args {
                read_expr(a, f);
            }
        }
        Expr::Reflect(r) => {
            if let Some(recv) = &r.receiver {
                read_expr(recv, f);
            }
            for a in &r.args {
                read_expr(a, f);
            }
        }
        Expr::Field(obj, _) => read_expr(obj, f),
        _ => {}
    }
    f(e);
}

/// Substitutes reads of variable `name` with `replacement` everywhere in
/// the block. The caller must ensure `name` is not shadowed or assigned
/// inside (see [`declared_names`]/[`assigned_vars`]).
pub fn substitute_var(block: &mut Block, name: &str, replacement: &Expr) {
    map_exprs_in_block(block, &mut |e| {
        if matches!(e, Expr::Var(v) if v == name) {
            *e = replacement.clone();
        }
    });
}

/// Renames identifiers per `map`: declarations, reads, and assignment
/// targets. Used by the inliner to freshen callee locals.
pub fn rename_idents(block: &mut Block, map: &HashMap<String, String>) {
    for stmt in &mut block.0 {
        rename_stmt(stmt, map);
    }
}

fn rename_stmt(stmt: &mut Stmt, map: &HashMap<String, String>) {
    match stmt {
        Stmt::Decl { name, init, .. } => {
            if let Some(n) = map.get(name) {
                *name = n.clone();
            }
            if let Some(e) = init {
                rename_expr(e, map);
            }
        }
        Stmt::Assign { target, value } => {
            match target {
                LValue::Var(name) => {
                    if let Some(n) = map.get(name) {
                        *name = n.clone();
                    }
                }
                LValue::Field(obj, _) => rename_expr(obj, map),
                LValue::StaticField(..) => {}
            }
            rename_expr(value, map);
        }
        Stmt::Expr(e) | Stmt::Print(e) => rename_expr(e, map),
        Stmt::If {
            cond,
            then_b,
            else_b,
        } => {
            rename_expr(cond, map);
            rename_idents(then_b, map);
            if let Some(e) = else_b {
                rename_idents(e, map);
            }
        }
        Stmt::While { cond, body } => {
            rename_expr(cond, map);
            rename_idents(body, map);
        }
        Stmt::For {
            init,
            cond,
            update,
            body,
        } => {
            if let Some(i) = init {
                rename_stmt(i, map);
            }
            rename_expr(cond, map);
            if let Some(u) = update {
                rename_stmt(u, map);
            }
            rename_idents(body, map);
        }
        Stmt::Sync { lock, body } => {
            rename_expr(lock, map);
            rename_idents(body, map);
        }
        Stmt::Block(b) => rename_idents(b, map),
        Stmt::Return(Some(e)) => rename_expr(e, map),
        Stmt::Return(None) => {}
    }
}

fn rename_expr(e: &mut Expr, map: &HashMap<String, String>) {
    map_expr(e, &mut |node| {
        if let Expr::Var(v) = node {
            if let Some(n) = map.get(v) {
                *v = n.clone();
            }
        }
    });
}

/// Rewrites a callee body's *bare* member references into qualified ones so
/// the body can be spliced into a different method: instance fields become
/// `recv.f`, static fields become `Class.f`. `locals` must contain the
/// callee's parameters.
pub fn qualify_members(
    block: &mut Block,
    class: &Class,
    recv: Option<&Expr>,
    locals: &HashSet<String>,
) {
    let mut scope = locals.clone();
    qualify_block(block, class, recv, &mut scope);
}

fn qualify_block(
    block: &mut Block,
    class: &Class,
    recv: Option<&Expr>,
    scope: &mut HashSet<String>,
) {
    let outer = scope.clone();
    for stmt in &mut block.0 {
        qualify_stmt(stmt, class, recv, scope);
    }
    *scope = outer;
}

fn is_instance_field(class: &Class, name: &str) -> bool {
    class.fields.iter().any(|f| f.name == name && !f.is_static)
}

fn is_static_field(class: &Class, name: &str) -> bool {
    class.fields.iter().any(|f| f.name == name && f.is_static)
}

fn qualify_stmt(stmt: &mut Stmt, class: &Class, recv: Option<&Expr>, scope: &mut HashSet<String>) {
    let qualify_expr = |e: &mut Expr, scope: &HashSet<String>| {
        map_expr(e, &mut |node| {
            let replace = match node {
                Expr::Var(v) if !scope.contains(v.as_str()) => {
                    if is_instance_field(class, v) {
                        recv.map(|r| Expr::Field(Box::new(r.clone()), v.clone()))
                    } else if is_static_field(class, v) {
                        Some(Expr::StaticField(class.name.clone(), v.clone()))
                    } else {
                        None
                    }
                }
                Expr::This => recv.cloned(),
                _ => None,
            };
            if let Some(r) = replace {
                *node = r;
            }
        });
    };
    match stmt {
        Stmt::Decl { name, init, .. } => {
            if let Some(e) = init {
                qualify_expr(e, scope);
            }
            scope.insert(name.clone());
        }
        Stmt::Assign { target, value } => {
            qualify_expr(value, scope);
            match target {
                LValue::Var(name) if !scope.contains(name.as_str()) => {
                    if is_instance_field(class, name) {
                        if let Some(r) = recv {
                            *target = LValue::Field(r.clone(), name.clone());
                        }
                    } else if is_static_field(class, name) {
                        *target = LValue::StaticField(class.name.clone(), name.clone());
                    }
                }
                LValue::Field(obj, _) => qualify_expr(obj, scope),
                _ => {}
            }
        }
        Stmt::Expr(e) | Stmt::Print(e) => qualify_expr(e, scope),
        Stmt::If {
            cond,
            then_b,
            else_b,
        } => {
            qualify_expr(cond, scope);
            qualify_block(then_b, class, recv, scope);
            if let Some(e) = else_b {
                qualify_block(e, class, recv, scope);
            }
        }
        Stmt::While { cond, body } => {
            qualify_expr(cond, scope);
            qualify_block(body, class, recv, scope);
        }
        Stmt::For {
            init,
            cond,
            update,
            body,
        } => {
            let outer = scope.clone();
            if let Some(i) = init {
                qualify_stmt(i, class, recv, scope);
            }
            qualify_expr(cond, scope);
            if let Some(u) = update {
                qualify_stmt(u, class, recv, scope);
            }
            qualify_block(body, class, recv, scope);
            *scope = outer;
        }
        Stmt::Sync { lock, body } => {
            qualify_expr(lock, scope);
            qualify_block(body, class, recv, scope);
        }
        Stmt::Block(b) => qualify_block(b, class, recv, scope),
        Stmt::Return(Some(e)) => qualify_expr(e, scope),
        Stmt::Return(None) => {}
    }
}

/// A recognized counted loop `for (int v = start; v < bound; v = v + step)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountedLoop {
    /// Induction variable name.
    pub var: String,
    /// Initial value.
    pub start: i64,
    /// Exclusive upper bound (inclusive bounds are normalized).
    pub bound: i64,
    /// Positive step.
    pub step: i64,
}

impl CountedLoop {
    /// Number of iterations the loop performs.
    pub fn trip_count(&self) -> u64 {
        if self.bound <= self.start {
            0
        } else {
            (((self.bound - self.start) + self.step - 1) / self.step) as u64
        }
    }

    /// The induction values, in order.
    pub fn values(&self) -> impl Iterator<Item = i64> + '_ {
        (0..self.trip_count() as i64).map(move |k| self.start + k * self.step)
    }
}

/// Recognizes a constant-bounded counted `for` loop whose body neither
/// assigns nor re-declares the induction variable. Only such loops are
/// fully unrollable.
pub fn counted_loop(stmt: &Stmt) -> Option<CountedLoop> {
    let Stmt::For {
        init: Some(init),
        cond,
        update: Some(update),
        body,
    } = stmt
    else {
        return None;
    };
    let Stmt::Decl {
        name,
        ty: mjava::Type::Int,
        init: Some(Expr::Int(start)),
    } = init.as_ref()
    else {
        return None;
    };
    let (op, bound) = match cond {
        Expr::Binary(op @ (BinOp::Lt | BinOp::Le), lhs, rhs) => {
            match (lhs.as_ref(), rhs.as_ref()) {
                (Expr::Var(v), Expr::Int(b)) if v == name => (*op, *b),
                _ => return None,
            }
        }
        _ => return None,
    };
    let bound = if op == BinOp::Le { bound + 1 } else { bound };
    let step = match update.as_ref() {
        Stmt::Assign {
            target: LValue::Var(v),
            value: Expr::Binary(BinOp::Add, lhs, rhs),
        } if v == name => match (lhs.as_ref(), rhs.as_ref()) {
            (Expr::Var(v2), Expr::Int(s)) if v2 == name && *s > 0 => *s,
            _ => return None,
        },
        _ => return None,
    };
    if assigned_vars(body).contains(name) || declared_names(body).contains(name) {
        return None;
    }
    Some(CountedLoop {
        var: name.clone(),
        start: *start,
        bound,
        step,
    })
}

/// Number of statements (all nesting levels) in a block.
pub fn block_size(block: &Block) -> usize {
    let mut n = 0;
    for stmt in &block.0 {
        n += stmt_size(stmt);
    }
    n
}

fn stmt_size(stmt: &Stmt) -> usize {
    1 + match stmt {
        Stmt::If { then_b, else_b, .. } => {
            block_size(then_b) + else_b.as_ref().map_or(0, block_size)
        }
        Stmt::While { body, .. } | Stmt::Sync { body, .. } => block_size(body),
        Stmt::For {
            init, update, body, ..
        } => {
            init.as_deref().map_or(0, stmt_size)
                + update.as_deref().map_or(0, stmt_size)
                + block_size(body)
        }
        Stmt::Block(b) => block_size(b),
        _ => 0,
    }
}

/// The set of variable names read by an expression.
pub fn expr_vars(e: &Expr) -> HashSet<String> {
    let mut out = HashSet::new();
    read_expr(e, &mut |node| {
        if let Expr::Var(v) = node {
            out.insert(v.clone());
        }
    });
    out
}

/// True if the expression contains any call (direct or reflective) or
/// allocation — i.e. anything that could have side effects when duplicated.
pub fn expr_has_call(e: &Expr) -> bool {
    let mut found = false;
    read_expr(e, &mut |node| {
        if matches!(node, Expr::Call(_) | Expr::Reflect(_) | Expr::New(_)) {
            found = true;
        }
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use mjava::parse;

    fn main_body(src: &str) -> Block {
        let p = parse(&format!(
            "class T {{ int f; static int s; int g(int a) {{ return a; }} static void main() {{ {src} }} }}"
        ))
        .unwrap();
        p.classes[0].methods[1].body.clone()
    }

    #[test]
    fn purity_classification() {
        assert!(expr_is_pure(&Expr::bin(
            BinOp::Add,
            Expr::var("x"),
            Expr::Int(1)
        )));
        assert!(expr_is_pure(&Expr::bin(
            BinOp::Div,
            Expr::var("x"),
            Expr::Int(2)
        )));
        assert!(!expr_is_pure(&Expr::bin(
            BinOp::Div,
            Expr::var("x"),
            Expr::var("y")
        )));
        assert!(!expr_is_pure(&Expr::New("T".into())));
        assert!(expr_is_pure(&Expr::Field(Box::new(Expr::This), "f".into())));
        assert!(!expr_is_pure(&Expr::Field(
            Box::new(Expr::var("t")),
            "f".into()
        )));
        assert!(expr_is_pure(&Expr::UnboxInt(Box::new(Expr::BoxInt(
            Box::new(Expr::Int(1))
        )))));
        assert!(!expr_is_pure(&Expr::UnboxInt(Box::new(Expr::var("b")))));
    }

    #[test]
    fn assigned_and_declared_names() {
        let b = main_body("int x = 0; for (int i = 0; i < 3; i++) { x = x + i; int y = 1; }");
        let assigned = assigned_vars(&b);
        assert!(assigned.contains("x"));
        assert!(assigned.contains("i")); // the update assigns i
        let declared = declared_names(&b);
        assert!(declared.contains("x"));
        assert!(declared.contains("i"));
        assert!(declared.contains("y"));
    }

    #[test]
    fn substitute_var_replaces_reads() {
        let mut b = main_body("int x = i + i * 2;");
        substitute_var(&mut b, "i", &Expr::Int(7));
        let printed = mjava::print_stmt(&b.0[0]);
        assert_eq!(printed.trim(), "int x = 7 + 7 * 2;");
    }

    #[test]
    fn rename_idents_renames_decls_and_uses() {
        let mut b = main_body("int x = 1; x = x + 2; System.out.println(x);");
        let map: HashMap<_, _> = [("x".to_string(), "z9".to_string())].into();
        rename_idents(&mut b, &map);
        let text: String = b.0.iter().map(mjava::print_stmt).collect();
        assert!(!text.contains('x'), "{text}");
        assert!(text.contains("z9 = z9 + 2;"));
    }

    #[test]
    fn qualify_members_rewrites_bare_fields() {
        let p = parse(
            "class T { int f; static int s; void g() { f = f + s; } static void main() { } }",
        )
        .unwrap();
        let class = p.classes[0].clone();
        let mut body = class.methods[0].body.clone();
        let recv = Expr::var("recv0");
        qualify_members(&mut body, &class, Some(&recv), &HashSet::new());
        let text = mjava::print_stmt(&body.0[0]);
        assert_eq!(text.trim(), "recv0.f = recv0.f + T.s;");
    }

    #[test]
    fn qualify_members_respects_local_shadowing() {
        let p =
            parse("class T { int f; void g() { int f = 3; f = f + 1; } static void main() { } }")
                .unwrap();
        let class = p.classes[0].clone();
        let mut body = class.methods[0].body.clone();
        qualify_members(&mut body, &class, Some(&Expr::var("r")), &HashSet::new());
        let text: String = body.0.iter().map(mjava::print_stmt).collect();
        assert!(
            !text.contains("r.f"),
            "shadowed local must not qualify: {text}"
        );
    }

    #[test]
    fn counted_loop_recognition() {
        let b = main_body("for (int i = 0; i < 10; i++) { s = s + i; }");
        let cl = counted_loop(&b.0[0]).unwrap();
        assert_eq!(cl.var, "i");
        assert_eq!(cl.trip_count(), 10);
        assert_eq!(cl.values().collect::<Vec<_>>()[..3], [0, 1, 2]);

        // Inclusive bound normalizes.
        let b = main_body("for (int i = 2; i <= 8; i = i + 3) { s = s + i; }");
        let cl = counted_loop(&b.0[0]).unwrap();
        assert_eq!(cl.trip_count(), 3); // 2, 5, 8
        assert_eq!(cl.values().collect::<Vec<_>>(), vec![2, 5, 8]);
    }

    #[test]
    fn counted_loop_rejects_mutated_induction_var() {
        let b = main_body("for (int i = 0; i < 10; i++) { i = i + 1; }");
        assert!(counted_loop(&b.0[0]).is_none());
        let b = main_body("int n = 5; for (int i = 0; i < n; i++) { s = s + i; }");
        assert!(counted_loop(&b.0[1]).is_none(), "non-constant bound");
    }

    #[test]
    fn block_size_counts_nested() {
        let b = main_body("if (true) { int a = 1; int b = 2; } else { int c = 3; }");
        assert_eq!(block_size(&b), 4);
    }

    #[test]
    fn count_reads_ignores_writes() {
        let b = main_body("int x = 0; x = x + 1; System.out.println(x);");
        assert_eq!(count_reads(&b, "x"), 2);
    }

    #[test]
    fn expr_has_call_detects() {
        let b = main_body("int x = 1 + new T().g(2);");
        let Stmt::Decl { init: Some(e), .. } = &b.0[0] else {
            panic!()
        };
        assert!(expr_has_call(e));
        assert!(!expr_has_call(&Expr::bin(
            BinOp::Add,
            Expr::var("a"),
            Expr::Int(1)
        )));
    }
}
