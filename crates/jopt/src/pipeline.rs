//! The optimization pipeline: phase scheduling, context, limits.
//!
//! The simulated JIT mirrors HotSpot's C2 structure: a fixed sequence of
//! phases applied for several *rounds*, so that one phase's rewrite changes
//! what later phases (and later rounds) see. This iteration is what makes
//! optimization *interactions* (the paper's subject) real in the model: a
//! peeled loop can be unswitched next round, an inlined synchronized callee
//! exposes a nested monitor to the lock phases, and so on.

use crate::analysis::block_size;
use crate::event::{FlagSet, OptEvent, OptEventKind};
use crate::phases;
use std::collections::HashSet;

/// Identifies one optimizer phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PhaseId {
    /// Method inlining (incl. synchronized-callee handling).
    Inline,
    /// Escape analysis + scalar replacement.
    Escape,
    /// Lock elimination, lock coarsening, nested-lock analysis.
    Locks,
    /// Loop unswitching, peeling, unrolling.
    Loops,
    /// GVN, constant folding, algebraic simplification.
    Gvn,
    /// Redundant store elimination.
    Store,
    /// Autobox elimination.
    Autobox,
    /// Dead code elimination.
    Dce,
    /// Reflection devirtualization.
    Dereflect,
    /// Uncommon-trap placement / deoptimization planning.
    Deopt,
}

impl PhaseId {
    /// All phases in the default C2-style order.
    pub const DEFAULT_ORDER: [PhaseId; 10] = [
        PhaseId::Inline,
        PhaseId::Dereflect,
        PhaseId::Escape,
        PhaseId::Locks,
        PhaseId::Loops,
        PhaseId::Gvn,
        PhaseId::Store,
        PhaseId::Autobox,
        PhaseId::Dce,
        PhaseId::Deopt,
    ];

    /// Human-readable phase name.
    pub fn name(&self) -> &'static str {
        match self {
            PhaseId::Inline => "inline",
            PhaseId::Escape => "escape_analysis",
            PhaseId::Locks => "lock_opts",
            PhaseId::Loops => "ideal_loop",
            PhaseId::Gvn => "iterative_gvn",
            PhaseId::Store => "redundant_store",
            PhaseId::Autobox => "autobox",
            PhaseId::Dce => "dead_code",
            PhaseId::Dereflect => "dereflection",
            PhaseId::Deopt => "uncommon_trap",
        }
    }

    /// Base of this phase's coverage-block id range (each phase owns 100
    /// ids; the simulated JVM maps them into its component coverage).
    pub fn coverage_base(&self) -> u32 {
        match self {
            PhaseId::Inline => 0,
            PhaseId::Escape => 100,
            PhaseId::Locks => 200,
            PhaseId::Loops => 300,
            PhaseId::Gvn => 400,
            PhaseId::Store => 500,
            PhaseId::Autobox => 600,
            PhaseId::Dce => 700,
            PhaseId::Dereflect => 800,
            PhaseId::Deopt => 900,
        }
    }
}

/// Tunable limits, corresponding to HotSpot options like
/// `-XX:LoopUnrollLimit` and `-XX:MaxInlineSize`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptLimits {
    /// Maximum constant trip count fully unrolled.
    pub unroll_limit: u64,
    /// Maximum callee size (statements) eligible for inlining.
    pub inline_max_stmts: usize,
    /// Maximum number of inlinings per compilation (depth proxy).
    pub inline_budget: usize,
    /// Number of pipeline rounds.
    pub rounds: usize,
    /// Method size (statements) above which expanding phases stop.
    pub max_method_size: usize,
}

impl Default for OptLimits {
    fn default() -> OptLimits {
        OptLimits {
            unroll_limit: 8,
            inline_max_stmts: 12,
            inline_budget: 24,
            rounds: 3,
            max_method_size: 3000,
        }
    }
}

/// Mutable state threaded through the phases of one method compilation.
#[derive(Debug)]
pub struct OptCx<'p> {
    /// The whole (pre-optimization) program, for callee lookup and class
    /// layouts.
    pub program: &'p mjava::Program,
    /// Limits in force.
    pub limits: OptLimits,
    /// `Class::method` label for event attribution.
    pub method_label: String,
    /// Events emitted so far.
    pub events: Vec<OptEvent>,
    /// Coverage blocks touched (phase-relative ids offset by
    /// [`PhaseId::coverage_base`]).
    pub covered: HashSet<u32>,
    /// Remaining inline budget.
    pub inline_budget_left: usize,
    current_phase: PhaseId,
    fresh: u32,
}

impl<'p> OptCx<'p> {
    /// Creates a context for compiling one method.
    pub fn new(
        program: &'p mjava::Program,
        class_name: &str,
        method_name: &str,
        limits: OptLimits,
    ) -> OptCx<'p> {
        OptCx {
            program,
            limits,
            method_label: format!("{class_name}::{method_name}"),
            events: Vec::new(),
            covered: HashSet::new(),
            inline_budget_left: limits.inline_budget,
            current_phase: PhaseId::Inline,
            fresh: 0,
        }
    }

    /// Records an optimization behaviour.
    pub fn emit(&mut self, kind: OptEventKind, detail: impl Into<String>) {
        self.events.push(OptEvent {
            kind,
            method: self.method_label.clone(),
            detail: detail.into(),
        });
    }

    /// Records an optimization behaviour at most once per (kind, detail)
    /// pair. Observational phases (escape analysis, trap placement,
    /// nested-monitor reports) re-run every round without consuming their
    /// pattern; deduplicating keeps event counts proportional to program
    /// structure rather than to the round count.
    pub fn emit_once(&mut self, kind: OptEventKind, detail: impl Into<String>) {
        let detail = detail.into();
        if self
            .events
            .iter()
            .any(|e| e.kind == kind && e.detail == detail)
        {
            return;
        }
        self.emit(kind, detail);
    }

    /// Marks a coverage block of the current phase as executed.
    pub fn cover(&mut self, local_block: u32) {
        debug_assert!(local_block < 100, "phase block ids are 0..100");
        self.covered
            .insert(self.current_phase.coverage_base() + local_block);
    }

    /// Produces an optimizer-private identifier. The `$` makes collisions
    /// with mutator- and user-written names impossible (those come from
    /// `Program::fresh_name`, which never emits `$`).
    pub fn fresh(&mut self, prefix: &str) -> String {
        let n = self.fresh;
        self.fresh += 1;
        format!("{prefix}${n}")
    }

    /// Count of events of one kind emitted so far.
    pub fn count(&self, kind: OptEventKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }
}

/// The result of optimizing one method.
#[derive(Debug, Clone)]
pub struct OptOutcome {
    /// The optimized method (same name/signature, rewritten body).
    pub method: mjava::Method,
    /// Every optimization behaviour performed.
    pub events: Vec<OptEvent>,
    /// The trace log as rendered under the given flags (profile data).
    pub log: Vec<String>,
    /// Coverage blocks touched during compilation.
    pub covered: HashSet<u32>,
}

/// Optimizes one method of `program` through `phase_order`, repeated for
/// `limits.rounds` rounds.
///
/// Returns `None` when the class or method does not exist.
pub fn optimize(
    program: &mjava::Program,
    class_name: &str,
    method_name: &str,
    phase_order: &[PhaseId],
    limits: OptLimits,
    flags: &FlagSet,
) -> Option<OptOutcome> {
    let class = program.class(class_name)?;
    let method = class.method(method_name)?;
    let mut method = method.clone();
    let mut cx = OptCx::new(program, class_name, method_name, limits);
    let _trace = jtelemetry::trace_span("optimize", || vec![("method", cx.method_label.clone())]);
    for _round in 0..limits.rounds {
        for &phase in phase_order {
            if block_size(&method.body) > limits.max_method_size {
                break;
            }
            cx.current_phase = phase;
            run_phase(phase, &mut method, class, &mut cx);
        }
    }
    let mut log = Vec::new();
    if flags.contains(crate::event::TraceFlag::PrintCompilation) {
        log.push(format!("Compiled method {}", cx.method_label));
    }
    for e in &cx.events {
        if let Some(line) = e.log_line(flags) {
            log.push(line);
        }
    }
    Some(OptOutcome {
        method,
        events: cx.events,
        log,
        covered: cx.covered,
    })
}

fn run_phase(phase: PhaseId, method: &mut mjava::Method, class: &mjava::Class, cx: &mut OptCx) {
    let _span = jtelemetry::span(
        jtelemetry::FlightKind::Phase,
        phase.name(),
        &cx.method_label,
    );
    match phase {
        PhaseId::Inline => phases::inline::run(method, class, cx),
        PhaseId::Escape => phases::escape::run(method, class, cx),
        PhaseId::Locks => phases::locks::run(method, cx),
        PhaseId::Loops => phases::loops::run(method, cx),
        PhaseId::Gvn => phases::gvn::run(method, cx),
        PhaseId::Store => phases::store::run(method, cx),
        PhaseId::Autobox => phases::autobox::run(method, cx),
        PhaseId::Dce => phases::dce::run(method, cx),
        PhaseId::Dereflect => phases::dereflect::run(method, cx),
        PhaseId::Deopt => phases::deopt::run(method, cx),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_order_contains_every_phase_once() {
        let mut order = PhaseId::DEFAULT_ORDER.to_vec();
        order.sort();
        order.dedup();
        assert_eq!(order.len(), 10);
    }

    #[test]
    fn coverage_bases_are_disjoint() {
        let bases: HashSet<u32> = PhaseId::DEFAULT_ORDER
            .iter()
            .map(|p| p.coverage_base())
            .collect();
        assert_eq!(bases.len(), 10);
    }

    #[test]
    fn fresh_names_use_dollar() {
        let p = mjava::parse("class T { static void main() { } }").unwrap();
        let mut cx = OptCx::new(&p, "T", "main", OptLimits::default());
        let a = cx.fresh("u");
        let b = cx.fresh("u");
        assert_ne!(a, b);
        assert!(a.contains('$'));
    }

    #[test]
    fn optimize_missing_method_is_none() {
        let p = mjava::parse("class T { static void main() { } }").unwrap();
        assert!(optimize(
            &p,
            "T",
            "nope",
            &PhaseId::DEFAULT_ORDER,
            OptLimits::default(),
            &FlagSet::all()
        )
        .is_none());
    }

    #[test]
    fn optimize_trivial_method_is_stable() {
        let p = mjava::parse("class T { static void main() { System.out.println(1); } }").unwrap();
        let out = optimize(
            &p,
            "T",
            "main",
            &PhaseId::DEFAULT_ORDER,
            OptLimits::default(),
            &FlagSet::all(),
        )
        .unwrap();
        assert_eq!(out.method.body, p.classes[0].methods[0].body);
        // PrintCompilation banner is always present under all-flags.
        assert!(out.log[0].starts_with("Compiled method"));
    }
}
