//! The optimization pipeline: phase scheduling, context, limits.
//!
//! The simulated JIT mirrors HotSpot's C2 structure: a fixed sequence of
//! phases applied for several *rounds*, so that one phase's rewrite changes
//! what later phases (and later rounds) see. This iteration is what makes
//! optimization *interactions* (the paper's subject) real in the model: a
//! peeled loop can be unswitched next round, an inlined synchronized callee
//! exposes a nested monitor to the lock phases, and so on.

use crate::analysis::block_size;
use crate::event::{FlagSet, OptEvent, OptEventKind};
use crate::phases;
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Identifies one optimizer phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PhaseId {
    /// Method inlining (incl. synchronized-callee handling).
    Inline,
    /// Escape analysis + scalar replacement.
    Escape,
    /// Lock elimination, lock coarsening, nested-lock analysis.
    Locks,
    /// Loop unswitching, peeling, unrolling.
    Loops,
    /// GVN, constant folding, algebraic simplification.
    Gvn,
    /// Redundant store elimination.
    Store,
    /// Autobox elimination.
    Autobox,
    /// Dead code elimination.
    Dce,
    /// Reflection devirtualization.
    Dereflect,
    /// Uncommon-trap placement / deoptimization planning.
    Deopt,
}

impl PhaseId {
    /// All phases in the default C2-style order.
    pub const DEFAULT_ORDER: [PhaseId; 10] = [
        PhaseId::Inline,
        PhaseId::Dereflect,
        PhaseId::Escape,
        PhaseId::Locks,
        PhaseId::Loops,
        PhaseId::Gvn,
        PhaseId::Store,
        PhaseId::Autobox,
        PhaseId::Dce,
        PhaseId::Deopt,
    ];

    /// Human-readable phase name.
    pub fn name(&self) -> &'static str {
        match self {
            PhaseId::Inline => "inline",
            PhaseId::Escape => "escape_analysis",
            PhaseId::Locks => "lock_opts",
            PhaseId::Loops => "ideal_loop",
            PhaseId::Gvn => "iterative_gvn",
            PhaseId::Store => "redundant_store",
            PhaseId::Autobox => "autobox",
            PhaseId::Dce => "dead_code",
            PhaseId::Dereflect => "dereflection",
            PhaseId::Deopt => "uncommon_trap",
        }
    }

    /// Base of this phase's coverage-block id range (each phase owns 100
    /// ids; the simulated JVM maps them into its component coverage).
    pub fn coverage_base(&self) -> u32 {
        match self {
            PhaseId::Inline => 0,
            PhaseId::Escape => 100,
            PhaseId::Locks => 200,
            PhaseId::Loops => 300,
            PhaseId::Gvn => 400,
            PhaseId::Store => 500,
            PhaseId::Autobox => 600,
            PhaseId::Dce => 700,
            PhaseId::Dereflect => 800,
            PhaseId::Deopt => 900,
        }
    }
}

/// Tunable limits, corresponding to HotSpot options like
/// `-XX:LoopUnrollLimit` and `-XX:MaxInlineSize`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptLimits {
    /// Maximum constant trip count fully unrolled.
    pub unroll_limit: u64,
    /// Maximum callee size (statements) eligible for inlining.
    pub inline_max_stmts: usize,
    /// Maximum number of inlinings per compilation (depth proxy).
    pub inline_budget: usize,
    /// Number of pipeline rounds.
    pub rounds: usize,
    /// Method size (statements) above which expanding phases stop.
    pub max_method_size: usize,
}

impl Default for OptLimits {
    fn default() -> OptLimits {
        OptLimits {
            unroll_limit: 8,
            inline_max_stmts: 12,
            inline_budget: 24,
            rounds: 3,
            max_method_size: 3000,
        }
    }
}

/// Mutable state threaded through the phases of one method compilation.
#[derive(Debug)]
pub struct OptCx<'p> {
    /// The whole (pre-optimization) program, for callee lookup and class
    /// layouts.
    pub program: &'p mjava::Program,
    /// Limits in force.
    pub limits: OptLimits,
    /// `Class::method` label for event attribution.
    pub method_label: String,
    /// Events emitted so far.
    pub events: Vec<OptEvent>,
    /// Coverage blocks touched (phase-relative ids offset by
    /// [`PhaseId::coverage_base`]).
    pub covered: HashSet<u32>,
    /// Remaining inline budget.
    pub inline_budget_left: usize,
    current_phase: PhaseId,
    fresh: u32,
}

impl<'p> OptCx<'p> {
    /// Creates a context for compiling one method.
    pub fn new(
        program: &'p mjava::Program,
        class_name: &str,
        method_name: &str,
        limits: OptLimits,
    ) -> OptCx<'p> {
        OptCx {
            program,
            limits,
            method_label: format!("{class_name}::{method_name}"),
            events: Vec::new(),
            covered: HashSet::new(),
            inline_budget_left: limits.inline_budget,
            current_phase: PhaseId::Inline,
            fresh: 0,
        }
    }

    /// Records an optimization behaviour.
    pub fn emit(&mut self, kind: OptEventKind, detail: impl Into<String>) {
        self.events.push(OptEvent {
            kind,
            method: self.method_label.clone(),
            detail: detail.into(),
        });
    }

    /// Records an optimization behaviour at most once per (kind, detail)
    /// pair. Observational phases (escape analysis, trap placement,
    /// nested-monitor reports) re-run every round without consuming their
    /// pattern; deduplicating keeps event counts proportional to program
    /// structure rather than to the round count.
    pub fn emit_once(&mut self, kind: OptEventKind, detail: impl Into<String>) {
        let detail = detail.into();
        if self
            .events
            .iter()
            .any(|e| e.kind == kind && e.detail == detail)
        {
            return;
        }
        self.emit(kind, detail);
    }

    /// Marks a coverage block of the current phase as executed.
    pub fn cover(&mut self, local_block: u32) {
        debug_assert!(local_block < 100, "phase block ids are 0..100");
        self.covered
            .insert(self.current_phase.coverage_base() + local_block);
    }

    /// Produces an optimizer-private identifier. The `$` makes collisions
    /// with mutator- and user-written names impossible (those come from
    /// `Program::fresh_name`, which never emits `$`).
    pub fn fresh(&mut self, prefix: &str) -> String {
        let n = self.fresh;
        self.fresh += 1;
        format!("{prefix}${n}")
    }

    /// Count of events of one kind emitted so far.
    pub fn count(&self, kind: OptEventKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }
}

/// The result of optimizing one method.
#[derive(Debug, Clone)]
pub struct OptOutcome {
    /// The optimized method (same name/signature, rewritten body).
    pub method: mjava::Method,
    /// Every optimization behaviour performed.
    pub events: Vec<OptEvent>,
    /// The trace log as rendered under the given flags (profile data).
    pub log: Vec<String>,
    /// Coverage blocks touched during compilation.
    pub covered: HashSet<u32>,
}

/// Optimizes one method of `program` through `phase_order`, repeated for
/// `limits.rounds` rounds.
///
/// Returns `None` when the class or method does not exist.
pub fn optimize(
    program: &mjava::Program,
    class_name: &str,
    method_name: &str,
    phase_order: &[PhaseId],
    limits: OptLimits,
    flags: &FlagSet,
) -> Option<OptOutcome> {
    let class = program.class(class_name)?;
    let method = class.method(method_name)?;
    let mut method = method.clone();
    let mut cx = OptCx::new(program, class_name, method_name, limits);
    let _trace = jtelemetry::trace_span("optimize", || vec![("method", cx.method_label.clone())]);
    for _round in 0..limits.rounds {
        for &phase in phase_order {
            if block_size(&method.body) > limits.max_method_size {
                break;
            }
            cx.current_phase = phase;
            run_phase(phase, &mut method, class, &mut cx);
        }
    }
    let mut log = Vec::new();
    if flags.contains(crate::event::TraceFlag::PrintCompilation) {
        log.push(format!("Compiled method {}", cx.method_label));
    }
    for e in &cx.events {
        if let Some(line) = e.log_line(flags) {
            log.push(line);
        }
    }
    Some(OptOutcome {
        method,
        events: cx.events,
        log,
        covered: cx.covered,
    })
}

/// Compilation state at a round boundary: everything later rounds read.
/// `spans` records the exact `run_phase` sequence over the memoized rounds
/// so a memo hit can replay its telemetry spans — flight streams and span
/// histograms stay identical whether the pipeline ran or was replayed.
struct MemoState {
    method: mjava::Method,
    events: Vec<OptEvent>,
    covered: HashSet<u32>,
    inline_budget_left: usize,
    fresh: u32,
    spans: Vec<PhaseId>,
}

/// Statistics of the process-wide pipeline memo (for benches and
/// debugging; deterministic telemetry counters are derived elsewhere, see
/// [`take_lookup_log`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Round-boundary snapshots currently resident.
    pub entries: usize,
    /// [`optimize_memo`] calls fully served from a snapshot.
    pub hits: u64,
    /// Calls that ran at least one pipeline round.
    pub misses: u64,
}

/// Snapshot cap; on overflow the memo is flushed wholesale. Presence in
/// the memo never affects results (a miss recomputes the same state), so
/// eviction is unobservable.
const MEMO_CAP: usize = 8_192;

static PIPELINE_MEMO: OnceLock<RwLock<HashMap<u64, Arc<MemoState>>>> = OnceLock::new();
static MEMO_HITS: AtomicU64 = AtomicU64::new(0);
static MEMO_MISSES: AtomicU64 = AtomicU64::new(0);

fn memo() -> &'static RwLock<HashMap<u64, Arc<MemoState>>> {
    PIPELINE_MEMO.get_or_init(|| RwLock::new(HashMap::new()))
}

fn memo_read() -> RwLockReadGuard<'static, HashMap<u64, Arc<MemoState>>> {
    memo().read().unwrap_or_else(|e| e.into_inner())
}

fn memo_write() -> RwLockWriteGuard<'static, HashMap<u64, Arc<MemoState>>> {
    memo().write().unwrap_or_else(|e| e.into_inner())
}

thread_local! {
    /// Full-pipeline memo keys looked up by this thread, in execution
    /// order. Drained by `jvmsim::run_jvm` into `JvmRun::cache_log`, where
    /// the oracle counts hits/misses in canonical merge order — making the
    /// telemetry counters a pure function of the executions, independent
    /// of live memo state and worker scheduling.
    static LOOKUP_LOG: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Drains this thread's pipeline-memo lookup log.
pub fn take_lookup_log() -> Vec<u64> {
    LOOKUP_LOG.with(|l| std::mem::take(&mut *l.borrow_mut()))
}

/// Empties the memo and zeroes its statistics (campaign start / benches).
pub fn cache_reset() {
    memo_write().clear();
    MEMO_HITS.store(0, Ordering::Relaxed);
    MEMO_MISSES.store(0, Ordering::Relaxed);
}

/// Live statistics of the process-wide pipeline memo.
pub fn cache_stats() -> CacheStats {
    CacheStats {
        entries: memo_read().len(),
        hits: MEMO_HITS.load(Ordering::Relaxed),
        misses: MEMO_MISSES.load(Ordering::Relaxed),
    }
}

/// FNV-1a over the memo key ingredients.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn byte(&mut self, b: u8) {
        self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        for b in s.bytes() {
            self.byte(b);
        }
    }
}

/// Fingerprint of a program's canonical source, for [`optimize_memo`]'s
/// `program_fp` argument. Callers hash `mjava::print(program)` once per
/// program rather than once per compiled method.
pub fn source_fingerprint(source: &str) -> u64 {
    let mut h = Fnv::new();
    h.str(source);
    h.0
}

/// Key of the compilation state after `round` rounds of this pipeline.
/// `limits.rounds` is deliberately excluded so version configs that share
/// a phase order and limits share prefixes — a 2-round JVM's final state
/// seeds rounds 0..2 of a 3-round JVM compiling the same program.
fn memo_key(
    program_fp: u64,
    class_name: &str,
    method_name: &str,
    phase_order: &[PhaseId],
    limits: &OptLimits,
    round: usize,
) -> u64 {
    let mut h = Fnv::new();
    h.u64(program_fp);
    h.str(class_name);
    h.str(method_name);
    h.u64(phase_order.len() as u64);
    for p in phase_order {
        h.byte(*p as u8);
    }
    h.u64(limits.unroll_limit);
    h.u64(limits.inline_max_stmts as u64);
    h.u64(limits.inline_budget as u64);
    h.u64(limits.max_method_size as u64);
    h.u64(round as u64);
    h.0
}

/// [`optimize`] with cross-version memoization: round-boundary compilation
/// states are published to a process-wide memo keyed by
/// `(program fingerprint, method, phase order, limits, round)`, so the
/// eight differential-pool JVMs (and repeated runs of a corpus seed)
/// re-optimize shared pipeline prefixes at most once.
///
/// `program_fp` must be a fingerprint of `program`'s canonical source
/// (`mjava::print`) — callers compute it once per program. Trace `flags`
/// only affect log rendering, never optimization decisions, so they are
/// excluded from the key and applied to the memoized events on every call.
///
/// Bit-for-bit equivalent to [`optimize`], including telemetry: a memo hit
/// replays the pipeline's phase spans instead of running them.
pub fn optimize_memo(
    program: &mjava::Program,
    program_fp: u64,
    class_name: &str,
    method_name: &str,
    phase_order: &[PhaseId],
    limits: OptLimits,
    flags: &FlagSet,
) -> Option<OptOutcome> {
    let class = program.class(class_name)?;
    let mut method = class.method(method_name)?.clone();
    let mut cx = OptCx::new(program, class_name, method_name, limits);
    let _trace = jtelemetry::trace_span("optimize", || vec![("method", cx.method_label.clone())]);
    let key_at = |round: usize| {
        memo_key(
            program_fp,
            class_name,
            method_name,
            phase_order,
            &limits,
            round,
        )
    };
    LOOKUP_LOG.with(|l| l.borrow_mut().push(key_at(limits.rounds)));

    // Resume from the deepest memoized prefix.
    let mut start_round = 0;
    let mut prefix: Option<Arc<MemoState>> = None;
    {
        let map = memo_read();
        for round in (1..=limits.rounds).rev() {
            if let Some(state) = map.get(&key_at(round)) {
                prefix = Some(Arc::clone(state));
                start_round = round;
                break;
            }
        }
    }
    let mut spans: Vec<PhaseId> = Vec::new();
    if let Some(state) = prefix {
        for &phase in state.spans.iter() {
            let _span = jtelemetry::span(
                jtelemetry::FlightKind::Phase,
                phase.name(),
                &cx.method_label,
            );
        }
        method = state.method.clone();
        cx.events = state.events.clone();
        cx.covered = state.covered.clone();
        cx.inline_budget_left = state.inline_budget_left;
        cx.fresh = state.fresh;
        spans = state.spans.clone();
    }
    if start_round == limits.rounds {
        MEMO_HITS.fetch_add(1, Ordering::Relaxed);
    } else {
        MEMO_MISSES.fetch_add(1, Ordering::Relaxed);
    }

    for round in start_round..limits.rounds {
        for &phase in phase_order {
            if block_size(&method.body) > limits.max_method_size {
                break;
            }
            cx.current_phase = phase;
            run_phase(phase, &mut method, class, &mut cx);
            spans.push(phase);
        }
        let key = key_at(round + 1);
        let mut map = memo_write();
        if map.len() >= MEMO_CAP {
            map.clear();
        }
        map.entry(key).or_insert_with(|| {
            Arc::new(MemoState {
                method: method.clone(),
                events: cx.events.clone(),
                covered: cx.covered.clone(),
                inline_budget_left: cx.inline_budget_left,
                fresh: cx.fresh,
                spans: spans.clone(),
            })
        });
    }

    let mut log = Vec::new();
    if flags.contains(crate::event::TraceFlag::PrintCompilation) {
        log.push(format!("Compiled method {}", cx.method_label));
    }
    for e in &cx.events {
        if let Some(line) = e.log_line(flags) {
            log.push(line);
        }
    }
    Some(OptOutcome {
        method,
        events: cx.events,
        log,
        covered: cx.covered,
    })
}

fn run_phase(phase: PhaseId, method: &mut mjava::Method, class: &mjava::Class, cx: &mut OptCx) {
    let _span = jtelemetry::span(
        jtelemetry::FlightKind::Phase,
        phase.name(),
        &cx.method_label,
    );
    match phase {
        PhaseId::Inline => phases::inline::run(method, class, cx),
        PhaseId::Escape => phases::escape::run(method, class, cx),
        PhaseId::Locks => phases::locks::run(method, cx),
        PhaseId::Loops => phases::loops::run(method, cx),
        PhaseId::Gvn => phases::gvn::run(method, cx),
        PhaseId::Store => phases::store::run(method, cx),
        PhaseId::Autobox => phases::autobox::run(method, cx),
        PhaseId::Dce => phases::dce::run(method, cx),
        PhaseId::Dereflect => phases::dereflect::run(method, cx),
        PhaseId::Deopt => phases::deopt::run(method, cx),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_order_contains_every_phase_once() {
        let mut order = PhaseId::DEFAULT_ORDER.to_vec();
        order.sort();
        order.dedup();
        assert_eq!(order.len(), 10);
    }

    #[test]
    fn coverage_bases_are_disjoint() {
        let bases: HashSet<u32> = PhaseId::DEFAULT_ORDER
            .iter()
            .map(|p| p.coverage_base())
            .collect();
        assert_eq!(bases.len(), 10);
    }

    #[test]
    fn fresh_names_use_dollar() {
        let p = mjava::parse("class T { static void main() { } }").unwrap();
        let mut cx = OptCx::new(&p, "T", "main", OptLimits::default());
        let a = cx.fresh("u");
        let b = cx.fresh("u");
        assert_ne!(a, b);
        assert!(a.contains('$'));
    }

    #[test]
    fn optimize_missing_method_is_none() {
        let p = mjava::parse("class T { static void main() { } }").unwrap();
        assert!(optimize(
            &p,
            "T",
            "nope",
            &PhaseId::DEFAULT_ORDER,
            OptLimits::default(),
            &FlagSet::all()
        )
        .is_none());
    }

    /// A program that exercises inlining, loops, GVN, DCE, and fresh-name
    /// generation, so memoized state carries nontrivial context.
    const MEMO_SRC: &str = r#"
        class T {
            static int f(int x) { return x * 2; }
            static void main() {
                int s = 0;
                for (int i = 0; i < 4; i++) { s = s + T.f(i); }
                synchronized (T.class) { s = s + 1; }
                System.out.println(s);
            }
        }
    "#;

    fn fp(p: &mjava::Program) -> u64 {
        let mut h = Fnv::new();
        h.str(&mjava::print(p));
        h.0
    }

    fn assert_same_outcome(a: &OptOutcome, b: &OptOutcome) {
        assert_eq!(a.method, b.method);
        assert_eq!(a.events, b.events);
        assert_eq!(a.log, b.log);
        assert_eq!(a.covered, b.covered);
    }

    /// The memo is process-global; tests that assert its statistics must
    /// not interleave.
    static MEMO_TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn memoized_optimize_matches_direct() {
        let _guard = MEMO_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let p = mjava::parse(MEMO_SRC).unwrap();
        let limits = OptLimits::default();
        let direct = optimize(
            &p,
            "T",
            "main",
            &PhaseId::DEFAULT_ORDER,
            limits,
            &FlagSet::all(),
        )
        .unwrap();
        cache_reset();
        let _ = take_lookup_log();
        // Cold (miss), warm (full hit), and every intermediate must agree.
        for pass in 0..3 {
            let memoed = optimize_memo(
                &p,
                fp(&p),
                "T",
                "main",
                &PhaseId::DEFAULT_ORDER,
                limits,
                &FlagSet::all(),
            )
            .unwrap();
            assert_same_outcome(&direct, &memoed);
            let _ = take_lookup_log();
            let stats = cache_stats();
            assert_eq!(stats.misses, 1, "only the cold pass runs (pass {pass})");
            assert_eq!(stats.hits, pass as u64, "every warm pass is a full hit");
        }
    }

    #[test]
    fn memo_prefix_is_shared_across_round_counts() {
        let _guard = MEMO_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let p = mjava::parse(MEMO_SRC).unwrap();
        cache_reset();
        let short = OptLimits {
            rounds: 2,
            ..OptLimits::default()
        };
        let long = OptLimits {
            rounds: 3,
            ..OptLimits::default()
        };
        let a = optimize_memo(
            &p,
            fp(&p),
            "T",
            "main",
            &PhaseId::DEFAULT_ORDER,
            short,
            &FlagSet::all(),
        )
        .unwrap();
        let entries_after_short = cache_stats().entries;
        // The 3-round config resumes from the 2-round boundary; it must
        // still match a from-scratch 3-round run exactly.
        let b = optimize_memo(
            &p,
            fp(&p),
            "T",
            "main",
            &PhaseId::DEFAULT_ORDER,
            long,
            &FlagSet::all(),
        )
        .unwrap();
        let direct = optimize(
            &p,
            "T",
            "main",
            &PhaseId::DEFAULT_ORDER,
            long,
            &FlagSet::all(),
        )
        .unwrap();
        assert_same_outcome(&direct, &b);
        assert_eq!(
            cache_stats().entries,
            entries_after_short + 1,
            "resume adds exactly the round-3 boundary"
        );
        let direct_short = optimize(
            &p,
            "T",
            "main",
            &PhaseId::DEFAULT_ORDER,
            short,
            &FlagSet::all(),
        )
        .unwrap();
        assert_same_outcome(&direct_short, &a);
        let _ = take_lookup_log();
    }

    #[test]
    fn memo_key_separates_programs_limits_and_orders() {
        let base = memo_key(
            1,
            "T",
            "main",
            &PhaseId::DEFAULT_ORDER,
            &OptLimits::default(),
            2,
        );
        assert_ne!(
            base,
            memo_key(
                2,
                "T",
                "main",
                &PhaseId::DEFAULT_ORDER,
                &OptLimits::default(),
                2
            )
        );
        assert_ne!(
            base,
            memo_key(
                1,
                "T",
                "other",
                &PhaseId::DEFAULT_ORDER,
                &OptLimits::default(),
                2
            )
        );
        let reordered: Vec<PhaseId> = PhaseId::DEFAULT_ORDER.iter().rev().copied().collect();
        assert_ne!(
            base,
            memo_key(1, "T", "main", &reordered, &OptLimits::default(), 2)
        );
        let tuned = OptLimits {
            unroll_limit: 16,
            ..OptLimits::default()
        };
        assert_ne!(
            base,
            memo_key(1, "T", "main", &PhaseId::DEFAULT_ORDER, &tuned, 2)
        );
        assert_ne!(
            base,
            memo_key(
                1,
                "T",
                "main",
                &PhaseId::DEFAULT_ORDER,
                &OptLimits::default(),
                3
            )
        );
        // rounds is excluded on purpose: prefixes are shared across
        // configs that differ only in round count.
        let more_rounds = OptLimits {
            rounds: 7,
            ..OptLimits::default()
        };
        assert_eq!(
            base,
            memo_key(1, "T", "main", &PhaseId::DEFAULT_ORDER, &more_rounds, 2)
        );
    }

    #[test]
    fn optimize_trivial_method_is_stable() {
        let p = mjava::parse("class T { static void main() { System.out.println(1); } }").unwrap();
        let out = optimize(
            &p,
            "T",
            "main",
            &PhaseId::DEFAULT_ORDER,
            OptLimits::default(),
            &FlagSet::all(),
        )
        .unwrap();
        assert_eq!(out.method.body, p.classes[0].methods[0].body);
        // PrintCompilation banner is always present under all-flags.
        assert!(out.log[0].starts_with("Compiled method"));
    }
}
