//! Autobox elimination: removes box/unbox round-trips and unboxes
//! box-only `Integer` locals to plain `int`s.

use crate::analysis::{map_exprs_in_block, map_exprs_in_block_ref};
use crate::event::OptEventKind;
use crate::pipeline::OptCx;
use mjava::{Block, Expr, Method, Stmt, Type};
use std::collections::HashMap;

/// Runs the autobox-elimination phase.
pub fn run(method: &mut Method, cx: &mut OptCx) {
    roundtrip_elimination(&mut method.body, cx);
    local_unboxing(method, cx);
}

/// `Integer.valueOf(e).intValue()` → `e` and
/// `Integer.valueOf(b.intValue())` → `b`.
fn roundtrip_elimination(block: &mut Block, cx: &mut OptCx) {
    map_exprs_in_block(block, &mut |e| {
        let replacement = match e {
            Expr::UnboxInt(inner) => match inner.as_ref() {
                Expr::BoxInt(v) => Some(v.as_ref().clone()),
                _ => None,
            },
            Expr::BoxInt(inner) => match inner.as_ref() {
                Expr::UnboxInt(v) => Some(v.as_ref().clone()),
                _ => None,
            },
            _ => None,
        };
        if let Some(r) = replacement {
            cx.cover(0);
            cx.emit(OptEventKind::AutoboxEliminate, mjava::print_expr(e));
            *e = r;
        }
    });
}

/// Rewrites `Integer b = Integer.valueOf(e); ... b.intValue() ...` into an
/// `int` local when every use of `b` is an unbox and `b` is never
/// reassigned. Nullness is unaffected: `b` is initialized from a fresh box.
fn local_unboxing(method: &mut Method, cx: &mut OptCx) {
    // Find candidates: Integer locals declared once with a BoxInt init.
    let mut decl_count: HashMap<String, usize> = HashMap::new();
    collect_integer_decls(&method.body, &mut decl_count);
    let reassigned = crate::analysis::assigned_vars(&method.body);

    let mut candidates: Vec<String> = decl_count
        .iter()
        .filter(|(_, &c)| c == 1)
        .map(|(n, _)| n.clone())
        .filter(|n| !reassigned.contains(n))
        .collect();
    candidates.sort();

    for var in candidates {
        // Every occurrence must be inside `var.intValue()`.
        let mut total = 0usize;
        let mut unboxed = 0usize;
        map_exprs_in_block_ref(&method.body, &mut |e| {
            if matches!(e, Expr::Var(v) if *v == var) {
                total += 1;
            }
            if let Expr::UnboxInt(inner) = e {
                if matches!(inner.as_ref(), Expr::Var(v) if *v == var) {
                    unboxed += 1;
                }
            }
        });
        if total == 0 || total != unboxed {
            cx.cover(10);
            continue;
        }
        cx.cover(11);
        cx.emit(OptEventKind::AutoboxEliminate, var.clone());
        retype_decl(&mut method.body, &var);
        map_exprs_in_block(&mut method.body, &mut |e| {
            if let Expr::UnboxInt(inner) = e {
                if matches!(inner.as_ref(), Expr::Var(v) if *v == var) {
                    *e = Expr::var(var.clone());
                }
            }
        });
    }
}

fn collect_integer_decls(block: &Block, out: &mut HashMap<String, usize>) {
    for stmt in &block.0 {
        match stmt {
            Stmt::Decl {
                name,
                ty: Type::Integer,
                init: Some(Expr::BoxInt(_)),
            } => *out.entry(name.clone()).or_insert(0) += 1,
            // A second declaration of the same name (any type) disqualifies.
            Stmt::Decl { name, .. } => *out.entry(name.clone()).or_insert(0) += 2,
            Stmt::If { then_b, else_b, .. } => {
                collect_integer_decls(then_b, out);
                if let Some(e) = else_b {
                    collect_integer_decls(e, out);
                }
            }
            Stmt::While { body, .. } | Stmt::Sync { body, .. } | Stmt::For { body, .. } => {
                collect_integer_decls(body, out)
            }
            Stmt::Block(b) => collect_integer_decls(b, out),
            _ => {}
        }
    }
}

/// Rewrites `Integer var = Integer.valueOf(e);` into `int var = e;`.
fn retype_decl(block: &mut Block, var: &str) {
    for stmt in &mut block.0 {
        match stmt {
            Stmt::Decl { name, ty, init } if name == var => {
                if let Some(Expr::BoxInt(inner)) = init {
                    *ty = Type::Int;
                    let unboxed = inner.as_ref().clone();
                    *init = Some(unboxed);
                }
                return;
            }
            Stmt::If { then_b, else_b, .. } => {
                retype_decl(then_b, var);
                if let Some(e) = else_b {
                    retype_decl(e, var);
                }
            }
            Stmt::While { body, .. } | Stmt::Sync { body, .. } | Stmt::For { body, .. } => {
                retype_decl(body, var)
            }
            Stmt::Block(b) => retype_decl(b, var),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phases::testutil::{assert_semantics_preserved, opt_main};
    use crate::pipeline::PhaseId;

    const AUTOBOX: &[PhaseId] = &[PhaseId::Autobox];

    fn count(outcome: &crate::pipeline::OptOutcome, kind: OptEventKind) -> usize {
        outcome.events.iter().filter(|e| e.kind == kind).count()
    }

    #[test]
    fn removes_box_unbox_roundtrip() {
        let src = r#"
            class T {
                static void main() {
                    int x = Integer.valueOf(41).intValue() + 1;
                    System.out.println(x);
                }
            }
        "#;
        let out = opt_main(src, AUTOBOX, 1);
        assert_eq!(count(&out, OptEventKind::AutoboxEliminate), 1);
        let printed = mjava::print_stmt(&Stmt::Block(out.method.body.clone()));
        assert!(!printed.contains("valueOf"), "{printed}");
        assert_semantics_preserved(src, &out);
    }

    #[test]
    fn unboxes_box_only_local() {
        let src = r#"
            class T {
                static void main() {
                    Integer b = Integer.valueOf(20);
                    System.out.println(b.intValue() + b.intValue() + 2);
                }
            }
        "#;
        let out = opt_main(src, AUTOBOX, 1);
        assert_eq!(count(&out, OptEventKind::AutoboxEliminate), 1);
        let printed = mjava::print_stmt(&Stmt::Block(out.method.body.clone()));
        assert!(printed.contains("int b = 20;"), "{printed}");
        assert!(!printed.contains("intValue"), "{printed}");
        assert_semantics_preserved(src, &out);
    }

    #[test]
    fn keeps_local_with_reference_uses() {
        let src = r#"
            class T {
                static void main() {
                    Integer b = Integer.valueOf(5);
                    System.out.println(b);
                }
            }
        "#;
        let out = opt_main(src, AUTOBOX, 1);
        assert_eq!(count(&out, OptEventKind::AutoboxEliminate), 0);
        assert_semantics_preserved(src, &out);
    }

    #[test]
    fn keeps_reassigned_local() {
        let src = r#"
            class T {
                static void main() {
                    Integer b = Integer.valueOf(5);
                    b = Integer.valueOf(6);
                    System.out.println(b.intValue());
                }
            }
        "#;
        let out = opt_main(src, AUTOBOX, 1);
        assert_eq!(count(&out, OptEventKind::AutoboxEliminate), 0);
        assert_semantics_preserved(src, &out);
    }

    #[test]
    fn roundtrip_inside_loop() {
        let src = r#"
            class T {
                static void main() {
                    int s = 0;
                    for (int i = 0; i < 10; i++) {
                        s = s + Integer.valueOf(i).intValue();
                    }
                    System.out.println(s);
                }
            }
        "#;
        let out = opt_main(src, AUTOBOX, 1);
        assert_eq!(count(&out, OptEventKind::AutoboxEliminate), 1);
        assert_semantics_preserved(src, &out);
    }
}
