//! The optimizer phases.
//!
//! Each submodule implements one C2-style phase as a semantics-preserving
//! rewrite of the method AST that emits [`crate::event::OptEvent`]s — the
//! observable "optimization behaviours" the paper's guidance is built on.

pub mod autobox;
pub mod dce;
pub mod deopt;
pub mod dereflect;
pub mod escape;
pub mod gvn;
pub mod inline;
pub mod locks;
pub mod loops;
pub mod store;

#[cfg(test)]
pub(crate) mod testutil {
    use crate::event::FlagSet;
    use crate::pipeline::{optimize, OptLimits, OptOutcome, PhaseId};

    /// Optimizes `main` of `src` through the given phases (one round unless
    /// stated) and returns the outcome.
    pub fn opt_main(src: &str, phases: &[PhaseId], rounds: usize) -> OptOutcome {
        let program = mjava::parse(src).unwrap();
        let limits = OptLimits {
            rounds,
            ..OptLimits::default()
        };
        optimize(
            &program,
            main_class(&program),
            "main",
            phases,
            limits,
            &FlagSet::all(),
        )
        .expect("main exists")
    }

    /// Optimizes a named method instead of `main`.
    #[allow(dead_code)] // symmetry helper for phase tests
    pub fn opt_method(src: &str, method: &str, phases: &[PhaseId], rounds: usize) -> OptOutcome {
        let program = mjava::parse(src).unwrap();
        let limits = OptLimits {
            rounds,
            ..OptLimits::default()
        };
        optimize(
            &program,
            main_class(&program),
            method,
            phases,
            limits,
            &FlagSet::all(),
        )
        .expect("method exists")
    }

    fn main_class(program: &mjava::Program) -> &str {
        let (ci, _) = program.main_method().expect("main");
        &program.classes[ci].name
    }

    /// Runs the original and an optimized-method variant of the program and
    /// asserts identical observable behaviour. Returns the optimized
    /// program for further inspection.
    pub fn assert_semantics_preserved(src: &str, outcome: &OptOutcome) -> mjava::Program {
        let original = mjava::parse(src).unwrap();
        let before = jexec::run_program(&original, &jexec::ExecConfig::default()).unwrap();
        let mut optimized = original.clone();
        let (ci, _) = optimized.main_method().expect("main");
        let class = &mut optimized.classes[ci];
        let m = class
            .methods
            .iter_mut()
            .find(|m| m.name == outcome.method.name)
            .expect("method");
        *m = outcome.method.clone();
        let after = jexec::run_program(&optimized, &jexec::ExecConfig::default()).unwrap();
        assert_eq!(
            before.observable(),
            after.observable(),
            "optimization changed behaviour;\noptimized method:\n{}",
            mjava::print(&optimized)
        );
        optimized
    }
}
