//! Lock optimizations: nested-monitor analysis, lock coarsening, and lock
//! elimination.
//!
//! Coarsening merges adjacent `synchronized` regions over the same lock;
//! elimination removes monitors proven thread-local by escape analysis.
//! Both interact with the loop phase (unrolling creates adjacent regions)
//! and the inliner (inlined synchronized callees create nested regions) —
//! the exact interactions behind the paper's JDK-8312744 case study.

use crate::analysis::{assigned_vars, expr_is_pure, expr_vars};
use crate::event::OptEventKind;
use crate::phases::escape::{analyze, EscapeState};
use crate::pipeline::OptCx;
use mjava::{Block, Expr, Method, Stmt};

/// Runs the lock phase.
pub fn run(method: &mut Method, cx: &mut OptCx) {
    let mut site = 0u32;
    report_nesting(&method.body, &mut site, cx);
    coarsen_block(&mut method.body, cx);
    let states = analyze(method);
    eliminate_block(&mut method.body, &states, cx);
}

/// Emits a NestedLock event for every `synchronized` statement that
/// directly or transitively contains another one. Sites are numbered so
/// re-analysis in later rounds does not re-count unchanged structure.
fn report_nesting(block: &Block, site: &mut u32, cx: &mut OptCx) {
    for stmt in &block.0 {
        match stmt {
            Stmt::Sync { body, .. } => {
                let inner = max_sync_depth(body);
                if inner > 0 {
                    let here = *site;
                    *site += 1;
                    cx.cover(0);
                    cx.emit_once(OptEventKind::NestedLock, format!("{}@{here}", inner + 1));
                }
                report_nesting(body, site, cx);
            }
            Stmt::If { then_b, else_b, .. } => {
                report_nesting(then_b, site, cx);
                if let Some(e) = else_b {
                    report_nesting(e, site, cx);
                }
            }
            Stmt::While { body, .. } | Stmt::For { body, .. } => report_nesting(body, site, cx),
            Stmt::Block(b) => report_nesting(b, site, cx),
            _ => {}
        }
    }
}

fn max_sync_depth(block: &Block) -> usize {
    let mut max = 0;
    for stmt in &block.0 {
        let d = match stmt {
            Stmt::Sync { body, .. } => 1 + max_sync_depth(body),
            Stmt::If { then_b, else_b, .. } => {
                max_sync_depth(then_b).max(else_b.as_ref().map_or(0, max_sync_depth))
            }
            Stmt::While { body, .. } | Stmt::For { body, .. } => max_sync_depth(body),
            Stmt::Block(b) => max_sync_depth(b),
            _ => 0,
        };
        max = max.max(d);
    }
    max
}

/// Merges adjacent `synchronized` statements over the same (pure) lock
/// expression, wrapping the original bodies in blocks to preserve scoping.
fn coarsen_block(block: &mut Block, cx: &mut OptCx) {
    // Recurse first.
    for stmt in &mut block.0 {
        match stmt {
            Stmt::Sync { body, .. } | Stmt::While { body, .. } | Stmt::For { body, .. } => {
                coarsen_block(body, cx)
            }
            Stmt::If { then_b, else_b, .. } => {
                coarsen_block(then_b, cx);
                if let Some(e) = else_b {
                    coarsen_block(e, cx);
                }
            }
            Stmt::Block(b) => coarsen_block(b, cx),
            _ => {}
        }
    }
    let mut i = 0;
    while i + 1 < block.0.len() {
        let mergeable = match (&block.0[i], &block.0[i + 1]) {
            (Stmt::Sync { lock: l1, body: b1 }, Stmt::Sync { lock: l2, .. }) => {
                l1 == l2
                    && expr_is_pure(l1)
                    // The first body must not redirect the lock variable.
                    && expr_vars(l1).is_disjoint(&assigned_vars(b1))
            }
            _ => false,
        };
        if mergeable {
            cx.cover(10);
            cx.emit(OptEventKind::LockCoarsen, "2");
            let Stmt::Sync { lock, body: b1 } = block.0.remove(i) else {
                unreachable!()
            };
            let Stmt::Sync { body: b2, .. } = block.0.remove(i) else {
                unreachable!()
            };
            block.0.insert(
                i,
                Stmt::Sync {
                    lock,
                    body: Block(vec![Stmt::Block(b1), Stmt::Block(b2)]),
                },
            );
            // Stay at i: the merged region may be adjacent to another.
        } else {
            i += 1;
        }
    }
}

/// Removes monitors whose lock object is provably thread-local.
fn eliminate_block(
    block: &mut Block,
    states: &std::collections::HashMap<String, EscapeState>,
    cx: &mut OptCx,
) {
    let mut i = 0;
    while i < block.0.len() {
        let eliminable = match &block.0[i] {
            Stmt::Sync { lock, .. } => match lock {
                Expr::Var(v) => states.get(v) == Some(&EscapeState::NoEscape),
                Expr::New(_) => true,
                _ => false,
            },
            _ => false,
        };
        if eliminable {
            cx.cover(20);
            let Stmt::Sync { lock, body } = block.0.remove(i) else {
                unreachable!()
            };
            let what = match &lock {
                Expr::Var(v) => v.clone(),
                _ => "fresh".to_string(),
            };
            cx.emit(OptEventKind::LockEliminate, what);
            block.0.insert(i, Stmt::Block(body));
        }
        match &mut block.0[i] {
            Stmt::Sync { body, .. } | Stmt::While { body, .. } | Stmt::For { body, .. } => {
                eliminate_block(body, states, cx)
            }
            Stmt::If { then_b, else_b, .. } => {
                eliminate_block(then_b, states, cx);
                if let Some(e) = else_b {
                    eliminate_block(e, states, cx);
                }
            }
            Stmt::Block(b) => eliminate_block(b, states, cx),
            _ => {}
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::OptEventKind;
    use crate::phases::testutil::{assert_semantics_preserved, opt_main};
    use crate::pipeline::PhaseId;

    const LOCKS: &[PhaseId] = &[PhaseId::Locks];

    fn count(outcome: &crate::pipeline::OptOutcome, kind: OptEventKind) -> usize {
        outcome.events.iter().filter(|e| e.kind == kind).count()
    }

    #[test]
    fn coarsens_adjacent_regions() {
        let src = r#"
            class T {
                static int s;
                static void main() {
                    synchronized (T.class) { s = s + 1; }
                    synchronized (T.class) { s = s + 2; }
                    System.out.println(s);
                }
            }
        "#;
        let out = opt_main(src, LOCKS, 1);
        assert_eq!(count(&out, OptEventKind::LockCoarsen), 1);
        let printed = mjava::print_stmt(&Stmt::Block(out.method.body.clone()));
        assert_eq!(printed.matches("synchronized (").count(), 1, "{printed}");
        assert_semantics_preserved(src, &out);
    }

    #[test]
    fn coarsens_three_regions_into_one() {
        let src = r#"
            class T {
                static int s;
                static void main() {
                    synchronized (T.class) { s = s + 1; }
                    synchronized (T.class) { s = s + 2; }
                    synchronized (T.class) { s = s + 3; }
                    System.out.println(s);
                }
            }
        "#;
        let out = opt_main(src, LOCKS, 1);
        assert_eq!(count(&out, OptEventKind::LockCoarsen), 2);
        assert_semantics_preserved(src, &out);
    }

    #[test]
    fn does_not_coarsen_different_locks() {
        let src = r#"
            class T {
                static int s;
                static void main() {
                    T a = new T();
                    T b = new T();
                    synchronized (a) { s = s + 1; }
                    synchronized (b) { s = s + 2; }
                    System.out.println(s);
                }
            }
        "#;
        let out = opt_main(src, LOCKS, 1);
        assert_eq!(count(&out, OptEventKind::LockCoarsen), 0);
        assert_semantics_preserved(src, &out);
    }

    #[test]
    fn coarsening_preserves_scoping_of_decls() {
        let src = r#"
            class T {
                static void main() {
                    synchronized (T.class) { int x = 1; System.out.println(x); }
                    synchronized (T.class) { int x = 2; System.out.println(x); }
                }
            }
        "#;
        let out = opt_main(src, LOCKS, 1);
        assert_eq!(count(&out, OptEventKind::LockCoarsen), 1);
        assert_semantics_preserved(src, &out);
    }

    #[test]
    fn eliminates_thread_local_lock() {
        let src = r#"
            class T {
                static int s;
                static void main() {
                    T l = new T();
                    synchronized (l) { s = s + 5; }
                    System.out.println(s);
                }
            }
        "#;
        let out = opt_main(src, LOCKS, 1);
        assert_eq!(count(&out, OptEventKind::LockEliminate), 1);
        let printed = mjava::print_stmt(&Stmt::Block(out.method.body.clone()));
        assert!(!printed.contains("synchronized"), "{printed}");
        assert_semantics_preserved(src, &out);
    }

    #[test]
    fn keeps_class_lock() {
        let src = r#"
            class T {
                static int s;
                static void main() {
                    synchronized (T.class) { s = 1; }
                    System.out.println(s);
                }
            }
        "#;
        let out = opt_main(src, LOCKS, 1);
        assert_eq!(count(&out, OptEventKind::LockEliminate), 0);
        assert_semantics_preserved(src, &out);
    }

    #[test]
    fn keeps_escaping_lock() {
        let src = r#"
            class T {
                static T sink;
                static int s;
                static void main() {
                    T l = new T();
                    sink = l;
                    synchronized (l) { s = 2; }
                    System.out.println(s);
                }
            }
        "#;
        let out = opt_main(src, LOCKS, 1);
        assert_eq!(count(&out, OptEventKind::LockEliminate), 0);
        assert_semantics_preserved(src, &out);
    }

    #[test]
    fn reports_nested_locks() {
        let src = r#"
            class T {
                static int s;
                static void main() {
                    synchronized (T.class) {
                        synchronized (T.class) {
                            synchronized (T.class) { s = 1; }
                        }
                    }
                    System.out.println(s);
                }
            }
        "#;
        let out = opt_main(src, LOCKS, 1);
        // Outer (depth 3) and middle (depth 2) both report.
        assert_eq!(count(&out, OptEventKind::NestedLock), 2);
        assert_semantics_preserved(src, &out);
    }

    #[test]
    fn coarsen_then_eliminate_interaction() {
        // Two adjacent regions on a thread-local lock: coarsened into one,
        // then the merged region is eliminated — a two-step interaction
        // within a single phase run.
        let src = r#"
            class T {
                static int s;
                static void main() {
                    T l = new T();
                    synchronized (l) { s = s + 1; }
                    synchronized (l) { s = s + 2; }
                    System.out.println(s);
                }
            }
        "#;
        let out = opt_main(src, LOCKS, 1);
        assert_eq!(count(&out, OptEventKind::LockCoarsen), 1);
        assert_eq!(count(&out, OptEventKind::LockEliminate), 1);
        let printed = mjava::print_stmt(&Stmt::Block(out.method.body.clone()));
        assert!(!printed.contains("synchronized"), "{printed}");
        assert_semantics_preserved(src, &out);
    }
}
