//! De-reflection: devirtualizes reflective calls with constant class and
//! method names into direct calls.
//!
//! This behaviour is intentionally *not* observable through any trace flag
//! (the paper notes the JVM offers no flag for it, §5.1) — the event exists
//! for the bug library and internal statistics only.

use crate::analysis::map_exprs_in_block;
use crate::event::OptEventKind;
use crate::pipeline::OptCx;
use mjava::{Call, CallTarget, Expr, Method};

/// Runs the de-reflection phase.
pub fn run(method: &mut Method, cx: &mut OptCx) {
    // Collect resolvable rewrites first (no &mut aliasing with cx.program).
    let program = cx.program;
    let mut rewrites: Vec<(String, String)> = Vec::new();
    map_exprs_in_block(&mut method.body, &mut |e| {
        if let Expr::Reflect(r) = e {
            let Some(class) = program.class(&r.class) else {
                return;
            };
            let Some(target) = class.method(&r.method) else {
                return;
            };
            if target.params.len() != r.args.len() {
                return;
            }
            // Receiver presence must match staticness exactly. A static
            // target with a receiver (or an instance target with `null`)
            // has reflection-specific semantics; keep the reflective form.
            match (&r.receiver, target.is_static) {
                (None, true) | (Some(_), false) => {}
                _ => return,
            }
            let call_target = match &r.receiver {
                Some(recv) => CallTarget::Instance(recv.clone()),
                None => CallTarget::Static(r.class.clone()),
            };
            rewrites.push((r.class.clone(), r.method.clone()));
            *e = Expr::Call(Call {
                target: call_target,
                method: r.method.clone(),
                args: r.args.clone(),
            });
        }
    });
    for (class, m) in rewrites {
        cx.cover(0);
        cx.emit(OptEventKind::Dereflect, format!("{class}::{m}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phases::testutil::{assert_semantics_preserved, opt_main};
    use crate::pipeline::PhaseId;
    use mjava::Stmt;

    const DEREFLECT: &[PhaseId] = &[PhaseId::Dereflect];

    fn count(outcome: &crate::pipeline::OptOutcome, kind: OptEventKind) -> usize {
        outcome.events.iter().filter(|e| e.kind == kind).count()
    }

    #[test]
    fn devirtualizes_instance_reflection() {
        let src = r#"
            class T {
                int f;
                int get(int d) { return f + d; }
                static void main() {
                    T t = new T();
                    t.f = 40;
                    System.out.println(Class.forName("T").getDeclaredMethod("get").invoke(t, 2));
                }
            }
        "#;
        let out = opt_main(src, DEREFLECT, 1);
        assert_eq!(count(&out, OptEventKind::Dereflect), 1);
        let printed = mjava::print_stmt(&Stmt::Block(out.method.body.clone()));
        assert!(!printed.contains("forName"), "{printed}");
        assert!(printed.contains("t.get(2)"), "{printed}");
        assert_semantics_preserved(src, &out);
    }

    #[test]
    fn devirtualizes_static_reflection() {
        let src = r#"
            class T {
                static int twice(int v) { return v * 2; }
                static void main() {
                    System.out.println(Class.forName("T").getDeclaredMethod("twice").invoke(null, 21));
                }
            }
        "#;
        let out = opt_main(src, DEREFLECT, 1);
        assert_eq!(count(&out, OptEventKind::Dereflect), 1);
        let printed = mjava::print_stmt(&Stmt::Block(out.method.body.clone()));
        assert!(printed.contains("T.twice(21)"), "{printed}");
        assert_semantics_preserved(src, &out);
    }

    #[test]
    fn keeps_unresolvable_reflection() {
        let src = r#"
            class T {
                static void main() {
                    System.out.println(Class.forName("Nope").getDeclaredMethod("g").invoke(null));
                }
            }
        "#;
        let out = opt_main(src, DEREFLECT, 1);
        assert_eq!(count(&out, OptEventKind::Dereflect), 0);
        let printed = mjava::print_stmt(&Stmt::Block(out.method.body.clone()));
        assert!(printed.contains("forName"), "{printed}");
        assert_semantics_preserved(src, &out);
    }

    #[test]
    fn dereflect_is_invisible_in_logs() {
        let src = r#"
            class T {
                static int one() { return 1; }
                static void main() {
                    System.out.println(Class.forName("T").getDeclaredMethod("one").invoke(null));
                }
            }
        "#;
        let out = opt_main(src, DEREFLECT, 1);
        assert_eq!(count(&out, OptEventKind::Dereflect), 1);
        assert!(
            !out.log.iter().any(|l| l.to_lowercase().contains("reflect")),
            "dereflection must not appear in profile data: {:?}",
            out.log
        );
    }
}
