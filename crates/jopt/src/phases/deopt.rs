//! Uncommon-trap placement and deoptimization planning.
//!
//! The simulated compiler cannot actually deoptimize (there is no tier-down
//! at runtime), so this phase is observational: it recognizes branches the
//! profile heuristic considers rarely taken — equality guards against
//! improbable constants, the pattern the Deoptimization-evoke mutator
//! plants — and records the trap sites and planned deoptimizations the
//! real compiler would emit. The events feed the OBV and the injected-bug
//! trigger predicates exactly like any rewriting phase's events do.

use crate::event::OptEventKind;
use crate::pipeline::OptCx;
use mjava::{BinOp, Block, Expr, Method, Stmt};

/// Equality guards against constants at or above this magnitude are deemed
/// rarely true by the branch-profile heuristic.
const RARE_CONSTANT: i64 = 256;

/// Runs the uncommon-trap phase.
pub fn run(method: &mut Method, cx: &mut OptCx) {
    let mut site = 0u32;
    scan_block(&method.body, false, &mut site, cx);
}

fn is_rare_guard(cond: &Expr) -> bool {
    match cond {
        Expr::Binary(BinOp::Eq, lhs, rhs) => {
            constant_magnitude(rhs) >= RARE_CONSTANT || constant_magnitude(lhs) >= RARE_CONSTANT
        }
        _ => false,
    }
}

fn constant_magnitude(e: &Expr) -> i64 {
    match e {
        Expr::Int(v) => v.abs(),
        Expr::Long(v) => v.abs(),
        _ => 0,
    }
}

fn scan_block(block: &Block, in_loop: bool, site: &mut u32, cx: &mut OptCx) {
    for stmt in &block.0 {
        match stmt {
            Stmt::If {
                cond,
                then_b,
                else_b,
            } => {
                if is_rare_guard(cond) {
                    let here = *site;
                    *site += 1;
                    cx.cover(0);
                    cx.emit_once(OptEventKind::UncommonTrap, format!("unstable_if@{here}"));
                    if in_loop {
                        // A trap inside compiled loop code forces a planned
                        // deoptimization point on entry.
                        cx.cover(1);
                        cx.emit_once(OptEventKind::Deopt, format!("unstable_if@{here}"));
                    }
                }
                scan_block(then_b, in_loop, site, cx);
                if let Some(e) = else_b {
                    scan_block(e, in_loop, site, cx);
                }
            }
            Stmt::While { body, .. } | Stmt::For { body, .. } => scan_block(body, true, site, cx),
            Stmt::Sync { body, .. } => scan_block(body, in_loop, site, cx),
            Stmt::Block(b) => scan_block(b, in_loop, site, cx),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phases::testutil::opt_main;
    use crate::pipeline::PhaseId;

    const DEOPT: &[PhaseId] = &[PhaseId::Deopt];

    fn count(outcome: &crate::pipeline::OptOutcome, kind: OptEventKind) -> usize {
        outcome.events.iter().filter(|e| e.kind == kind).count()
    }

    #[test]
    fn detects_rare_guard_outside_loop() {
        let src = r#"
            class T {
                static void main() {
                    int x = 3;
                    if (x == 123456) { System.out.println(1); }
                    System.out.println(2);
                }
            }
        "#;
        let out = opt_main(src, DEOPT, 1);
        assert_eq!(count(&out, OptEventKind::UncommonTrap), 1);
        assert_eq!(count(&out, OptEventKind::Deopt), 0);
    }

    #[test]
    fn rare_guard_in_loop_plans_deopt() {
        let src = r#"
            class T {
                static void main() {
                    for (int i = 0; i < 100; i++) {
                        if (i == 99999) { System.out.println(i); }
                    }
                    System.out.println(0);
                }
            }
        "#;
        let out = opt_main(src, DEOPT, 1);
        assert_eq!(count(&out, OptEventKind::UncommonTrap), 1);
        assert_eq!(count(&out, OptEventKind::Deopt), 1);
        assert!(out.log.iter().any(|l| l.contains("uncommon_trap")));
        assert!(out.log.iter().any(|l| l.contains("Deoptimize")));
    }

    #[test]
    fn common_guards_do_not_trap() {
        let src = r#"
            class T {
                static void main() {
                    for (int i = 0; i < 100; i++) {
                        if (i == 3) { System.out.println(i); }
                        if (i < 50) { System.out.println(0); }
                    }
                }
            }
        "#;
        let out = opt_main(src, DEOPT, 1);
        assert_eq!(count(&out, OptEventKind::UncommonTrap), 0);
    }

    #[test]
    fn phase_never_rewrites() {
        let src = r#"
            class T {
                static void main() {
                    for (int i = 0; i < 10; i++) {
                        if (i == 99999) { System.out.println(i); }
                    }
                }
            }
        "#;
        let out = opt_main(src, DEOPT, 3);
        let original = mjava::parse(src).unwrap();
        assert_eq!(out.method.body, original.classes[0].methods[0].body);
    }
}
