//! Escape analysis and scalar replacement.
//!
//! Tracks locals initialized with a fresh allocation and classifies them as
//! NoEscape / ArgEscape / GlobalEscape with HotSpot's conservative rules.
//! Non-escaping objects whose only uses are field reads/writes are replaced
//! by one scalar local per field; non-escaping objects used as monitors are
//! left for the lock phase (lock elimination), which is precisely the
//! inter-phase hand-off the paper's bugs live in.

use crate::event::OptEventKind;
use crate::pipeline::OptCx;
use mjava::{Block, Class, Expr, LValue, Method, Stmt, Type};
use std::collections::{HashMap, HashSet};

/// Escape classification of an allocation, ordered by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EscapeState {
    /// Never leaves the method.
    NoEscape,
    /// Passed to a call (receiver or argument).
    ArgEscape,
    /// Stored to the heap, returned, aliased, printed or compared.
    GlobalEscape,
}

/// Runs escape analysis and scalar replacement.
pub fn run(method: &mut Method, class: &Class, cx: &mut OptCx) {
    let _ = class;
    let states = analyze(method);
    cx.cover(0);
    // Report in deterministic order.
    let mut names: Vec<&String> = states.keys().collect();
    names.sort();
    for name in names {
        match states[name] {
            EscapeState::NoEscape => {
                cx.cover(1);
                cx.emit_once(OptEventKind::EaNoEscape, name.clone());
            }
            EscapeState::ArgEscape => {
                cx.cover(2);
                cx.emit_once(OptEventKind::EaArgEscape, name.clone());
            }
            EscapeState::GlobalEscape => cx.cover(3),
        }
    }
    // Scalar-replace eligible NoEscape allocations.
    let mut candidates: Vec<(String, String)> = Vec::new(); // (var, class)
    collect_alloc_decls(&method.body, &mut |name, class_name| {
        if states.get(name) == Some(&EscapeState::NoEscape) {
            candidates.push((name.to_string(), class_name.to_string()));
        }
    });
    for (var, class_name) in candidates {
        if used_as_lock(&method.body, &var) {
            // Leave monitor-carrying objects to the lock phase.
            cx.cover(4);
            continue;
        }
        let Some(alloc_class) = cx.program.class(&class_name) else {
            continue;
        };
        if !only_field_uses(&method.body, &var) {
            cx.cover(5);
            continue;
        }
        scalar_replace(&mut method.body, &var, alloc_class);
        cx.cover(6);
        cx.emit(OptEventKind::ScalarReplace, var.clone());
    }
}

/// Classifies every tracked allocation in the method.
pub fn analyze(method: &Method) -> HashMap<String, EscapeState> {
    // Tracked: locals declared exactly once with a `new` initializer and
    // never re-assigned.
    let mut decl_counts: HashMap<String, usize> = HashMap::new();
    let mut allocs: HashMap<String, EscapeState> = HashMap::new();
    collect_decl_info(&method.body, &mut decl_counts, &mut allocs);
    for p in &method.params {
        decl_counts
            .entry(p.name.clone())
            .and_modify(|c| *c += 1)
            .or_insert(1);
    }
    allocs.retain(|name, _| decl_counts.get(name) == Some(&1));
    let reassigned = reassigned_vars(&method.body);
    allocs.retain(|name, _| !reassigned.contains(name));
    let mut states = allocs;
    scan_block(&method.body, &mut states);
    states
}

fn upgrade(states: &mut HashMap<String, EscapeState>, var: &str, to: EscapeState) {
    if let Some(s) = states.get_mut(var) {
        if to > *s {
            *s = to;
        }
    }
}

fn collect_decl_info(
    block: &Block,
    counts: &mut HashMap<String, usize>,
    allocs: &mut HashMap<String, EscapeState>,
) {
    for stmt in &block.0 {
        match stmt {
            Stmt::Decl { name, init, .. } => {
                *counts.entry(name.clone()).or_insert(0) += 1;
                if let Some(Expr::New(_)) = init {
                    allocs.insert(name.clone(), EscapeState::NoEscape);
                }
            }
            Stmt::If { then_b, else_b, .. } => {
                collect_decl_info(then_b, counts, allocs);
                if let Some(e) = else_b {
                    collect_decl_info(e, counts, allocs);
                }
            }
            Stmt::While { body, .. } | Stmt::Sync { body, .. } => {
                collect_decl_info(body, counts, allocs)
            }
            Stmt::For { init, body, .. } => {
                if let Some(i) = init {
                    if let Stmt::Decl { name, .. } = i.as_ref() {
                        *counts.entry(name.clone()).or_insert(0) += 1;
                    }
                }
                collect_decl_info(body, counts, allocs);
            }
            Stmt::Block(b) => collect_decl_info(b, counts, allocs),
            _ => {}
        }
    }
}

fn reassigned_vars(block: &Block) -> HashSet<String> {
    crate::analysis::assigned_vars(block)
}

fn scan_block(block: &Block, states: &mut HashMap<String, EscapeState>) {
    for stmt in &block.0 {
        scan_stmt(stmt, states);
    }
}

fn scan_stmt(stmt: &Stmt, states: &mut HashMap<String, EscapeState>) {
    match stmt {
        Stmt::Decl { init, .. } => {
            if let Some(e) = init {
                // The defining `new` itself is not a use.
                if !matches!(e, Expr::New(_)) {
                    scan_expr(e, states);
                }
            }
        }
        Stmt::Assign { target, value } => {
            if let LValue::Field(obj, _) = target {
                scan_receiver(obj, states);
            }
            scan_expr(value, states);
        }
        Stmt::Expr(e) | Stmt::Print(e) => scan_expr(e, states),
        Stmt::If {
            cond,
            then_b,
            else_b,
        } => {
            scan_expr(cond, states);
            scan_block(then_b, states);
            if let Some(b) = else_b {
                scan_block(b, states);
            }
        }
        Stmt::While { cond, body } => {
            scan_expr(cond, states);
            scan_block(body, states);
        }
        Stmt::For {
            init,
            cond,
            update,
            body,
        } => {
            if let Some(i) = init {
                scan_stmt(i, states);
            }
            scan_expr(cond, states);
            if let Some(u) = update {
                scan_stmt(u, states);
            }
            scan_block(body, states);
        }
        Stmt::Sync { lock, body } => {
            // Locking a tracked local does not make it escape.
            if !matches!(lock, Expr::Var(_)) {
                scan_expr(lock, states);
            }
            scan_block(body, states);
        }
        Stmt::Block(b) => scan_block(b, states),
        Stmt::Return(Some(e)) => scan_expr(e, states),
        Stmt::Return(None) => {}
    }
}

/// A use as the receiver object of a field access is harmless; anything
/// else inside escapes.
fn scan_receiver(obj: &Expr, states: &mut HashMap<String, EscapeState>) {
    if !matches!(obj, Expr::Var(_)) {
        scan_expr(obj, states);
    }
}

fn scan_expr(e: &Expr, states: &mut HashMap<String, EscapeState>) {
    match e {
        Expr::Var(v) => upgrade(states, v, EscapeState::GlobalEscape),
        Expr::Field(obj, _) => scan_receiver(obj, states),
        Expr::Call(call) => {
            if let mjava::CallTarget::Instance(recv) = &call.target {
                match recv.as_ref() {
                    Expr::Var(v) => upgrade(states, v, EscapeState::ArgEscape),
                    other => scan_expr(other, states),
                }
            }
            for a in &call.args {
                match a {
                    Expr::Var(v) => upgrade(states, v, EscapeState::ArgEscape),
                    other => scan_expr(other, states),
                }
            }
        }
        Expr::Reflect(r) => {
            if let Some(recv) = &r.receiver {
                match recv.as_ref() {
                    Expr::Var(v) => upgrade(states, v, EscapeState::ArgEscape),
                    other => scan_expr(other, states),
                }
            }
            for a in &r.args {
                match a {
                    Expr::Var(v) => upgrade(states, v, EscapeState::ArgEscape),
                    other => scan_expr(other, states),
                }
            }
        }
        Expr::Unary(_, inner) | Expr::BoxInt(inner) | Expr::UnboxInt(inner) => {
            scan_expr(inner, states)
        }
        Expr::Binary(_, lhs, rhs) => {
            scan_expr(lhs, states);
            scan_expr(rhs, states);
        }
        _ => {}
    }
}

fn collect_alloc_decls(block: &Block, f: &mut impl FnMut(&str, &str)) {
    for stmt in &block.0 {
        match stmt {
            Stmt::Decl {
                name,
                init: Some(Expr::New(c)),
                ..
            } => f(name, c),
            Stmt::If { then_b, else_b, .. } => {
                collect_alloc_decls(then_b, f);
                if let Some(e) = else_b {
                    collect_alloc_decls(e, f);
                }
            }
            Stmt::While { body, .. } | Stmt::Sync { body, .. } | Stmt::For { body, .. } => {
                collect_alloc_decls(body, f)
            }
            Stmt::Block(b) => collect_alloc_decls(b, f),
            _ => {}
        }
    }
}

fn used_as_lock(block: &Block, var: &str) -> bool {
    let mut found = false;
    visit_syncs(block, &mut |lock| {
        if matches!(lock, Expr::Var(v) if v == var) {
            found = true;
        }
    });
    found
}

fn visit_syncs(block: &Block, f: &mut impl FnMut(&Expr)) {
    for stmt in &block.0 {
        match stmt {
            Stmt::Sync { lock, body } => {
                f(lock);
                visit_syncs(body, f);
            }
            Stmt::If { then_b, else_b, .. } => {
                visit_syncs(then_b, f);
                if let Some(e) = else_b {
                    visit_syncs(e, f);
                }
            }
            Stmt::While { body, .. } | Stmt::For { body, .. } => visit_syncs(body, f),
            Stmt::Block(b) => visit_syncs(b, f),
            _ => {}
        }
    }
}

/// True when every occurrence of `var` (other than its declaration) is as
/// the receiver of a field read or field write.
fn only_field_uses(block: &Block, var: &str) -> bool {
    // Count total occurrences vs. field-receiver occurrences.
    let mut total = 0usize;
    crate::analysis::map_exprs_in_block_ref(block, &mut |e| {
        if matches!(e, Expr::Var(v) if v == var) {
            total += 1;
        }
    });
    let mut receiver = 0usize;
    crate::analysis::map_exprs_in_block_ref(block, &mut |e| {
        if let Expr::Field(obj, _) = e {
            if matches!(obj.as_ref(), Expr::Var(v) if v == var) {
                receiver += 1;
            }
        }
    });
    // Field *write* receivers already appear in `total` (the expression
    // walker visits assignment-target receivers) but not in `receiver`
    // (they are LValues, not `Expr::Field` nodes) — add them here.
    let mut write_recv = 0usize;
    let mut write_total = 0usize;
    count_lvalue_uses(block, var, &mut write_recv, &mut write_total);
    receiver += write_recv;
    total == receiver
}

fn count_lvalue_uses(block: &Block, var: &str, recv: &mut usize, total: &mut usize) {
    for stmt in &block.0 {
        match stmt {
            Stmt::Assign {
                target: LValue::Field(obj, _),
                ..
            } => {
                if matches!(obj, Expr::Var(v) if v == var) {
                    *recv += 1;
                    *total += 1;
                }
            }
            Stmt::If { then_b, else_b, .. } => {
                count_lvalue_uses(then_b, var, recv, total);
                if let Some(e) = else_b {
                    count_lvalue_uses(e, var, recv, total);
                }
            }
            Stmt::While { body, .. } | Stmt::Sync { body, .. } | Stmt::For { body, .. } => {
                count_lvalue_uses(body, var, recv, total)
            }
            Stmt::Block(b) => count_lvalue_uses(b, var, recv, total),
            _ => {}
        }
    }
}

fn scalar_name(var: &str, field: &str) -> String {
    format!("{var}${field}")
}

fn default_init(ty: &Type, declared: &Option<Expr>) -> Option<Expr> {
    if let Some(e) = declared {
        return Some(e.clone());
    }
    Some(match ty {
        Type::Int => Expr::Int(0),
        Type::Long => Expr::Long(0),
        Type::Bool => Expr::Bool(false),
        _ => Expr::Null,
    })
}

fn scalar_replace(body: &mut Block, var: &str, class: &Class) {
    // 1. Replace the declaration with per-field scalars.
    replace_decl(body, var, class);
    // 2. Rewrite reads.
    crate::analysis::map_exprs_in_block(body, &mut |e| {
        if let Expr::Field(obj, f) = e {
            if matches!(obj.as_ref(), Expr::Var(v) if v == var) {
                *e = Expr::Var(scalar_name(var, f));
            }
        }
    });
    // 3. Rewrite writes.
    rewrite_field_writes(body, var);
}

fn replace_decl(block: &mut Block, var: &str, class: &Class) {
    let mut i = 0;
    while i < block.0.len() {
        let is_target = matches!(
            &block.0[i],
            Stmt::Decl { name, init: Some(Expr::New(_)), .. } if name == var
        );
        if is_target {
            let mut scalars = Vec::new();
            for field in class.fields.iter().filter(|f| !f.is_static) {
                scalars.push(Stmt::Decl {
                    name: scalar_name(var, &field.name),
                    ty: field.ty.clone(),
                    init: default_init(&field.ty, &field.init),
                });
            }
            block.0.splice(i..=i, scalars);
            return;
        }
        match &mut block.0[i] {
            Stmt::If { then_b, else_b, .. } => {
                replace_decl(then_b, var, class);
                if let Some(e) = else_b {
                    replace_decl(e, var, class);
                }
            }
            Stmt::While { body, .. } | Stmt::Sync { body, .. } | Stmt::For { body, .. } => {
                replace_decl(body, var, class)
            }
            Stmt::Block(b) => replace_decl(b, var, class),
            _ => {}
        }
        i += 1;
    }
}

fn rewrite_field_writes(block: &mut Block, var: &str) {
    for stmt in &mut block.0 {
        match stmt {
            Stmt::Assign { target, .. } => {
                if let LValue::Field(obj, f) = target {
                    if matches!(obj, Expr::Var(v) if v == var) {
                        *target = LValue::Var(scalar_name(var, f));
                    }
                }
            }
            Stmt::If { then_b, else_b, .. } => {
                rewrite_field_writes(then_b, var);
                if let Some(e) = else_b {
                    rewrite_field_writes(e, var);
                }
            }
            Stmt::While { body, .. } | Stmt::Sync { body, .. } | Stmt::For { body, .. } => {
                rewrite_field_writes(body, var)
            }
            Stmt::Block(b) => rewrite_field_writes(b, var),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::OptEventKind;
    use crate::phases::testutil::{assert_semantics_preserved, opt_main};
    use crate::pipeline::PhaseId;

    const ESCAPE: &[PhaseId] = &[PhaseId::Escape];

    fn count(outcome: &crate::pipeline::OptOutcome, kind: OptEventKind) -> usize {
        outcome.events.iter().filter(|e| e.kind == kind).count()
    }

    #[test]
    fn classifies_non_escaping_allocation() {
        let src = r#"
            class E {
                int v;
                static void main() {
                    E e = new E();
                    e.v = 41;
                    System.out.println(e.v + 1);
                }
            }
        "#;
        let out = opt_main(src, ESCAPE, 1);
        assert_eq!(count(&out, OptEventKind::EaNoEscape), 1);
        assert_eq!(count(&out, OptEventKind::ScalarReplace), 1);
        let printed = mjava::print_stmt(&Stmt::Block(out.method.body.clone()));
        assert!(!printed.contains("new E()"), "{printed}");
        assert_semantics_preserved(src, &out);
    }

    #[test]
    fn classifies_arg_escape() {
        let src = r#"
            class E {
                int v;
                static int probe(E x) { return x.v; }
                static void main() {
                    E e = new E();
                    e.v = 7;
                    System.out.println(E.probe(e));
                }
            }
        "#;
        let out = opt_main(src, ESCAPE, 1);
        assert_eq!(count(&out, OptEventKind::EaArgEscape), 1);
        assert_eq!(count(&out, OptEventKind::ScalarReplace), 0);
        assert_semantics_preserved(src, &out);
    }

    #[test]
    fn global_escape_via_static_store() {
        let p = mjava::parse(
            r#"
            class E {
                static E sink;
                int v;
                static void main() {
                    E e = new E();
                    sink = e;
                    System.out.println(1);
                }
            }
        "#,
        )
        .unwrap();
        let states = analyze(p.classes[0].method("main").unwrap());
        assert_eq!(states.get("e"), Some(&EscapeState::GlobalEscape));
    }

    #[test]
    fn lock_use_does_not_escape_but_blocks_scalar_replacement() {
        let src = r#"
            class E {
                int v;
                static void main() {
                    E e = new E();
                    synchronized (e) {
                        e.v = 3;
                    }
                    System.out.println(e.v);
                }
            }
        "#;
        let out = opt_main(src, ESCAPE, 1);
        assert_eq!(count(&out, OptEventKind::EaNoEscape), 1);
        assert_eq!(count(&out, OptEventKind::ScalarReplace), 0);
        assert_semantics_preserved(src, &out);
    }

    #[test]
    fn receiver_of_call_is_arg_escape() {
        let src = r#"
            class E {
                int v;
                int get() { return v; }
                static void main() {
                    E e = new E();
                    e.v = 9;
                    System.out.println(e.get());
                }
            }
        "#;
        let out = opt_main(src, ESCAPE, 1);
        assert_eq!(count(&out, OptEventKind::EaArgEscape), 1);
        assert_semantics_preserved(src, &out);
    }

    #[test]
    fn scalar_replacement_respects_field_initializers() {
        let src = r#"
            class E {
                int v = 5;
                static void main() {
                    E e = new E();
                    System.out.println(e.v);
                }
            }
        "#;
        let out = opt_main(src, ESCAPE, 1);
        assert_eq!(count(&out, OptEventKind::ScalarReplace), 1);
        assert_semantics_preserved(src, &out);
    }

    #[test]
    fn aliased_allocation_escapes() {
        let p = mjava::parse(
            r#"
            class E {
                int v;
                static void main() {
                    E e = new E();
                    E f = e;
                    System.out.println(f.v);
                }
            }
        "#,
        )
        .unwrap();
        let states = analyze(p.classes[0].method("main").unwrap());
        assert_eq!(states.get("e"), Some(&EscapeState::GlobalEscape));
    }

    #[test]
    fn scalar_replacement_inside_loop_body() {
        let src = r#"
            class E {
                int v;
                static int out;
                static void main() {
                    for (int i = 0; i < 10; i++) {
                        E e = new E();
                        e.v = i * 3;
                        out = out + e.v;
                    }
                    System.out.println(out);
                }
            }
        "#;
        let out = opt_main(src, ESCAPE, 1);
        assert_eq!(count(&out, OptEventKind::ScalarReplace), 1);
        assert_semantics_preserved(src, &out);
    }
}
