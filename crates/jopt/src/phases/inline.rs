//! Inlining phase.
//!
//! Replaces statement-level calls (`t.f(..)`, `T.g(..)` as the whole
//! right-hand side or expression statement) with the callee's body:
//! receiver and arguments are materialized into temporaries, the callee's
//! bare member references are qualified, its locals are freshened, and its
//! trailing `return` feeds the call's result sink.
//!
//! A `synchronized` callee is inlined *inside* a `synchronized` region on
//! the receiver (or class object) — the delicate interaction the paper's
//! Listing 1 shows HotSpot handling during inlining, and the one its
//! injected-bug analogues probe.

use crate::analysis::{block_size, qualify_members, rename_idents};
use crate::event::OptEventKind;
use crate::pipeline::OptCx;
use mjava::{Block, Call, CallTarget, Class, Expr, LValue, Method, Stmt, Type};
use std::collections::{HashMap, HashSet};

/// Runs the inlining phase.
pub fn run(method: &mut Method, class: &Class, cx: &mut OptCx) {
    let types = local_types(method);
    let self_name = method.name.clone();
    inline_block(&mut method.body, class, &self_name, &types, cx);
}

/// Where the call's result value goes.
enum Sink {
    Discard,
    Decl { name: String, ty: Type },
    Assign(LValue),
}

fn inline_block(
    block: &mut Block,
    class: &Class,
    self_name: &str,
    types: &HashMap<String, (Type, usize)>,
    cx: &mut OptCx,
) {
    // Recurse into nested blocks first.
    for stmt in &mut block.0 {
        match stmt {
            Stmt::If { then_b, else_b, .. } => {
                inline_block(then_b, class, self_name, types, cx);
                if let Some(e) = else_b {
                    inline_block(e, class, self_name, types, cx);
                }
            }
            Stmt::While { body, .. } | Stmt::For { body, .. } | Stmt::Sync { body, .. } => {
                inline_block(body, class, self_name, types, cx)
            }
            Stmt::Block(b) => inline_block(b, class, self_name, types, cx),
            _ => {}
        }
    }
    let mut i = 0;
    while i < block.0.len() {
        let attempt = match &block.0[i] {
            Stmt::Expr(Expr::Call(call)) => Some((call.clone(), Sink::Discard)),
            Stmt::Decl {
                name,
                ty,
                init: Some(Expr::Call(call)),
            } => Some((
                call.clone(),
                Sink::Decl {
                    name: name.clone(),
                    ty: ty.clone(),
                },
            )),
            Stmt::Assign {
                target,
                value: Expr::Call(call),
            } => Some((call.clone(), Sink::Assign(target.clone()))),
            _ => None,
        };
        if let Some((call, sink)) = attempt {
            if let Some(replacement) = try_inline(&call, sink, class, self_name, types, cx) {
                let n = replacement.len();
                block.0.splice(i..=i, replacement);
                i += n;
                continue;
            }
        }
        i += 1;
    }
}

fn try_inline(
    call: &Call,
    sink: Sink,
    class: &Class,
    self_name: &str,
    types: &HashMap<String, (Type, usize)>,
    cx: &mut OptCx,
) -> Option<Vec<Stmt>> {
    cx.cover(0);
    // Resolve the callee's class.
    let (callee_class_name, recv_expr): (String, Option<Expr>) = match &call.target {
        CallTarget::Static(c) => (c.clone(), None),
        CallTarget::Instance(recv) => {
            let class_name = match recv.as_ref() {
                Expr::This => class.name.clone(),
                Expr::New(c) => c.clone(),
                Expr::Var(v) => match types.get(v) {
                    Some((Type::Ref(c), 1)) => c.clone(),
                    // Unknown or ambiguous receiver type: treat as
                    // megamorphic and leave the call alone.
                    _ => return None,
                },
                _ => return None,
            };
            (class_name, Some(recv.as_ref().clone()))
        }
    };
    let callee_class = cx.program.class(&callee_class_name)?;
    let callee = callee_class.method(&call.method)?.clone();
    if callee.params.len() != call.args.len() {
        return None;
    }
    let label = format!("{}::{}", callee_class_name, callee.name);

    // Reject conditions — each is an observable behaviour.
    if callee_class.name == class.name && callee.name == self_name {
        cx.cover(1);
        cx.emit(OptEventKind::InlineReject, "recursive");
        return None;
    }
    if cx.inline_budget_left == 0 {
        cx.cover(2);
        cx.emit(OptEventKind::InlineReject, "inlining too deep");
        return None;
    }
    let size = block_size(&callee.body);
    if size > cx.limits.inline_max_stmts {
        cx.cover(3);
        cx.emit(OptEventKind::InlineReject, "callee too large");
        return None;
    }
    if !returns_are_reducible(&callee.body) {
        cx.cover(4);
        cx.emit(OptEventKind::InlineReject, "irreducible control flow");
        return None;
    }

    cx.inline_budget_left -= 1;
    cx.cover(5);
    cx.emit(OptEventKind::Inline, format!("{size} stmts, {label}"));

    let mut out: Vec<Stmt> = Vec::new();

    // Materialize receiver and arguments in evaluation order.
    let recv_var = recv_expr.map(|recv| {
        let name = cx.fresh("recv");
        out.push(Stmt::Decl {
            name: name.clone(),
            ty: Type::Ref(callee_class_name.clone()),
            init: Some(recv),
        });
        name
    });
    let mut rename: HashMap<String, String> = HashMap::new();
    for (param, arg) in callee.params.iter().zip(&call.args) {
        let name = cx.fresh("arg");
        out.push(Stmt::Decl {
            name: name.clone(),
            ty: param.ty.clone(),
            init: Some(arg.clone()),
        });
        rename.insert(param.name.clone(), name);
    }

    // Prepare the body: qualify bare members against the *callee's* class,
    // then freshen every local.
    let mut body = callee.body.clone();
    let param_names: HashSet<String> = callee.params.iter().map(|p| p.name.clone()).collect();
    let recv_as_expr = recv_var.as_ref().map(|v| Expr::var(v.clone()));
    qualify_members(&mut body, callee_class, recv_as_expr.as_ref(), &param_names);
    for name in crate::analysis::declared_names(&body) {
        let fresh = cx.fresh("inl");
        rename.insert(name, fresh);
    }
    rename_idents(&mut body, &rename);

    // Split off the trailing return.
    let result_expr: Option<Expr> = match body.0.last() {
        Some(Stmt::Return(Some(_))) => {
            let Some(Stmt::Return(Some(e))) = body.0.pop() else {
                unreachable!()
            };
            Some(e)
        }
        Some(Stmt::Return(None)) => {
            body.0.pop();
            None
        }
        _ => None,
    };

    // A synchronized callee keeps its monitor around the inlined body —
    // including the result computation (it was inside the callee).
    if callee.is_sync {
        cx.cover(6);
        cx.emit(OptEventKind::NestedLock, "1");
        let lock = match &recv_var {
            Some(v) => Expr::var(v.clone()),
            None => Expr::ClassLit(callee_class_name.clone()),
        };
        match (result_expr, sink) {
            (Some(e), sink) => {
                let res = cx.fresh("res");
                out.push(Stmt::Decl {
                    name: res.clone(),
                    ty: callee.ret.clone(),
                    init: None,
                });
                let mut sync_body = body.0;
                sync_body.push(Stmt::Assign {
                    target: LValue::Var(res.clone()),
                    value: e,
                });
                out.push(Stmt::Sync {
                    lock,
                    body: Block(sync_body),
                });
                push_sink(&mut out, sink, Expr::var(res));
            }
            (None, _) => {
                out.push(Stmt::Sync { lock, body });
            }
        }
    } else {
        out.extend(body.0);
        if let Some(e) = result_expr {
            push_sink(&mut out, sink, e);
        }
    }
    Some(out)
}

fn push_sink(out: &mut Vec<Stmt>, sink: Sink, value: Expr) {
    match sink {
        Sink::Discard => {
            if !crate::analysis::expr_is_pure(&value) {
                out.push(Stmt::Expr(value));
            }
        }
        Sink::Decl { name, ty } => out.push(Stmt::Decl {
            name,
            ty,
            init: Some(value),
        }),
        Sink::Assign(target) => out.push(Stmt::Assign { target, value }),
    }
}

/// True when the body's only `return` (if any) is its final top-level
/// statement — the shape the splicing inliner can handle.
fn returns_are_reducible(body: &Block) -> bool {
    let total = count_returns(body);
    match body.0.last() {
        Some(Stmt::Return(_)) => total == 1,
        _ => total == 0,
    }
}

fn count_returns(block: &Block) -> usize {
    let mut n = 0;
    for stmt in &block.0 {
        n += match stmt {
            Stmt::Return(_) => 1,
            Stmt::If { then_b, else_b, .. } => {
                count_returns(then_b) + else_b.as_ref().map_or(0, count_returns)
            }
            Stmt::While { body, .. } | Stmt::Sync { body, .. } => count_returns(body),
            Stmt::For { body, .. } => count_returns(body),
            Stmt::Block(b) => count_returns(b),
            _ => 0,
        };
    }
    n
}

/// Types of locals declared exactly once (plus parameters), used to resolve
/// monomorphic receivers.
fn local_types(method: &Method) -> HashMap<String, (Type, usize)> {
    let mut map: HashMap<String, (Type, usize)> = HashMap::new();
    for p in &method.params {
        map.entry(p.name.clone())
            .and_modify(|e| e.1 += 1)
            .or_insert((p.ty.clone(), 1));
    }
    collect_decl_types(&method.body, &mut map);
    map
}

fn collect_decl_types(block: &Block, map: &mut HashMap<String, (Type, usize)>) {
    for stmt in &block.0 {
        match stmt {
            Stmt::Decl { name, ty, .. } => {
                map.entry(name.clone())
                    .and_modify(|e| e.1 += 1)
                    .or_insert((ty.clone(), 1));
            }
            Stmt::If { then_b, else_b, .. } => {
                collect_decl_types(then_b, map);
                if let Some(e) = else_b {
                    collect_decl_types(e, map);
                }
            }
            Stmt::While { body, .. } | Stmt::Sync { body, .. } => collect_decl_types(body, map),
            Stmt::For { init, body, .. } => {
                if let Some(i) = init {
                    if let Stmt::Decl { name, ty, .. } = i.as_ref() {
                        map.entry(name.clone())
                            .and_modify(|e| e.1 += 1)
                            .or_insert((ty.clone(), 1));
                    }
                }
                collect_decl_types(body, map);
            }
            Stmt::Block(b) => collect_decl_types(b, map),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::OptEventKind;
    use crate::phases::testutil::{assert_semantics_preserved, opt_main};
    use crate::pipeline::PhaseId;

    const INLINE: &[PhaseId] = &[PhaseId::Inline];

    fn count(outcome: &crate::pipeline::OptOutcome, kind: OptEventKind) -> usize {
        outcome.events.iter().filter(|e| e.kind == kind).count()
    }

    #[test]
    fn inlines_static_helper() {
        let src = r#"
            class T {
                static int add(int x, int y) { return x + y; }
                static void main() {
                    int m = T.add(3, 4);
                    System.out.println(m);
                }
            }
        "#;
        let out = opt_main(src, INLINE, 1);
        assert_eq!(count(&out, OptEventKind::Inline), 1);
        let printed = mjava::print_stmt(&Stmt::Block(out.method.body.clone()));
        assert!(
            !printed.contains("T.add("),
            "call should be gone:\n{printed}"
        );
        assert_semantics_preserved(src, &out);
    }

    #[test]
    fn inlines_instance_method_with_fields() {
        let src = r#"
            class T {
                int f;
                int bump(int d) { f = f + d; return f; }
                static void main() {
                    T t = new T();
                    int a = t.bump(5);
                    int b = t.bump(7);
                    System.out.println(a + b);
                }
            }
        "#;
        let out = opt_main(src, INLINE, 1);
        assert_eq!(count(&out, OptEventKind::Inline), 2);
        assert_semantics_preserved(src, &out);
    }

    #[test]
    fn inlines_synchronized_callee_inside_monitor() {
        let src = r#"
            class T {
                int n;
                synchronized int inc() { n = n + 1; return n; }
                static void main() {
                    T t = new T();
                    int a = t.inc();
                    System.out.println(a + t.inc());
                }
            }
        "#;
        let out = opt_main(src, INLINE, 1);
        // Only the statement-shaped call inlines; the one nested in `+` stays.
        assert_eq!(count(&out, OptEventKind::Inline), 1);
        assert_eq!(count(&out, OptEventKind::NestedLock), 1);
        let printed = mjava::print_stmt(&Stmt::Block(out.method.body.clone()));
        assert!(printed.contains("synchronized ("), "{printed}");
        assert_semantics_preserved(src, &out);
    }

    #[test]
    fn rejects_recursive_callee() {
        let src = r#"
            class T {
                static int fac(int n) {
                    if (n < 2) { return 1; }
                    return n * T.fac(n - 1);
                }
                static void main() {
                    int m = T.fac(5);
                    System.out.println(m);
                }
            }
        "#;
        let out = opt_main(src, INLINE, 1);
        // fac itself inlines into main (size permitting) but its inner
        // recursive call is rejected on the next round; with one round we
        // just check main's direct inline didn't break anything.
        assert_semantics_preserved(src, &out);
    }

    #[test]
    fn rejects_large_callee_with_event() {
        let body: String = (0..20)
            .map(|i| format!("s = s + {i};"))
            .collect::<Vec<_>>()
            .join(" ");
        let src = format!(
            r#"
            class T {{
                static int s;
                static int big() {{ {body} return s; }}
                static void main() {{
                    int m = T.big();
                    System.out.println(m);
                }}
            }}
        "#
        );
        let out = opt_main(&src, INLINE, 1);
        assert_eq!(count(&out, OptEventKind::Inline), 0);
        assert_eq!(count(&out, OptEventKind::InlineReject), 1);
        assert!(out
            .log
            .iter()
            .any(|l| l.contains("failed to inline: callee too large")));
    }

    #[test]
    fn rejects_mid_body_return() {
        let src = r#"
            class T {
                static int g(int n) {
                    if (n > 0) { return 1; }
                    return 0;
                }
                static void main() {
                    int m = T.g(3);
                    System.out.println(m);
                }
            }
        "#;
        let out = opt_main(src, INLINE, 1);
        assert_eq!(count(&out, OptEventKind::Inline), 0);
        assert!(out
            .log
            .iter()
            .any(|l| l.contains("irreducible control flow")));
        assert_semantics_preserved(src, &out);
    }

    #[test]
    fn inlines_void_callee_statement() {
        let src = r#"
            class T {
                static int s;
                static void tick(int d) { s = s + d; }
                static void main() {
                    T.tick(4);
                    T.tick(5);
                    System.out.println(s);
                }
            }
        "#;
        let out = opt_main(src, INLINE, 1);
        assert_eq!(count(&out, OptEventKind::Inline), 2);
        assert_semantics_preserved(src, &out);
    }

    #[test]
    fn argument_evaluation_order_preserved() {
        let src = r#"
            class T {
                static int k;
                static int next() { k = k + 1; return k; }
                static int sub(int a, int b) { return a - b; }
                static void main() {
                    int m = T.sub(T.next(), 10);
                    System.out.println(m);
                    System.out.println(k);
                }
            }
        "#;
        let out = opt_main(src, INLINE, 2);
        assert_semantics_preserved(src, &out);
    }

    #[test]
    fn second_round_inlines_exposed_calls() {
        let src = r#"
            class T {
                static int one() { return 1; }
                static int two() { int a = T.one(); return a + 1; }
                static void main() {
                    int m = T.two();
                    System.out.println(m);
                }
            }
        "#;
        let out = opt_main(src, INLINE, 2);
        assert!(count(&out, OptEventKind::Inline) >= 2);
        assert_semantics_preserved(src, &out);
    }

    #[test]
    fn budget_exhaustion_emits_too_deep() {
        let src = r#"
            class T {
                static int id(int x) { return x; }
                static void main() {
                    int s = 0;
                    int a0 = T.id(0); int a1 = T.id(1); int a2 = T.id(2);
                    int a3 = T.id(3); int a4 = T.id(4); int a5 = T.id(5);
                    System.out.println(a0 + a1 + a2 + a3 + a4 + a5 + s);
                }
            }
        "#;
        let program = mjava::parse(src).unwrap();
        let limits = crate::pipeline::OptLimits {
            inline_budget: 3,
            rounds: 1,
            ..Default::default()
        };
        let out = crate::pipeline::optimize(
            &program,
            "T",
            "main",
            INLINE,
            limits,
            &crate::event::FlagSet::all(),
        )
        .unwrap();
        assert_eq!(count(&out, OptEventKind::Inline), 3);
        assert_eq!(count(&out, OptEventKind::InlineReject), 3);
        assert!(out.log.iter().any(|l| l.contains("inlining too deep")));
        assert_semantics_preserved(src, &out);
    }
}
