//! Ideal-loop phase: unswitching, peeling, and unrolling.
//!
//! Transform priority per loop statement, mirroring HotSpot's ideal-loop
//! ordering: unswitch an invariant branch out first, then fully unroll
//! small constant-trip loops, then peel `for` loops (which converts them to
//! `while` form), and finally 2x-unroll `while` loops. Across pipeline
//! rounds these cascade — a peeled loop becomes unrollable next round —
//! which is exactly the interaction surface MopFuzzer targets.

use crate::analysis::{
    assigned_vars, block_size, counted_loop, declared_names, expr_is_pure, expr_vars,
    substitute_var,
};
use crate::event::OptEventKind;
use crate::pipeline::OptCx;
use mjava::{Block, Expr, LValue, Method, Stmt};

/// Upper bound on `trip_count * body_size` for full unrolling.
const FULL_UNROLL_WORK: u64 = 96;
/// Maximum body size for 2x while-unrolling.
const WHILE_UNROLL_BODY: usize = 24;

/// Runs the loop phase over the whole method body.
pub fn run(method: &mut Method, cx: &mut OptCx) {
    transform_block(&mut method.body, cx);
}

fn transform_block(block: &mut Block, cx: &mut OptCx) {
    // Inner loops first.
    for stmt in &mut block.0 {
        match stmt {
            Stmt::If { then_b, else_b, .. } => {
                transform_block(then_b, cx);
                if let Some(e) = else_b {
                    transform_block(e, cx);
                }
            }
            Stmt::While { body, .. } | Stmt::For { body, .. } | Stmt::Sync { body, .. } => {
                transform_block(body, cx)
            }
            Stmt::Block(b) => transform_block(b, cx),
            _ => {}
        }
    }
    let mut i = 0;
    while i < block.0.len() {
        if let Some(replacement) = try_transform(&block.0[i], cx) {
            let n = replacement.len();
            block.0.splice(i..=i, replacement);
            i += n;
        } else {
            i += 1;
        }
    }
}

fn try_transform(stmt: &Stmt, cx: &mut OptCx) -> Option<Vec<Stmt>> {
    if !matches!(stmt, Stmt::For { .. } | Stmt::While { .. }) {
        return None;
    }
    cx.cover(0);
    if let Some(r) = try_unswitch(stmt, cx) {
        return Some(r);
    }
    if let Some(r) = try_full_unroll(stmt, cx) {
        return Some(r);
    }
    if let Some(r) = try_peel(stmt, cx) {
        return Some(r);
    }
    try_while_unroll(stmt, cx)
}

/// `loop { if (inv) A else B }` → `if (inv) loop{A} else loop{B}`.
fn try_unswitch(stmt: &Stmt, cx: &mut OptCx) -> Option<Vec<Stmt>> {
    let (body, rebuild): (&Block, Box<dyn Fn(Block) -> Stmt>) = match stmt {
        Stmt::For {
            init,
            cond,
            update,
            body,
        } => {
            let (init, cond, update) = (init.clone(), cond.clone(), update.clone());
            (
                body,
                Box::new(move |b| Stmt::For {
                    init: init.clone(),
                    cond: cond.clone(),
                    update: update.clone(),
                    body: b,
                }),
            )
        }
        Stmt::While { cond, body } => {
            let cond = cond.clone();
            (
                body,
                Box::new(move |b| Stmt::While {
                    cond: cond.clone(),
                    body: b,
                }),
            )
        }
        _ => return None,
    };
    // The body must be exactly one `if` whose condition is loop-invariant
    // and pure.
    let [Stmt::If {
        cond: ic,
        then_b,
        else_b,
    }] = body.0.as_slice()
    else {
        return None;
    };
    if !expr_is_pure(ic) {
        return None;
    }
    let mut mutated = assigned_vars_of_loop(stmt);
    mutated.extend(declared_names_of_loop(stmt));
    if expr_vars(ic).iter().any(|v| mutated.contains(v)) {
        cx.cover(1);
        return None;
    }
    cx.cover(2);
    cx.emit(OptEventKind::Unswitch, "1");
    let then_loop = rebuild(then_b.clone());
    let else_loop = rebuild(else_b.clone().unwrap_or_default());
    Some(vec![Stmt::If {
        cond: ic.clone(),
        then_b: Block(vec![then_loop]),
        else_b: Some(Block(vec![else_loop])),
    }])
}

fn assigned_vars_of_loop(stmt: &Stmt) -> std::collections::HashSet<String> {
    let mut out = std::collections::HashSet::new();
    if let Stmt::For {
        init, update, body, ..
    } = stmt
    {
        for s in [init, update].into_iter().flatten() {
            if let Stmt::Assign {
                target: LValue::Var(v),
                ..
            } = s.as_ref()
            {
                out.insert(v.clone());
            }
            if let Stmt::Decl { name, .. } = s.as_ref() {
                out.insert(name.clone());
            }
        }
        out.extend(assigned_vars(body));
    } else if let Stmt::While { body, .. } = stmt {
        out.extend(assigned_vars(body));
    }
    out
}

fn declared_names_of_loop(stmt: &Stmt) -> std::collections::HashSet<String> {
    match stmt {
        Stmt::For { body, .. } | Stmt::While { body, .. } => declared_names(body),
        _ => std::collections::HashSet::new(),
    }
}

/// Fully unrolls small constant-trip counted loops.
fn try_full_unroll(stmt: &Stmt, cx: &mut OptCx) -> Option<Vec<Stmt>> {
    let Stmt::For { body, .. } = stmt else {
        return None;
    };
    let cl = counted_loop(stmt)?;
    let trip = cl.trip_count();
    if trip > cx.limits.unroll_limit || trip * block_size(body) as u64 > FULL_UNROLL_WORK {
        cx.cover(10);
        return None;
    }
    cx.cover(11);
    cx.emit(OptEventKind::Unroll, format!("{trip}"));
    let mut out = Vec::with_capacity(trip as usize);
    for value in cl.values() {
        let mut copy = body.clone();
        substitute_var(&mut copy, &cl.var, &Expr::Int(value));
        out.push(Stmt::Block(copy));
    }
    Some(out)
}

/// Peels the first iteration of a `for` loop, leaving a `while` loop:
/// `for (init; c; u) b` → `{ init; if (c) { b; u } while (c) { b; u } }`.
///
/// Execution counts of `c`, `b` and `u` are identical, so the rewrite is
/// unconditionally sound (there is no `break`/`continue` in MiniJava).
fn try_peel(stmt: &Stmt, cx: &mut OptCx) -> Option<Vec<Stmt>> {
    let Stmt::For {
        init,
        cond,
        update,
        body,
    } = stmt
    else {
        return None;
    };
    // Guard against unbounded growth: peel only reasonably small bodies.
    if block_size(body) > WHILE_UNROLL_BODY * 2 {
        cx.cover(20);
        return None;
    }
    cx.cover(21);
    cx.emit(OptEventKind::Peel, "1");
    let mut iteration = body.0.clone();
    if let Some(u) = update {
        iteration.push(u.as_ref().clone());
    }
    let mut stmts = Vec::new();
    if let Some(i) = init {
        stmts.push(i.as_ref().clone());
    }
    stmts.push(Stmt::If {
        cond: cond.clone(),
        then_b: Block(iteration.clone()),
        else_b: None,
    });
    stmts.push(Stmt::While {
        cond: cond.clone(),
        body: Block(iteration),
    });
    // The whole construct is wrapped in a block so the hoisted `init`
    // declaration keeps its original scope.
    Some(vec![Stmt::Block(Block(stmts))])
}

/// 2x-unrolls a `while` loop:
/// `while (c) { b }` → `while (c) { b; if (c) { b } }`.
///
/// The inner `if` executes one extra iteration exactly when the loop
/// condition holds, so the iteration trace is unchanged for any body.
fn try_while_unroll(stmt: &Stmt, cx: &mut OptCx) -> Option<Vec<Stmt>> {
    let Stmt::While { cond, body } = stmt else {
        return None;
    };
    if !expr_is_pure(cond) || block_size(body) > WHILE_UNROLL_BODY {
        cx.cover(30);
        return None;
    }
    cx.cover(31);
    cx.emit(OptEventKind::Unroll, "2");
    let mut unrolled = body.0.clone();
    unrolled.push(Stmt::If {
        cond: cond.clone(),
        then_b: body.clone(),
        else_b: None,
    });
    Some(vec![Stmt::While {
        cond: cond.clone(),
        body: Block(unrolled),
    }])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::OptEventKind;
    use crate::phases::testutil::{assert_semantics_preserved, opt_main};
    use crate::pipeline::PhaseId;

    const LOOPS: &[PhaseId] = &[PhaseId::Loops];

    fn count(outcome: &crate::pipeline::OptOutcome, kind: OptEventKind) -> usize {
        outcome.events.iter().filter(|e| e.kind == kind).count()
    }

    #[test]
    fn fully_unrolls_small_constant_loop() {
        let src = r#"
            class T {
                static void main() {
                    int s = 0;
                    for (int i = 0; i < 4; i++) { s = s + i; }
                    System.out.println(s);
                }
            }
        "#;
        let out = opt_main(src, LOOPS, 1);
        assert_eq!(count(&out, OptEventKind::Unroll), 1);
        assert!(out.log.iter().any(|l| l == "Unroll 4"));
        // The for loop is gone.
        let printed = mjava::print_stmt(&Stmt::Block(out.method.body.clone()));
        assert!(!printed.contains("for ("), "{printed}");
        assert_semantics_preserved(src, &out);
    }

    #[test]
    fn peels_large_counted_loop() {
        let src = r#"
            class T {
                static void main() {
                    int s = 0;
                    for (int i = 0; i < 1000; i++) { s = s + i; }
                    System.out.println(s);
                }
            }
        "#;
        let out = opt_main(src, LOOPS, 1);
        assert_eq!(count(&out, OptEventKind::Peel), 1);
        assert_semantics_preserved(src, &out);
    }

    #[test]
    fn unswitches_invariant_branch() {
        let src = r#"
            class T {
                static void main() {
                    int s = 0;
                    boolean flag = true;
                    for (int i = 0; i < 100; i++) {
                        if (flag) { s = s + 1; } else { s = s + 2; }
                    }
                    System.out.println(s);
                }
            }
        "#;
        let out = opt_main(src, LOOPS, 1);
        assert_eq!(count(&out, OptEventKind::Unswitch), 1);
        assert_semantics_preserved(src, &out);
    }

    #[test]
    fn does_not_unswitch_variant_branch() {
        let src = r#"
            class T {
                static void main() {
                    int s = 0;
                    for (int i = 0; i < 10; i++) {
                        if (s < 5) { s = s + 1; } else { s = s + 2; }
                    }
                    System.out.println(s);
                }
            }
        "#;
        let out = opt_main(src, LOOPS, 1);
        assert_eq!(count(&out, OptEventKind::Unswitch), 0);
        assert_semantics_preserved(src, &out);
    }

    #[test]
    fn unrolls_while_loop_by_two() {
        let src = r#"
            class T {
                static void main() {
                    int i = 0;
                    while (i < 7) { i = i + 1; }
                    System.out.println(i);
                }
            }
        "#;
        let out = opt_main(src, LOOPS, 1);
        assert_eq!(count(&out, OptEventKind::Unroll), 1);
        assert!(out.log.iter().any(|l| l == "Unroll 2"));
        assert_semantics_preserved(src, &out);
    }

    #[test]
    fn cascades_across_rounds() {
        // Round 1 peels the big for; round 2 2x-unrolls the residual while.
        let src = r#"
            class T {
                static void main() {
                    int s = 0;
                    for (int i = 0; i < 500; i++) { s = s + i % 7; }
                    System.out.println(s);
                }
            }
        "#;
        let out = opt_main(src, LOOPS, 2);
        assert!(count(&out, OptEventKind::Peel) >= 1);
        assert!(count(&out, OptEventKind::Unroll) >= 1);
        assert_semantics_preserved(src, &out);
    }

    #[test]
    fn unroll_preserves_decls_via_block_scoping() {
        let src = r#"
            class T {
                static void main() {
                    int s = 0;
                    for (int i = 0; i < 3; i++) { int d = i * 2; s = s + d; }
                    System.out.println(s);
                }
            }
        "#;
        let out = opt_main(src, LOOPS, 1);
        assert_semantics_preserved(src, &out);
    }

    #[test]
    fn nested_loops_transform_inner_first() {
        let src = r#"
            class T {
                static void main() {
                    int s = 0;
                    for (int i = 0; i < 20; i++) {
                        for (int j = 0; j < 3; j++) { s = s + i * j; }
                    }
                    System.out.println(s);
                }
            }
        "#;
        let out = opt_main(src, LOOPS, 1);
        // Inner is fully unrolled, outer is peeled.
        assert!(count(&out, OptEventKind::Unroll) >= 1);
        assert!(count(&out, OptEventKind::Peel) >= 1);
        assert_semantics_preserved(src, &out);
    }

    #[test]
    fn loop_with_call_still_correct() {
        let src = r#"
            class T {
                static int k;
                static int f(int x) { k = k + 1; return x * 2; }
                static void main() {
                    int s = 0;
                    for (int i = 0; i < 5; i++) { s = s + T.f(i); }
                    System.out.println(s);
                    System.out.println(k);
                }
            }
        "#;
        let out = opt_main(src, LOOPS, 2);
        assert_semantics_preserved(src, &out);
    }
}
