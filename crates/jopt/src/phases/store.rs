//! Redundant store elimination: drops a store that is immediately
//! overwritten by another store to the same location.

use crate::analysis::{expr_is_pure, map_exprs_in_block_ref};
use crate::event::OptEventKind;
use crate::pipeline::OptCx;
use mjava::{Block, Expr, LValue, Method, Stmt};

/// Runs the redundant-store phase.
pub fn run(method: &mut Method, cx: &mut OptCx) {
    eliminate_in_block(&mut method.body, cx);
}

fn lvalue_key(lv: &LValue) -> Option<String> {
    match lv {
        LValue::Var(v) => Some(format!("v:{v}")),
        LValue::Field(Expr::This, f) => Some(format!("t:{f}")),
        LValue::Field(Expr::Var(v), f) => Some(format!("f:{v}.{f}")),
        LValue::StaticField(c, f) => Some(format!("s:{c}.{f}")),
        LValue::Field(..) => None,
    }
}

/// Does the second store's value (or receiver) read the stored location?
fn value_reads_location(value: &Expr, lv: &LValue) -> bool {
    let mut reads = false;
    let mut check = |e: &Expr| match (lv, e) {
        (LValue::Var(v), Expr::Var(v2)) if v == v2 => reads = true,
        (LValue::Field(Expr::This, f), Expr::Field(obj, f2))
            if f == f2 && matches!(obj.as_ref(), Expr::This) =>
        {
            reads = true
        }
        (LValue::Field(Expr::Var(v), f), Expr::Field(obj, f2))
            if f == f2 && matches!(obj.as_ref(), Expr::Var(v2) if v2 == v) =>
        {
            reads = true
        }
        (LValue::StaticField(c, f), Expr::StaticField(c2, f2)) if c == c2 && f == f2 => {
            reads = true
        }
        // A bare variable read of the receiver does not read the field, but
        // a call could reach any location: be conservative.
        (_, Expr::Call(_) | Expr::Reflect(_)) => reads = true,
        _ => {}
    };
    let wrapper = Block(vec![Stmt::Expr(value.clone())]);
    map_exprs_in_block_ref(&wrapper, &mut check);
    reads
}

fn eliminate_in_block(block: &mut Block, cx: &mut OptCx) {
    let mut i = 0;
    while i + 1 < block.0.len() {
        let removable = match (&block.0[i], &block.0[i + 1]) {
            (
                Stmt::Assign {
                    target: t1,
                    value: v1,
                },
                Stmt::Assign {
                    target: t2,
                    value: v2,
                },
            ) => {
                let same = match (lvalue_key(t1), lvalue_key(t2)) {
                    (Some(a), Some(b)) => a == b,
                    _ => false,
                };
                same && expr_is_pure(v1) && !value_reads_location(v2, t1)
            }
            _ => false,
        };
        if removable {
            cx.cover(0);
            let Stmt::Assign { target, .. } = &block.0[i] else {
                unreachable!()
            };
            cx.emit(
                OptEventKind::StoreEliminate,
                lvalue_key(target).unwrap_or_default(),
            );
            block.0.remove(i);
            continue;
        }
        i += 1;
    }
    for stmt in &mut block.0 {
        match stmt {
            Stmt::If { then_b, else_b, .. } => {
                eliminate_in_block(then_b, cx);
                if let Some(e) = else_b {
                    eliminate_in_block(e, cx);
                }
            }
            Stmt::While { body, .. } | Stmt::For { body, .. } | Stmt::Sync { body, .. } => {
                eliminate_in_block(body, cx)
            }
            Stmt::Block(b) => eliminate_in_block(b, cx),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phases::testutil::{assert_semantics_preserved, opt_main};
    use crate::pipeline::PhaseId;

    const STORE: &[PhaseId] = &[PhaseId::Store];

    fn count(outcome: &crate::pipeline::OptOutcome, kind: OptEventKind) -> usize {
        outcome.events.iter().filter(|e| e.kind == kind).count()
    }

    #[test]
    fn eliminates_overwritten_local_store() {
        let src = r#"
            class T {
                static void main() {
                    int x = 0;
                    x = 5;
                    x = 6;
                    System.out.println(x);
                }
            }
        "#;
        let out = opt_main(src, STORE, 1);
        assert_eq!(count(&out, OptEventKind::StoreEliminate), 1);
        let printed = mjava::print_stmt(&Stmt::Block(out.method.body.clone()));
        assert!(!printed.contains("x = 5;"), "{printed}");
        assert_semantics_preserved(src, &out);
    }

    #[test]
    fn keeps_store_read_by_next() {
        let src = r#"
            class T {
                static void main() {
                    int x = 0;
                    x = 5;
                    x = x + 1;
                    System.out.println(x);
                }
            }
        "#;
        let out = opt_main(src, STORE, 1);
        assert_eq!(count(&out, OptEventKind::StoreEliminate), 0);
        assert_semantics_preserved(src, &out);
    }

    #[test]
    fn keeps_impure_first_store() {
        let src = r#"
            class T {
                static int k;
                static int bump() { k = k + 1; return k; }
                static void main() {
                    int x = 0;
                    x = T.bump();
                    x = 9;
                    System.out.println(x + k);
                }
            }
        "#;
        let out = opt_main(src, STORE, 1);
        assert_eq!(count(&out, OptEventKind::StoreEliminate), 0);
        assert_semantics_preserved(src, &out);
    }

    #[test]
    fn eliminates_static_field_double_store() {
        let src = r#"
            class T {
                static int s;
                static void main() {
                    s = 1;
                    s = 2;
                    System.out.println(s);
                }
            }
        "#;
        let out = opt_main(src, STORE, 1);
        assert_eq!(count(&out, OptEventKind::StoreEliminate), 1);
        assert_semantics_preserved(src, &out);
    }

    #[test]
    fn conservative_about_calls_in_second_value() {
        let src = r#"
            class T {
                static int s;
                static int read() { return s; }
                static void main() {
                    s = 7;
                    s = T.read() + 1;
                    System.out.println(s);
                }
            }
        "#;
        let out = opt_main(src, STORE, 1);
        assert_eq!(count(&out, OptEventKind::StoreEliminate), 0);
        assert_semantics_preserved(src, &out);
    }

    #[test]
    fn eliminates_instance_field_double_store() {
        let src = r#"
            class T {
                int f;
                void set() { f = 1; f = 2; }
                static void main() {
                    T t = new T();
                    t.set();
                    System.out.println(t.f);
                }
            }
        "#;
        let program = mjava::parse(src).unwrap();
        let out = crate::pipeline::optimize(
            &program,
            "T",
            "set",
            STORE,
            crate::pipeline::OptLimits::default(),
            &crate::event::FlagSet::all(),
        )
        .unwrap();
        assert_eq!(count(&out, OptEventKind::StoreEliminate), 1);
    }
}
