//! Dead code elimination: constant branches, unreachable statements, loops
//! that never run, and write-only locals.

use crate::analysis::expr_is_pure;
use crate::event::OptEventKind;
use crate::pipeline::OptCx;
use mjava::{Block, Expr, LValue, Method, Stmt};
use std::collections::{HashMap, HashSet};

/// Runs the DCE phase.
pub fn run(method: &mut Method, cx: &mut OptCx) {
    structural_dce(&mut method.body, cx);
    dead_local_elimination(method, cx);
}

/// Constant branches, `while (false)`, and code after `return`.
fn structural_dce(block: &mut Block, cx: &mut OptCx) {
    let mut i = 0;
    while i < block.0.len() {
        // Truncate after a top-level return.
        if matches!(block.0[i], Stmt::Return(_)) && i + 1 < block.0.len() {
            let removed = block.0.len() - i - 1;
            block.0.truncate(i + 1);
            cx.cover(0);
            cx.emit(OptEventKind::DceRemove, format!("{removed}"));
            break;
        }
        let replacement: Option<Vec<Stmt>> = match &block.0[i] {
            Stmt::If {
                cond: Expr::Bool(true),
                then_b,
                ..
            } => Some(vec![Stmt::Block(then_b.clone())]),
            Stmt::If {
                cond: Expr::Bool(false),
                else_b,
                ..
            } => Some(match else_b {
                Some(e) => vec![Stmt::Block(e.clone())],
                None => vec![],
            }),
            Stmt::While {
                cond: Expr::Bool(false),
                ..
            } => Some(vec![]),
            _ => None,
        };
        if let Some(replacement) = replacement {
            cx.cover(1);
            cx.emit(OptEventKind::DceRemove, "1");
            let n = replacement.len();
            block.0.splice(i..=i, replacement);
            i += n;
            continue;
        }
        match &mut block.0[i] {
            Stmt::If { then_b, else_b, .. } => {
                structural_dce(then_b, cx);
                if let Some(e) = else_b {
                    structural_dce(e, cx);
                }
            }
            Stmt::While { body, .. } | Stmt::For { body, .. } | Stmt::Sync { body, .. } => {
                structural_dce(body, cx)
            }
            Stmt::Block(b) => structural_dce(b, cx),
            _ => {}
        }
        i += 1;
    }
}

/// Removes locals that are written but never read. Impure right-hand sides
/// survive as expression statements.
fn dead_local_elimination(method: &mut Method, cx: &mut OptCx) {
    // A local is removable when it is declared exactly once, never read,
    // and is not a parameter.
    let mut decls: HashMap<String, usize> = HashMap::new();
    count_decls(&method.body, &mut decls);
    let params: HashSet<&String> = method.params.iter().map(|p| &p.name).collect();
    let mut reads: HashMap<String, usize> = HashMap::new();
    crate::analysis::map_exprs_in_block_ref(&method.body, &mut |e| {
        if let Expr::Var(v) = e {
            *reads.entry(v.clone()).or_insert(0) += 1;
        }
    });
    let dead: HashSet<String> = decls
        .iter()
        .filter(|(name, &count)| {
            count == 1 && !params.contains(name) && reads.get(*name).copied().unwrap_or(0) == 0
        })
        .map(|(name, _)| name.clone())
        .collect();
    if dead.is_empty() {
        return;
    }
    cx.cover(10);
    remove_dead_writes(&mut method.body, &dead, cx);
}

fn count_decls(block: &Block, out: &mut HashMap<String, usize>) {
    for stmt in &block.0 {
        match stmt {
            Stmt::Decl { name, .. } => *out.entry(name.clone()).or_insert(0) += 1,
            Stmt::If { then_b, else_b, .. } => {
                count_decls(then_b, out);
                if let Some(e) = else_b {
                    count_decls(e, out);
                }
            }
            Stmt::While { body, .. } | Stmt::Sync { body, .. } => count_decls(body, out),
            Stmt::For { init, body, .. } => {
                if let Some(i) = init {
                    if let Stmt::Decl { name, .. } = i.as_ref() {
                        *out.entry(name.clone()).or_insert(0) += 1;
                    }
                }
                count_decls(body, out);
            }
            Stmt::Block(b) => count_decls(b, out),
            _ => {}
        }
    }
}

fn remove_dead_writes(block: &mut Block, dead: &HashSet<String>, cx: &mut OptCx) {
    let mut i = 0;
    while i < block.0.len() {
        let replacement: Option<Vec<Stmt>> = match &block.0[i] {
            Stmt::Decl { name, init, .. } if dead.contains(name) => Some(match init {
                Some(e) if !expr_is_pure(e) => vec![Stmt::Expr(e.clone())],
                _ => vec![],
            }),
            Stmt::Assign {
                target: LValue::Var(name),
                value,
            } if dead.contains(name) => Some(if expr_is_pure(value) {
                vec![]
            } else {
                vec![Stmt::Expr(value.clone())]
            }),
            _ => None,
        };
        if let Some(replacement) = replacement {
            cx.cover(11);
            cx.emit(OptEventKind::DceRemove, "1");
            let n = replacement.len();
            block.0.splice(i..=i, replacement);
            i += n;
            continue;
        }
        match &mut block.0[i] {
            Stmt::If { then_b, else_b, .. } => {
                remove_dead_writes(then_b, dead, cx);
                if let Some(e) = else_b {
                    remove_dead_writes(e, dead, cx);
                }
            }
            Stmt::While { body, .. } | Stmt::Sync { body, .. } => {
                remove_dead_writes(body, dead, cx)
            }
            Stmt::For { body, .. } => remove_dead_writes(body, dead, cx),
            Stmt::Block(b) => remove_dead_writes(b, dead, cx),
            _ => {}
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phases::testutil::{assert_semantics_preserved, opt_main};
    use crate::pipeline::PhaseId;

    const DCE: &[PhaseId] = &[PhaseId::Dce];

    fn count(outcome: &crate::pipeline::OptOutcome, kind: OptEventKind) -> usize {
        outcome.events.iter().filter(|e| e.kind == kind).count()
    }

    #[test]
    fn removes_write_only_local() {
        let src = r#"
            class T {
                static void main() {
                    int dead = 41;
                    dead = dead + 1;
                    System.out.println(7);
                }
            }
        "#;
        // `dead = dead + 1` reads it, so it is NOT removable.
        let out = opt_main(src, DCE, 1);
        assert_eq!(count(&out, OptEventKind::DceRemove), 0);
        assert_semantics_preserved(src, &out);

        let src2 = r#"
            class T {
                static void main() {
                    int dead = 41;
                    dead = 99;
                    System.out.println(7);
                }
            }
        "#;
        let out2 = opt_main(src2, DCE, 1);
        assert_eq!(count(&out2, OptEventKind::DceRemove), 2);
        let printed = mjava::print_stmt(&Stmt::Block(out2.method.body.clone()));
        assert!(!printed.contains("dead"), "{printed}");
        assert_semantics_preserved(src2, &out2);
    }

    #[test]
    fn preserves_impure_initializer_effects() {
        let src = r#"
            class T {
                static int k;
                static int bump() { k = k + 1; return k; }
                static void main() {
                    int dead = T.bump();
                    System.out.println(k);
                }
            }
        "#;
        let out = opt_main(src, DCE, 1);
        assert_eq!(count(&out, OptEventKind::DceRemove), 1);
        let printed = mjava::print_stmt(&Stmt::Block(out.method.body.clone()));
        assert!(printed.contains("T.bump();"), "{printed}");
        assert_semantics_preserved(src, &out);
    }

    #[test]
    fn folds_constant_branches() {
        let src = r#"
            class T {
                static void main() {
                    if (true) { System.out.println(1); } else { System.out.println(2); }
                    if (false) { System.out.println(3); }
                    while (false) { System.out.println(4); }
                    System.out.println(5);
                }
            }
        "#;
        let out = opt_main(src, DCE, 1);
        assert_eq!(count(&out, OptEventKind::DceRemove), 3);
        let printed = mjava::print_stmt(&Stmt::Block(out.method.body.clone()));
        assert!(!printed.contains("println(2)"), "{printed}");
        assert!(!printed.contains("println(3)"), "{printed}");
        assert!(!printed.contains("println(4)"), "{printed}");
        assert_semantics_preserved(src, &out);
    }

    #[test]
    fn truncates_after_return() {
        let src = r#"
            class T {
                static int g() {
                    return 1;
                }
                static void main() { System.out.println(T.g()); }
            }
        "#;
        // Hand-construct unreachable code after return inside g.
        let mut program = mjava::parse(src).unwrap();
        program.classes[0].methods[0]
            .body
            .0
            .push(Stmt::Print(Expr::Int(99)));
        let out = crate::pipeline::optimize(
            &program,
            "T",
            "g",
            DCE,
            crate::pipeline::OptLimits::default(),
            &crate::event::FlagSet::all(),
        )
        .unwrap();
        assert_eq!(count(&out, OptEventKind::DceRemove), 1);
        assert!(matches!(out.method.body.0.last(), Some(Stmt::Return(_))));
    }

    #[test]
    fn keeps_read_locals() {
        let src = r#"
            class T {
                static void main() {
                    int live = 21;
                    System.out.println(live * 2);
                }
            }
        "#;
        let out = opt_main(src, DCE, 1);
        assert_eq!(count(&out, OptEventKind::DceRemove), 0);
        assert_semantics_preserved(src, &out);
    }
}
