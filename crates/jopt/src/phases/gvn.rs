//! Iterative GVN: constant folding, algebraic simplification, and
//! common-subexpression reuse.
//!
//! Constant folding delegates to `jexec::ops`, the *same* implementation
//! the interpreter executes, so folding can never silently diverge from
//! runtime semantics (exception-raising folds are left in place).

use crate::analysis::{expr_is_pure, map_exprs_in_block};
use crate::event::OptEventKind;
use crate::pipeline::OptCx;
use jexec::{ArithOp, CmpOp, Value};
use mjava::{BinOp, Block, Expr, Method, Stmt, UnOp};

/// Runs the GVN phase.
pub fn run(method: &mut Method, cx: &mut OptCx) {
    fold_block(&mut method.body, cx);
    cse_block(&mut method.body, cx);
    value_number_scan(&method.body, cx);
}

/// Global value numbering proper: every *duplicated* non-trivial pure
/// expression in the method gets a shared value number — observable as a
/// `GVN hit`. Loop peeling and unrolling duplicate loop bodies, so this
/// is where the loop phases feed the value-numbering machinery: exactly
/// the interaction chain behind the paper's GVN-component bugs (the
/// largest group in its Table 4).
fn value_number_scan(body: &mjava::Block, cx: &mut OptCx) {
    use std::collections::HashMap;
    let mut counts: HashMap<String, u32> = HashMap::new();
    crate::analysis::map_exprs_in_block_ref(body, &mut |e| {
        // Non-trivial: a compound arithmetic expression over at least one
        // variable (two operators or more), pure, so commoning is sound.
        if let Expr::Binary(op, lhs, rhs) = e {
            let compound = matches!(lhs.as_ref(), Expr::Binary(..) | Expr::Unary(..))
                || matches!(rhs.as_ref(), Expr::Binary(..) | Expr::Unary(..));
            let has_var = !crate::analysis::expr_vars(e).is_empty();
            if op.is_arithmetic() && compound && has_var && expr_is_pure(e) {
                *counts.entry(mjava::print_expr(e)).or_insert(0) += 1;
            }
        }
    });
    let mut duplicated: Vec<&String> = counts
        .iter()
        .filter(|(_, &n)| n >= 2)
        .map(|(k, _)| k)
        .collect();
    duplicated.sort();
    for key in duplicated {
        cx.cover(20);
        cx.emit_once(OptEventKind::GvnHit, key.clone());
    }
}

fn to_arith(op: BinOp) -> Option<ArithOp> {
    Some(match op {
        BinOp::Add => ArithOp::Add,
        BinOp::Sub => ArithOp::Sub,
        BinOp::Mul => ArithOp::Mul,
        BinOp::Div => ArithOp::Div,
        BinOp::Rem => ArithOp::Rem,
        BinOp::BitAnd => ArithOp::And,
        BinOp::BitOr => ArithOp::Or,
        BinOp::BitXor => ArithOp::Xor,
        BinOp::Shl => ArithOp::Shl,
        BinOp::Shr => ArithOp::Shr,
        _ => return None,
    })
}

fn to_cmp(op: BinOp) -> Option<CmpOp> {
    Some(match op {
        BinOp::Lt => CmpOp::Lt,
        BinOp::Le => CmpOp::Le,
        BinOp::Gt => CmpOp::Gt,
        BinOp::Ge => CmpOp::Ge,
        BinOp::Eq => CmpOp::Eq,
        BinOp::Ne => CmpOp::Ne,
        _ => return None,
    })
}

fn as_value(e: &Expr) -> Option<Value> {
    match e {
        Expr::Int(v) => Some(Value::Int(*v as i32)),
        Expr::Long(v) => Some(Value::Long(*v)),
        Expr::Bool(b) => Some(Value::Bool(*b)),
        _ => None,
    }
}

fn from_value(v: Value) -> Option<Expr> {
    match v {
        Value::Int(i) => Some(Expr::Int(i as i64)),
        Value::Long(l) => Some(Expr::Long(l)),
        Value::Bool(b) => Some(Expr::Bool(b)),
        _ => None,
    }
}

fn fold_block(block: &mut Block, cx: &mut OptCx) {
    map_exprs_in_block(block, &mut |e| {
        // map_exprs is post-order, so operands are already folded.
        if let Some(folded) = fold_expr(e, cx) {
            *e = folded;
        }
    });
}

fn fold_expr(e: &Expr, cx: &mut OptCx) -> Option<Expr> {
    match e {
        Expr::Binary(op, lhs, rhs) => {
            // Literal op literal: evaluate with interpreter semantics.
            if let (Some(a), Some(b)) = (as_value(lhs), as_value(rhs)) {
                cx.cover(0);
                if let Some(arith) = to_arith(*op) {
                    if let Ok(v) = jexec::ops::arith(arith, a, b) {
                        cx.cover(1);
                        cx.emit(OptEventKind::ConstFold, mjava::print_expr(e));
                        return from_value(v);
                    }
                    // Folding would raise (e.g. 1/0): leave for runtime.
                    return None;
                }
                if let Some(cmp) = to_cmp(*op) {
                    if let Ok(v) = jexec::ops::compare(cmp, a, b) {
                        cx.cover(2);
                        cx.emit(OptEventKind::ConstFold, mjava::print_expr(e));
                        return from_value(v);
                    }
                }
                return None;
            }
            // Operand-preserving identities (safe regardless of the
            // operand's numeric width).
            let identity = match (op, lhs.as_ref(), rhs.as_ref()) {
                (BinOp::Add, x, Expr::Int(0))
                | (BinOp::Add, Expr::Int(0), x)
                | (BinOp::Sub, x, Expr::Int(0))
                | (BinOp::Mul, x, Expr::Int(1))
                | (BinOp::Mul, Expr::Int(1), x)
                | (BinOp::Div, x, Expr::Int(1))
                | (BinOp::Shl, x, Expr::Int(0))
                | (BinOp::Shr, x, Expr::Int(0))
                | (BinOp::BitOr, x, Expr::Int(0))
                | (BinOp::BitOr, Expr::Int(0), x)
                | (BinOp::BitXor, x, Expr::Int(0))
                | (BinOp::BitXor, Expr::Int(0), x) => Some(x.clone()),
                (BinOp::BitAnd, x, Expr::Bool(true))
                | (BinOp::BitAnd, Expr::Bool(true), x)
                | (BinOp::BitOr, x, Expr::Bool(false))
                | (BinOp::BitOr, Expr::Bool(false), x)
                | (BinOp::BitXor, x, Expr::Bool(false))
                | (BinOp::BitXor, Expr::Bool(false), x) => Some(x.clone()),
                _ => None,
            };
            if let Some(x) = identity {
                cx.cover(3);
                cx.emit(OptEventKind::AlgebraicSimplify, mjava::print_expr(e));
                return Some(x);
            }
            None
        }
        Expr::Unary(UnOp::Neg, inner) => match inner.as_ref() {
            Expr::Int(v) => {
                cx.cover(4);
                cx.emit(OptEventKind::ConstFold, mjava::print_expr(e));
                Some(Expr::Int((*v as i32).wrapping_neg() as i64))
            }
            Expr::Long(v) => {
                cx.cover(4);
                cx.emit(OptEventKind::ConstFold, mjava::print_expr(e));
                Some(Expr::Long(v.wrapping_neg()))
            }
            Expr::Unary(UnOp::Neg, innermost) => {
                cx.cover(5);
                cx.emit(OptEventKind::AlgebraicSimplify, mjava::print_expr(e));
                Some(innermost.as_ref().clone())
            }
            _ => None,
        },
        Expr::Unary(UnOp::Not, inner) => match inner.as_ref() {
            Expr::Bool(b) => {
                cx.cover(6);
                cx.emit(OptEventKind::ConstFold, mjava::print_expr(e));
                Some(Expr::Bool(!b))
            }
            Expr::Unary(UnOp::Not, innermost) => {
                cx.cover(6);
                cx.emit(OptEventKind::AlgebraicSimplify, mjava::print_expr(e));
                Some(innermost.as_ref().clone())
            }
            _ => None,
        },
        _ => None,
    }
}

/// Common-subexpression reuse between *adjacent* declarations:
/// `ty a = e; ty b = e;` (e pure) becomes `ty a = e; ty b = a;`.
/// Adjacency guarantees no intervening mutation of `e`'s operands.
fn cse_block(block: &mut Block, cx: &mut OptCx) {
    for w in 1..block.0.len() {
        let (first, second) = block.0.split_at_mut(w);
        let (
            Stmt::Decl {
                name: n1,
                ty: t1,
                init: Some(e1),
            },
            Stmt::Decl {
                ty: t2,
                init: Some(e2),
                ..
            },
        ) = (first.last_mut().expect("w >= 1"), &mut second[0])
        else {
            continue;
        };
        if t1 == t2 && e1 == e2 && expr_is_pure(e1) && !matches!(e1, Expr::Var(_)) {
            cx.cover(10);
            cx.emit(OptEventKind::GvnHit, mjava::print_expr(e1));
            *e2 = Expr::var(n1.clone());
        }
    }
    // Recurse.
    for stmt in &mut block.0 {
        match stmt {
            Stmt::If { then_b, else_b, .. } => {
                cse_block(then_b, cx);
                if let Some(e) = else_b {
                    cse_block(e, cx);
                }
            }
            Stmt::While { body, .. } | Stmt::For { body, .. } | Stmt::Sync { body, .. } => {
                cse_block(body, cx)
            }
            Stmt::Block(b) => cse_block(b, cx),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phases::testutil::{assert_semantics_preserved, opt_main};
    use crate::pipeline::PhaseId;

    const GVN: &[PhaseId] = &[PhaseId::Gvn];

    fn count(outcome: &crate::pipeline::OptOutcome, kind: OptEventKind) -> usize {
        outcome.events.iter().filter(|e| e.kind == kind).count()
    }

    #[test]
    fn folds_constants() {
        let src = "class T { static void main() { System.out.println(2 + 3 * 4); } }";
        let out = opt_main(src, GVN, 1);
        assert!(count(&out, OptEventKind::ConstFold) >= 2);
        let printed = mjava::print_stmt(&Stmt::Block(out.method.body.clone()));
        assert!(printed.contains("println(14)"), "{printed}");
        assert_semantics_preserved(src, &out);
    }

    #[test]
    fn does_not_fold_division_by_zero() {
        let src = "class T { static void main() { System.out.println(1 / 0); } }";
        let out = opt_main(src, GVN, 1);
        let printed = mjava::print_stmt(&Stmt::Block(out.method.body.clone()));
        assert!(printed.contains("1 / 0"), "{printed}");
        assert_semantics_preserved(src, &out);
    }

    #[test]
    fn simplifies_identities() {
        let src = r#"
            class T {
                static void main() {
                    int x = 21;
                    int y = x * 1 + 0;
                    System.out.println(y << 0 | 0);
                }
            }
        "#;
        let out = opt_main(src, GVN, 1);
        assert!(count(&out, OptEventKind::AlgebraicSimplify) >= 3);
        let printed = mjava::print_stmt(&Stmt::Block(out.method.body.clone()));
        assert!(printed.contains("int y = x;"), "{printed}");
        assert_semantics_preserved(src, &out);
    }

    #[test]
    fn folds_int_overflow_like_java() {
        let src = "class T { static void main() { System.out.println(2147483647 + 1); } }";
        let out = opt_main(src, GVN, 1);
        let printed = mjava::print_stmt(&Stmt::Block(out.method.body.clone()));
        assert!(printed.contains("-2147483648"), "{printed}");
        assert_semantics_preserved(src, &out);
    }

    #[test]
    fn cse_reuses_adjacent_decl() {
        let src = r#"
            class T {
                static void main() {
                    int k = 3;
                    int a = k * 7 + 1;
                    int b = k * 7 + 1;
                    System.out.println(a + b);
                }
            }
        "#;
        let out = opt_main(src, GVN, 1);
        assert_eq!(count(&out, OptEventKind::GvnHit), 1);
        let printed = mjava::print_stmt(&Stmt::Block(out.method.body.clone()));
        assert!(printed.contains("int b = a;"), "{printed}");
        assert_semantics_preserved(src, &out);
    }

    #[test]
    fn cse_skips_impure_exprs() {
        let src = r#"
            class T {
                static int k;
                static int next() { k = k + 1; return k; }
                static void main() {
                    int a = T.next();
                    int b = T.next();
                    System.out.println(a + b);
                }
            }
        "#;
        let out = opt_main(src, GVN, 1);
        assert_eq!(count(&out, OptEventKind::GvnHit), 0);
        assert_semantics_preserved(src, &out);
    }

    #[test]
    fn folds_comparisons_and_not() {
        let src = r#"
            class T {
                static void main() {
                    boolean b = !(3 < 2);
                    System.out.println(b);
                }
            }
        "#;
        let out = opt_main(src, GVN, 1);
        assert!(count(&out, OptEventKind::ConstFold) >= 2);
        let printed = mjava::print_stmt(&Stmt::Block(out.method.body.clone()));
        assert!(printed.contains("boolean b = true;"), "{printed}");
        assert_semantics_preserved(src, &out);
    }

    #[test]
    fn double_negation_removed() {
        let src = r#"
            class T {
                static void main() {
                    int x = 5;
                    System.out.println(-(-x));
                }
            }
        "#;
        let out = opt_main(src, GVN, 1);
        assert!(count(&out, OptEventKind::AlgebraicSimplify) >= 1);
        let printed = mjava::print_stmt(&Stmt::Block(out.method.body.clone()));
        assert!(printed.contains("println(x)"), "{printed}");
        assert_semantics_preserved(src, &out);
    }
}
