//! A minimal regular-expression engine for the extraction rules.
//!
//! The paper derives behaviour counts from JVM log text with rules like
//! `Unroll [0-9]+` (Listing 4). The full generality of a regex crate is
//! unnecessary — the rules only use literals, the digit class, and `+` —
//! so this module implements exactly that subset, unanchored, with no
//! dependencies.

use std::fmt;

/// One element of a pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Part {
    /// A literal substring.
    Lit(String),
    /// `[0-9]+` — one or more ASCII digits.
    Digits,
}

/// A compiled extraction pattern (literals and `[0-9]+` only).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    parts: Vec<Part>,
    source: String,
}

impl Pattern {
    /// Compiles a pattern. The only recognized metasyntax is the exact
    /// token `[0-9]+`; everything else matches literally.
    pub fn new(source: &str) -> Pattern {
        let mut parts = Vec::new();
        let mut rest = source;
        while !rest.is_empty() {
            match rest.find("[0-9]+") {
                Some(0) => {
                    parts.push(Part::Digits);
                    rest = &rest["[0-9]+".len()..];
                }
                Some(idx) => {
                    parts.push(Part::Lit(rest[..idx].to_string()));
                    rest = &rest[idx..];
                }
                None => {
                    parts.push(Part::Lit(rest.to_string()));
                    rest = "";
                }
            }
        }
        Pattern {
            parts,
            source: source.to_string(),
        }
    }

    /// The original pattern text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Unanchored match: does the pattern occur anywhere in `line`?
    pub fn is_match(&self, line: &str) -> bool {
        if self.parts.is_empty() {
            return true;
        }
        let bytes = line.as_bytes();
        (0..=bytes.len()).any(|start| self.match_at(bytes, start))
    }

    fn match_at(&self, bytes: &[u8], mut pos: usize) -> bool {
        for (i, part) in self.parts.iter().enumerate() {
            match part {
                Part::Lit(lit) => {
                    let lit = lit.as_bytes();
                    if pos + lit.len() > bytes.len() || &bytes[pos..pos + lit.len()] != lit {
                        return false;
                    }
                    pos += lit.len();
                }
                Part::Digits => {
                    let run = bytes[pos..]
                        .iter()
                        .take_while(|b| b.is_ascii_digit())
                        .count();
                    if run == 0 {
                        return false;
                    }
                    // Greedy is fine: no later part can start with a digit
                    // class here, and a literal starting with a digit after
                    // `[0-9]+` would be ambiguous — we simply take the full
                    // run, matching how the rules are written.
                    if let Some(Part::Lit(_)) = self.parts.get(i + 1) {
                        pos += run;
                    } else {
                        pos += run;
                    }
                }
            }
        }
        true
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.source)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_substring_match() {
        let p = Pattern::new("Coarsened");
        assert!(p.is_match("xx Coarsened 2 locks"));
        assert!(!p.is_match("coarsened"));
    }

    #[test]
    fn digit_class_requires_digits() {
        let p = Pattern::new("Unroll [0-9]+");
        assert!(p.is_match("Unroll 4"));
        assert!(p.is_match("Unroll 16(12)"));
        assert!(p.is_match("  Unroll 2"));
        assert!(!p.is_match("Unroll "));
        assert!(!p.is_match("Unrol 4"));
    }

    #[test]
    fn digits_then_literal() {
        let p = Pattern::new("Coarsened [0-9]+ locks");
        assert!(p.is_match("Coarsened 12 locks in T::main"));
        assert!(!p.is_match("Coarsened x locks"));
    }

    #[test]
    fn unanchored_anywhere() {
        let p = Pattern::new("is NoEscape");
        assert!(p.is_match("alloc e is NoEscape"));
    }

    #[test]
    fn empty_pattern_matches_everything() {
        assert!(Pattern::new("").is_match("anything"));
    }

    #[test]
    fn source_roundtrip() {
        let p = Pattern::new("Peel [0-9]+");
        assert_eq!(p.source(), "Peel [0-9]+");
        assert_eq!(p.to_string(), "Peel [0-9]+");
    }
}
