//! # jprofile — the profile-data model
//!
//! Implements the paper's §3.4 guidance machinery end-to-end:
//!
//! * [`pattern`] — a tiny regex subset (literals + `[0-9]+`) sufficient
//!   for the extraction rules of Listing 4;
//! * [`rules`] — 19 extraction rules, one per observable optimization
//!   behaviour, matched against the trace-log text the JVM prints under
//!   its 15 diagnostic flags;
//! * [`Obv`] — the 19-dimensional Optimization Behavior Vector, with the
//!   increase-only Euclidean distance Δ (Eq. 2) and the normalized
//!   multiplicative weight update (Eq. 3).
//!
//! The fuzzer never sees optimizer internals — only text. `Obv::from_log`
//! is the single point where text becomes guidance, exactly mirroring the
//! paper's design (and its limitation: de-reflection, having no flag,
//! is invisible here).
//!
//! # Examples
//!
//! ```
//! use jprofile::Obv;
//!
//! let parent = Obv::from_log(&["Unroll 2"]);
//! let child = Obv::from_log(&["Unroll 2", "Unroll 4", "Peel 1", "Coarsened 2 locks in T::m"]);
//! let delta = Obv::delta(&parent, &child);
//! assert!((delta - (1.0f64 + 1.0 + 1.0).sqrt()).abs() < 1e-12);
//! let w = jprofile::update_weight(1.0, delta, &child);
//! assert!(w > 1.0);
//! ```

pub mod obv;
pub mod pattern;
pub mod rules;

pub use obv::{
    clamp_weight, sum_increase, update_weight, update_weight_raw_sum, Obv, DIMS, WEIGHT_MAX,
    WEIGHT_MIN,
};
pub use pattern::Pattern;
pub use rules::{classify, rules, Rule};
