//! The extraction rules: one pattern per observable optimization
//! behaviour, hand-derived from the trace-line formats the simulated JVMs
//! print — the analogue of the paper's manual investigation of the 15
//! flags (§3.4).

use crate::pattern::Pattern;
use jopt::{OptEventKind, TraceFlag};

/// One extraction rule: a behaviour kind, the flag whose output carries
/// it, and the matching pattern.
#[derive(Debug, Clone)]
pub struct Rule {
    /// The behaviour this rule detects.
    pub kind: OptEventKind,
    /// The flag that must be enabled for the line to be printed at all.
    pub flag: TraceFlag,
    /// The line pattern.
    pub pattern: Pattern,
}

/// The 19 extraction rules, in OBV dimension order.
pub fn rules() -> Vec<Rule> {
    use OptEventKind::*;
    let rule = |kind: OptEventKind, pattern: &str| Rule {
        kind,
        flag: kind.flag().expect("observable kinds have flags"),
        pattern: Pattern::new(pattern),
    };
    vec![
        rule(Inline, "@ inlined "),
        rule(InlineReject, "failed to inline"),
        rule(Unroll, "Unroll [0-9]+"),
        rule(Peel, "Peel [0-9]+"),
        rule(Unswitch, "Unswitch [0-9]+"),
        rule(LockEliminate, "++++ Eliminated: Lock"),
        rule(LockCoarsen, "Coarsened [0-9]+ locks"),
        rule(NestedLock, "NestedLock depth "),
        rule(EaNoEscape, "is NoEscape"),
        rule(EaArgEscape, "is ArgEscape"),
        rule(ScalarReplace, "Scalar replaced allocation "),
        rule(DceRemove, "DCE removed [0-9]+ nodes"),
        rule(GvnHit, "GVN hit "),
        rule(AlgebraicSimplify, "Simplified "),
        rule(ConstFold, "IGVN folded constant "),
        rule(AutoboxEliminate, "EliminateAutobox "),
        rule(StoreEliminate, "RedundantStore eliminated "),
        rule(UncommonTrap, "uncommon_trap reason="),
        rule(Deopt, "Deoptimize method "),
    ]
}

/// Classifies one log line, returning the behaviour it records (if any).
pub fn classify(line: &str, rules: &[Rule]) -> Option<OptEventKind> {
    rules
        .iter()
        .find(|r| r.pattern.is_match(line))
        .map(|r| r.kind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jopt::{FlagSet, OptEvent};

    #[test]
    fn nineteen_rules_in_obv_order() {
        let rules = rules();
        assert_eq!(rules.len(), 19);
        let kinds: Vec<_> = rules.iter().map(|r| r.kind).collect();
        let expected: Vec<_> = OptEventKind::observable().collect();
        assert_eq!(kinds, expected);
    }

    #[test]
    fn every_rendered_log_line_classifies_to_its_kind() {
        // Round-trip: event → log line → rule → same kind, for every
        // observable behaviour. This pins the printer and scraper together.
        let rules = rules();
        let flags = FlagSet::all();
        for kind in OptEventKind::observable() {
            let detail = match kind {
                OptEventKind::Unroll
                | OptEventKind::Peel
                | OptEventKind::Unswitch
                | OptEventKind::DceRemove
                | OptEventKind::LockCoarsen => "4".to_string(),
                OptEventKind::NestedLock => "2@0".to_string(),
                _ => "x7".to_string(),
            };
            let event = OptEvent {
                kind,
                method: "T::foo".into(),
                detail,
            };
            let line = event.log_line(&flags).expect("observable event logs");
            assert_eq!(
                classify(&line, &rules),
                Some(kind),
                "line {line:?} misclassified"
            );
        }
    }

    #[test]
    fn unrelated_lines_classify_to_none() {
        let rules = rules();
        assert_eq!(classify("Compiled method T::main", &rules), None);
        assert_eq!(classify("", &rules), None);
        assert_eq!(classify("hello world", &rules), None);
    }

    #[test]
    fn rules_carry_their_flag() {
        for r in rules() {
            assert_eq!(Some(r.flag), r.kind.flag());
        }
    }
}
