//! The Optimization Behavior Vector and the paper's guidance metrics.
//!
//! An [`Obv`] is the 19-dimensional vector of behaviour frequencies
//! extracted from profile data (paper §3.4). [`Obv::delta`] is Eq. 2 —
//! the Euclidean distance over *increases* only — and [`update_weight`]
//! is Eq. 3, the multiplicative weight bump normalized by the child's
//! magnitude.

use crate::rules::{classify, rules};
use jopt::OptEventKind;
use std::fmt;
use std::ops::Index;

/// Number of OBV dimensions.
pub const DIMS: usize = 19;

/// The 19-dimensional Optimization Behavior Vector.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Obv([u64; DIMS]);

impl Obv {
    /// The zero vector.
    pub fn zero() -> Obv {
        Obv::default()
    }

    /// Builds an OBV by scraping profile-data log lines with the
    /// extraction rules — the fuzzer's view of the JVM.
    pub fn from_log<S: AsRef<str>>(lines: &[S]) -> Obv {
        let rules = rules();
        let mut obv = Obv::zero();
        for line in lines {
            if let Some(kind) = classify(line.as_ref(), &rules) {
                obv.bump(kind);
            }
        }
        obv
    }

    /// Builds an OBV from raw optimizer events (ground truth; used by
    /// analysis and tests, never by the guided fuzzer itself).
    pub fn from_events(events: &[jopt::OptEvent]) -> Obv {
        let mut obv = Obv::zero();
        for e in events {
            if dim_of(e.kind).is_some() {
                obv.bump(e.kind);
            }
        }
        obv
    }

    /// Increments the dimension of `kind` (no-op for the unobservable
    /// de-reflection kind).
    pub fn bump(&mut self, kind: OptEventKind) {
        if let Some(d) = dim_of(kind) {
            self.0[d] += 1;
        }
    }

    /// The count recorded for a behaviour kind.
    pub fn count(&self, kind: OptEventKind) -> u64 {
        dim_of(kind).map_or(0, |d| self.0[d])
    }

    /// Sum over all dimensions.
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    /// Number of distinct behaviours observed.
    pub fn distinct(&self) -> usize {
        self.0.iter().filter(|&&c| c > 0).count()
    }

    /// Euclidean magnitude ‖OBV‖.
    pub fn norm(&self) -> f64 {
        self.0
            .iter()
            .map(|&c| (c as f64) * (c as f64))
            .sum::<f64>()
            .sqrt()
    }

    /// Eq. 2: Δ = √( Σᵢ max(0, childᵢ − parentᵢ)² ).
    ///
    /// Only increases count; behaviours that *decreased* contribute
    /// nothing, so Δ measures newly induced optimization activity.
    pub fn delta(parent: &Obv, child: &Obv) -> f64 {
        let mut sum = 0.0;
        for i in 0..DIMS {
            let inc = child.0[i].saturating_sub(parent.0[i]) as f64;
            sum += inc * inc;
        }
        sum.sqrt()
    }

    /// Iterates `(kind, count)` in dimension order.
    pub fn iter(&self) -> impl Iterator<Item = (OptEventKind, u64)> + '_ {
        OptEventKind::observable().zip(self.0.iter().copied())
    }
}

impl Index<usize> for Obv {
    type Output = u64;

    fn index(&self, i: usize) -> &u64 {
        &self.0[i]
    }
}

impl fmt::Display for Obv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

fn dim_of(kind: OptEventKind) -> Option<usize> {
    OptEventKind::observable().position(|k| k == kind)
}

/// Smallest weight [`clamp_weight`] returns. Keeps every mutator
/// selectable: Eq. 1 divides by the weight sum, so a zero or negative
/// weight would silence a mutator forever (or flip selection signs).
pub const WEIGHT_MIN: f64 = 1e-9;

/// Largest weight [`clamp_weight`] returns. Far above anything a real
/// campaign produces (50 iterations at most double a weight each), but
/// low enough that summing all weights can never overflow to infinity.
pub const WEIGHT_MAX: f64 = 1e12;

/// Clamps a mutator weight into the finite positive range
/// `[WEIGHT_MIN, WEIGHT_MAX]`. `NaN` resets to the initial weight 1.0;
/// `±∞` and out-of-range values saturate. Adversarial profile logs
/// (fault injection, truncated lines) must never poison Eq. 1's
/// selection distribution.
pub fn clamp_weight(weight: f64) -> f64 {
    if weight.is_nan() {
        1.0
    } else {
        weight.clamp(WEIGHT_MIN, WEIGHT_MAX)
    }
}

/// Eq. 3: wₘ ← wₘ · (1 + Δ / ‖OBV_c‖).
///
/// Normalizing by the child's magnitude rewards *relative* growth in
/// behaviour diversity, preventing high-frequency behaviours (e.g.
/// inlining) from dominating the weights (paper §3.4, "Rationale Behind
/// the Weighting Scheme"). When the child's OBV is zero, the weight is
/// unchanged. Non-finite inputs are treated as "no observation": the
/// (clamped) weight passes through untouched.
pub fn update_weight(weight: f64, delta: f64, child: &Obv) -> f64 {
    let weight = clamp_weight(weight);
    let norm = child.norm();
    if norm == 0.0 || !norm.is_finite() || !delta.is_finite() {
        weight
    } else {
        clamp_weight(weight * (1.0 + delta.max(0.0) / norm))
    }
}

/// Total (unnormalized) behaviour increase between parent and child —
/// the raw-sum signal of the weighting scheme the paper *rejected*
/// because high-frequency behaviours (inlining) drown out rare ones.
/// Kept for the ablation experiment.
pub fn sum_increase(parent: &Obv, child: &Obv) -> u64 {
    let mut sum = 0u64;
    for i in 0..DIMS {
        sum += child[i].saturating_sub(parent[i]);
    }
    sum
}

/// The rejected raw-sum weight update: the weight grows by the absolute
/// behaviour increment, unnormalized (but still clamped to the finite
/// positive weight range).
pub fn update_weight_raw_sum(weight: f64, parent: &Obv, child: &Obv) -> f64 {
    clamp_weight(clamp_weight(weight) + sum_increase(parent, child) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jopt::OptEventKind::*;

    #[test]
    fn paper_example_delta() {
        // §3.4: parent (1,0,0,…), child (2,2,2,0,…) → Δ = 3.
        let mut parent = Obv::zero();
        parent.bump(Inline);
        let mut child = Obv::zero();
        for _ in 0..2 {
            child.bump(Inline);
            child.bump(InlineReject);
            child.bump(Unroll);
        }
        assert_eq!(Obv::delta(&parent, &child), 3.0);
    }

    #[test]
    fn delta_ignores_decreases() {
        let mut parent = Obv::zero();
        for _ in 0..5 {
            parent.bump(Unroll);
        }
        let child = Obv::zero();
        assert_eq!(Obv::delta(&parent, &child), 0.0);
    }

    #[test]
    fn from_log_counts_frequencies() {
        let log = vec![
            "Compiled method T::main",
            "Unroll 4",
            "Unroll 2",
            "Peel 1",
            "++++ Eliminated: Lock (l)",
            "noise line",
        ];
        let obv = Obv::from_log(&log);
        assert_eq!(obv.count(Unroll), 2);
        assert_eq!(obv.count(Peel), 1);
        assert_eq!(obv.count(LockEliminate), 1);
        assert_eq!(obv.total(), 4);
        assert_eq!(obv.distinct(), 3);
    }

    #[test]
    fn dereflect_is_invisible() {
        let mut obv = Obv::zero();
        obv.bump(Dereflect);
        assert_eq!(obv.total(), 0);
        assert_eq!(obv.count(Dereflect), 0);
    }

    #[test]
    fn norm_is_euclidean() {
        let mut obv = Obv::zero();
        for _ in 0..3 {
            obv.bump(Unroll);
        }
        for _ in 0..4 {
            obv.bump(Inline);
        }
        assert!((obv.norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn weight_update_matches_eq3() {
        let mut child = Obv::zero();
        for _ in 0..4 {
            child.bump(Unroll);
        }
        for _ in 0..3 {
            child.bump(Peel);
        }
        // ‖child‖ = 5, Δ = 5 → w · 2.
        let w = update_weight(1.5, 5.0, &child);
        assert!((w - 3.0).abs() < 1e-12);
    }

    #[test]
    fn weight_unchanged_on_zero_child() {
        assert_eq!(update_weight(2.0, 1.0, &Obv::zero()), 2.0);
    }

    #[test]
    fn rationale_example_prefers_diversity() {
        // §3.4 rationale: +100 Inline alone vs. +1 each of three rare
        // behaviours. The normalized bump must favour the diverse child.
        let parent = Obv::zero();
        let mut inline_heavy = Obv::zero();
        for _ in 0..100 {
            inline_heavy.bump(Inline);
        }
        let mut diverse = Obv::zero();
        diverse.bump(Unswitch);
        diverse.bump(LockCoarsen);
        diverse.bump(NestedLock);

        let w_heavy = update_weight(1.0, Obv::delta(&parent, &inline_heavy), &inline_heavy);
        let w_diverse = update_weight(1.0, Obv::delta(&parent, &diverse), &diverse);
        // Both get boosted, but the diverse child's *relative* boost is
        // (1 + √3/√3) = 2 while the heavy child's is (1 + 100/100) = 2:
        // equal relative growth — whereas a raw-sum scheme would favour the
        // heavy child 100:3. Verify the normalization equalizes them.
        assert!((w_heavy - w_diverse).abs() < 1e-9);
    }

    #[test]
    fn weight_updates_survive_adversarial_inputs() {
        let mut child = Obv::zero();
        child.bump(Unroll);
        // Non-finite deltas are treated as "no observation".
        assert_eq!(update_weight(2.0, f64::NAN, &child), 2.0);
        assert_eq!(update_weight(2.0, f64::INFINITY, &child), 2.0);
        // Non-finite incoming weights are repaired, not propagated.
        assert_eq!(update_weight(f64::NAN, 0.0, &child), 1.0);
        assert_eq!(update_weight(f64::INFINITY, 0.0, &child), WEIGHT_MAX);
        assert_eq!(update_weight(f64::NEG_INFINITY, 0.0, &child), WEIGHT_MIN);
        // A negative (corrupt) delta cannot shrink the weight.
        assert_eq!(update_weight(2.0, -5.0, &child), 2.0);
        // Raw-sum scheme saturates instead of overflowing.
        let parent = Obv::zero();
        let mut huge = Obv::zero();
        for _ in 0..1000 {
            huge.bump(Inline);
        }
        let w = update_weight_raw_sum(WEIGHT_MAX, &parent, &huge);
        assert_eq!(w, WEIGHT_MAX);
        assert_eq!(update_weight_raw_sum(f64::NAN, &parent, &huge), 1001.0);
    }

    #[test]
    fn clamp_weight_bounds() {
        assert_eq!(clamp_weight(1.0), 1.0);
        assert_eq!(clamp_weight(0.0), WEIGHT_MIN);
        assert_eq!(clamp_weight(-3.0), WEIGHT_MIN);
        assert_eq!(clamp_weight(1e300), WEIGHT_MAX);
        assert_eq!(clamp_weight(f64::NAN), 1.0);
        assert!(clamp_weight(f64::INFINITY).is_finite());
        // The whole range sums without overflow even over many mutators.
        assert!((WEIGHT_MAX * 64.0).is_finite());
    }

    #[test]
    fn obv_from_corrupted_log_is_usable() {
        // The scraper itself must shrug off mangled lines: huge numbers,
        // control bytes, truncations. Counts stay small and finite because
        // classification is per-line.
        let log = vec![
            "Unroll 18446744073709551615".to_string(),
            "\u{fffd}Peel 1\u{fffd}".to_string(),
            "Unrol".to_string(),
            "\u{1}garbage profile line\u{fffd}".to_string(),
            "++++ Eliminated: Lock (corrupt)".to_string(),
        ];
        let obv = Obv::from_log(&log);
        assert!(obv.norm().is_finite());
        assert!(obv.total() <= log.len() as u64);
        let w = update_weight(1.0, Obv::delta(&Obv::zero(), &obv), &obv);
        assert!(w.is_finite() && w >= 1.0);
    }

    #[test]
    fn display_and_index() {
        let mut obv = Obv::zero();
        obv.bump(Inline);
        assert!(obv.to_string().starts_with("(1, "));
        assert_eq!(obv[0], 1);
    }

    #[test]
    fn iter_pairs_kinds_with_counts() {
        let mut obv = Obv::zero();
        obv.bump(Unroll);
        let pairs: Vec<_> = obv.iter().filter(|(_, c)| *c > 0).collect();
        assert_eq!(pairs, vec![(Unroll, 1)]);
    }
}
