//! Workspace root crate: re-exports the full stack for the integration
//! tests in `tests/` and the runnable examples in `examples/`.
//!
//! See the individual crates for the real APIs:
//! [`mjava`] (language), [`jexec`] (interpreter), [`jopt`] (JIT),
//! [`jvmsim`] (simulated JVMs), [`jprofile`] (profile data),
//! [`mopfuzzer`] (the fuzzer), [`jreduce`] (reduction), and
//! [`baselines`] (JITFuzz/Artemis).

pub use baselines;
pub use jexec;
pub use jopt;
pub use jprofile;
pub use jreduce;
pub use jvmsim;
pub use mjava;
pub use mopfuzzer;
